"""EXP-T3 — §7.1's premium-complexity claim.

"If there is a unique path between any two parties, then each leader's
premium is linear in n ...  In the worst case, for a complete digraph, each
leader's premium is exponential in n."  This bench sweeps ring digraphs
(unique paths) and complete digraphs, regenerating the growth series, and
shows the §6 fix: bootstrapping still reaches any premium in O(log)
rounds.

Run directly to print the tables:  python benchmarks/bench_premium_growth.py
"""

from repro.core.bootstrap import rounds_needed
from repro.core.premiums import leader_redemption_total, worst_case_leader_premium
from repro.graph.digraph import complete_graph, ring_graph

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

RING_SIZES = (2, 3, 4, 5, 6, 7, 8)
COMPLETE_SIZES = (2, 3, 4, 5, 6)


def generate_growth_table():
    rows = []
    for n in RING_SIZES:
        ring = leader_redemption_total(ring_graph(n), "P0", 1)
        if n in COMPLETE_SIZES:
            leaders = tuple(f"P{i}" for i in range(n - 1))  # min FVS of K_n
            comp = worst_case_leader_premium(complete_graph(n), leaders, 1)
        else:
            comp = "-"
        rows.append((n, ring, comp))
    return ("n", "ring leader premium (p)", "complete leader premium (p)"), rows


def generate_bootstrap_fix_table():
    """§7.1: 'This premium can be reduced ... by O(log n) rounds of
    premium bootstrapping' — rounds needed to fund the worst-case premium."""
    rows = []
    for n in COMPLETE_SIZES:
        leaders = tuple(f"P{i}" for i in range(n - 1))
        premium = worst_case_leader_premium(complete_graph(n), leaders, 1)
        # fund a `premium`-sized deposit starting from a 1-unit risk at P=4
        rounds = rounds_needed(premium, premium, 4, max(1, premium // 16))
        rows.append((n, premium, rounds))
    return ("n", "worst-case premium (p)", "bootstrap rounds (P=4)"), rows


# ----------------------------------------------------------------------
def test_ring_growth_is_linear(benchmark):
    header, rows = benchmark(generate_growth_table)
    ring = [r[1] for r in rows]
    diffs = [b - a for a, b in zip(ring, ring[1:])]
    assert all(d == diffs[0] for d in diffs)  # constant increments = linear


def test_complete_growth_is_superlinear():
    header, rows = generate_growth_table()
    comp = [r[2] for r in rows if r[2] != "-"]
    ratios = [b / a for a, b in zip(comp, comp[1:])]
    # geometric-or-faster growth: every step multiplies by more than 4,
    # and the ratios increase once past the degenerate n=2 case
    assert all(r > 4 for r in ratios)
    assert all(r2 > r1 for r1, r2 in zip(ratios[1:], ratios[2:]))
    assert comp[-1] > 50 * comp[0]


def test_bootstrap_rounds_grow_slowly(benchmark):
    header, rows = benchmark(generate_bootstrap_fix_table)
    premiums = [r[1] for r in rows]
    rounds = [r[2] for r in rows]
    assert premiums[-1] / premiums[0] > 10
    assert max(rounds) <= 4  # logarithmic in the premium size


if __name__ == "__main__":
    print(format_table("EXP-T3: leader premium vs n", *generate_growth_table()))
    print()
    print(format_table("EXP-T3: bootstrapping the worst case", *generate_bootstrap_fix_table()))
