"""EXP-C1 — campaign engine throughput: backends, pool reuse, caching.

The campaign engine executes the full six-family adversarial matrix
(two-party premium-grid/stretched-timeout schedules incl. adversary
pairs, multi-party graphs up to ring:8, broker/auction/sealed-auction/
bootstrap halts) through both backends and reports scenarios/sec plus the
reproducibility digest.  The digests MUST match across backends —
scenario execution is deterministic and order-preserving regardless of
process layout.

The pool-reuse table runs back-to-back campaigns two ways — forking a
fresh pool per run versus dispatching through one persistent
:class:`WorkerPool` — and must show reuse winning: the fork/teardown tax
is paid once instead of per run.

The cache table (EXP-C3) runs the same spec cold and then warm through
the incremental result cache: the warm run must report a 100% hit-rate,
reproduce the cold digest byte-identically, and beat it on wall clock.

Run directly to print the tables; a machine-readable
``BENCH_campaign.json`` (scenarios/sec, cache hit-rate, spec digest) is
written alongside:  python benchmarks/bench_campaign.py
"""

import os
import tempfile
import time

from repro.campaign import (
    CampaignRunner,
    Experiment,
    ResultCache,
    WorkerPool,
    campaign_spec,
    default_matrix,
)
from repro.obs import Tracer, phase_fragments

try:
    from benchmarks.tables import format_table, write_bench_json
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table, write_bench_json

# Back-to-back pool-reuse comparison: a few medium-sized campaigns where
# per-run fork cost is a visible fraction of the work.
REUSE_FAMILIES = ("broker", "auction", "sealed-auction", "bootstrap")
REUSE_RUNS = 4


def _run(backend: str, workers: int | None = None, tracer: Tracer | None = None):
    matrix = default_matrix()
    return CampaignRunner(
        matrix, backend=backend, workers=workers, tracer=tracer
    ).run()


def generate_campaign_table():
    rows = []
    records = []
    digests = []
    for backend, workers in (("serial", None), ("process", None), ("process", 2)):
        # A sink-less tracer collects per-phase timing without writing a
        # trace file; telemetry is digest-inert, so the cross-backend
        # digest assertion below also guards the traced path.
        tracer = Tracer()
        report = _run(backend, workers, tracer=tracer)
        digests.append(report.run_digest)
        label = backend if workers is None else f"{backend} (workers={workers})"
        rows.append(
            (
                label,
                report.scenarios,
                report.transactions,
                f"{report.elapsed_seconds:.2f}s",
                f"{report.scenarios_per_second:.0f}/s",
                len(report.violations),
                report.run_digest[:12],
            )
        )
        records.append(
            {
                "backend": label,
                "scenarios": report.scenarios,
                "elapsed_seconds": report.elapsed_seconds,
                "scenarios_per_second": report.scenarios_per_second,
                "run_digest": report.run_digest,
                "phases": phase_fragments(tracer.metrics.snapshot()),
            }
        )
    assert len(set(digests)) == 1, f"backend digests diverged: {digests}"
    header = (
        "backend", "scenarios", "transactions", "time", "throughput",
        "violations", "digest",
    )
    return header, rows, records


def generate_pool_reuse_table():
    """Fresh pool per run vs one persistent pool, back to back."""
    start = time.perf_counter()
    fresh = [
        CampaignRunner(default_matrix(families=REUSE_FAMILIES), backend="process").run()
        for _ in range(REUSE_RUNS)
    ]
    fresh_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    with WorkerPool() as pool:
        pooled = [
            CampaignRunner(
                default_matrix(families=REUSE_FAMILIES), backend="process", pool=pool
            ).run()
            for _ in range(REUSE_RUNS)
        ]
    pooled_elapsed = time.perf_counter() - start

    assert {r.run_digest for r in fresh} == {r.run_digest for r in pooled}, (
        "pool reuse changed the run digest"
    )
    scenarios = fresh[0].total_scenarios * REUSE_RUNS
    rows = [
        (
            "fresh pool per run",
            REUSE_RUNS,
            scenarios,
            f"{fresh_elapsed:.2f}s",
            f"{scenarios / fresh_elapsed:.0f}/s",
            fresh[0].run_digest[:12],
        ),
        (
            "persistent WorkerPool",
            REUSE_RUNS,
            scenarios,
            f"{pooled_elapsed:.2f}s",
            f"{scenarios / pooled_elapsed:.0f}/s",
            pooled[0].run_digest[:12],
        ),
    ]
    header = ("strategy", "runs", "scenarios", "time", "throughput", "digest")
    return header, rows, fresh_elapsed, pooled_elapsed


def generate_cache_table():
    """EXP-C3: one spec, cold vs warm through the incremental cache."""
    spec = campaign_spec(families=REUSE_FAMILIES)
    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    cold = Experiment(spec, cache=ResultCache(root)).run().campaign
    warm = Experiment(spec, cache=ResultCache(root)).run().campaign
    assert warm.run_digest == cold.run_digest, "warm cache changed the digest"
    rows = []
    records = {"spec_digest": spec.digest()}
    for label, report in (("cold", cold), ("warm", warm)):
        rows.append(
            (
                label,
                report.scenarios,
                f"{report.cache_hit_rate:.0%}",
                f"{report.elapsed_seconds:.3f}s",
                # Delivery rate: a fully-warm run *executes* nothing
                # (scenarios_per_second is honestly 0), but it still
                # serves scenarios — that is the rate worth comparing.
                f"{report.served_per_second:.0f}/s served",
                report.run_digest[:12],
            )
        )
        records[label] = {
            "scenarios": report.scenarios,
            "cache_hits": report.cache_hits,
            "cache_hit_rate": report.cache_hit_rate,
            "elapsed_seconds": report.elapsed_seconds,
            "scenarios_per_second": report.scenarios_per_second,
            "served_per_second": report.served_per_second,
            "run_digest": report.run_digest,
        }
    header = ("run", "scenarios", "hit-rate", "time", "throughput", "digest")
    return header, rows, records


# ----------------------------------------------------------------------
def test_campaign_backends_agree(benchmark):
    header, rows, _ = benchmark.pedantic(
        generate_campaign_table, rounds=1, iterations=1
    )
    assert all(r[5] == 0 for r in rows)
    assert all(r[1] >= 3000 for r in rows)  # the acceptance-scale matrix
    assert len({r[6] for r in rows}) == 1  # identical run digests


def test_pool_reuse_beats_fresh_pools(benchmark):
    _, _, fresh_elapsed, pooled_elapsed = benchmark.pedantic(
        generate_pool_reuse_table, rounds=1, iterations=1
    )
    # Small tolerance: the fork/teardown savings are real but can sit
    # within scheduler noise on a loaded single-core machine.
    assert pooled_elapsed < fresh_elapsed * 1.1, (
        f"pool reuse ({pooled_elapsed:.2f}s) should beat fresh pools "
        f"({fresh_elapsed:.2f}s) on back-to-back runs"
    )


def test_warm_cache_hits_everything_and_keeps_the_digest(benchmark):
    _, _, records = benchmark.pedantic(
        generate_cache_table, rounds=1, iterations=1
    )
    assert records["warm"]["cache_hit_rate"] == 1.0
    assert records["warm"]["run_digest"] == records["cold"]["run_digest"]
    assert records["cold"]["cache_hit_rate"] == 0.0
    # a warm run replays stored results: it must beat re-simulation
    assert records["warm"]["elapsed_seconds"] < records["cold"]["elapsed_seconds"]


if __name__ == "__main__":
    print(f"cpus: {os.cpu_count()}")
    c1_header, c1_rows, c1_records = generate_campaign_table()
    print(format_table("EXP-C1: campaign engine throughput", c1_header, c1_rows))
    header, rows, fresh_elapsed, pooled_elapsed = generate_pool_reuse_table()
    print(format_table("EXP-C2: worker-pool reuse (back-to-back runs)", header, rows))
    print(
        f"pool reuse saved {fresh_elapsed - pooled_elapsed:.2f}s over "
        f"{REUSE_RUNS} runs ({fresh_elapsed / pooled_elapsed:.2f}x)"
    )
    c3_header, c3_rows, c3_records = generate_cache_table()
    print(format_table("EXP-C3: incremental result cache (cold vs warm)", c3_header, c3_rows))
    write_bench_json(
        "campaign",
        {
            "experiment": "EXP-C1/C2/C3",
            "spec_digest": campaign_spec().digest(),
            "backends": c1_records,
            "pool_reuse": {
                "runs": REUSE_RUNS,
                "fresh_elapsed_seconds": fresh_elapsed,
                "pooled_elapsed_seconds": pooled_elapsed,
            },
            "cache": c3_records,
        },
        # The serial run's phase breakdown is the canonical one: no
        # fork/dispatch noise, so expand/dispatch/fold shares compare
        # cleanly across PRs.
        phases=c1_records[0]["phases"],
    )
