"""EXP-C1 — campaign engine throughput: serial vs process backends.

The campaign engine executes the full five-family adversarial matrix
(two-party halts/skips/lags incl. adversary pairs, multi-party/broker/
auction/bootstrap halts over premium schedules) through both backends and
reports scenarios/sec plus the reproducibility digest.  The digests MUST
match across backends — scenario execution is deterministic and
order-preserving regardless of process layout.

Run directly to print the table:  python benchmarks/bench_campaign.py
"""

import os

from repro.campaign import CampaignRunner, default_matrix

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table


def _run(backend: str, workers: int | None = None):
    matrix = default_matrix()
    return CampaignRunner(matrix, backend=backend, workers=workers).run()


def generate_campaign_table():
    rows = []
    digests = []
    for backend, workers in (("serial", None), ("process", None), ("process", 2)):
        report = _run(backend, workers)
        digests.append(report.run_digest)
        label = backend if workers is None else f"{backend} (workers={workers})"
        rows.append(
            (
                label,
                report.scenarios,
                report.transactions,
                f"{report.elapsed_seconds:.2f}s",
                f"{report.scenarios_per_second:.0f}/s",
                len(report.violations),
                report.run_digest[:12],
            )
        )
    assert len(set(digests)) == 1, f"backend digests diverged: {digests}"
    header = (
        "backend", "scenarios", "transactions", "time", "throughput",
        "violations", "digest",
    )
    return header, rows


# ----------------------------------------------------------------------
def test_campaign_backends_agree(benchmark):
    header, rows = benchmark.pedantic(generate_campaign_table, rounds=1, iterations=1)
    assert all(r[5] == 0 for r in rows)
    assert all(r[1] >= 500 for r in rows)  # the acceptance-scale matrix
    assert len({r[6] for r in rows}) == 1  # identical run digests


if __name__ == "__main__":
    print(f"cpus: {os.cpu_count()}")
    print(format_table("EXP-C1: campaign engine throughput", *generate_campaign_table()))
