"""EXP-QT — the quote service's latency ladder and batch throughput.

``repro.quote`` answers one question — "what deposit schedule deters the
rational walk on this deal?" — through a three-tier ladder: closed forms
(tier 1), cached refined-frontier rows (tier 2), and a narrow measured
fallback that warms the cache for next time (tier 3).  The service is
only useful if the ladder's latency story holds, so this module measures
it:

1. **per-tier latency** — p50/p99 of the stamped ``Quote.latency_ms``
   for each rung: closed forms over every named family and coalition,
   warm cache hits over graph-shaped cells, and the cold measured
   fallback that created those cells.
2. **batch throughput** — a 1000-deal heterogeneous basket (all four
   §5.2 families, both named coalitions, ring/complete graphs at three
   shocks) quoted cold then warm on one shared cache, with cold/warm
   batch-digest parity asserted before any rate is reported (a fast
   service that answers differently is noise).

The committed ``BENCH_quote.json`` carries the measurements plus the CI
budgets; the ``quote-smoke`` job runs ``--gate``, which re-measures and
fails the push if tier 1's p50 exceeds 1 ms, the warm tier-2 p50 exceeds
10 ms, or the warm batch drops below 100 quotes/sec.

Run directly to print the tables:  python benchmarks/bench_quote.py
Gate mode (CI):                    python benchmarks/bench_quote.py --gate
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import time

from repro.campaign.cache import ResultCache
from repro.quote import QuoteEngine, QuoteRequest, batch_digest, quote_batch

try:
    from benchmarks.tables import format_table, write_bench_json
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table, write_bench_json

#: CI budgets — ``--gate`` (the quote-smoke job) enforces all three.
TIER1_P50_BUDGET_MS = 1.0
TIER2_WARM_P50_BUDGET_MS = 10.0
BATCH_WARM_QPS_FLOOR = 100.0

#: distinct graph-shaped cells exercising tiers 3 and 2: each is its own
#: refined row — measured once cold, a cache hit ever after.
GRAPH_CELLS = (
    ("ring:4", 0.03),
    ("ring:4", 0.045),
    ("ring:5", 0.045),
    ("complete:4", 0.045),
)

#: tier-1 rotation: every named family, both coalitions, one pre-stake
#: verdict — the full closed-form surface.
TIER1_SPECS = (
    {"family": "two-party"},
    {"family": "multi-party"},
    {"family": "broker"},
    {"family": "auction"},
    {"family": "multi-party", "coalition": "P1+P2"},
    {"family": "broker", "coalition": "seller+buyer"},
    {"family": "two-party", "stage": "pre-stake"},
)


def _percentile(samples, fraction):
    """Nearest-rank percentile over a small latency sample."""
    ordered = sorted(samples)
    rank = int(fraction * (len(ordered) - 1) + 0.5)
    return ordered[min(len(ordered) - 1, rank)]


def _stats(samples):
    return (
        round(_percentile(samples, 0.50), 4),
        round(_percentile(samples, 0.99), 4),
    )


def generate_tier_latency_table(samples: int = 200):
    """Per-tier p50/p99 of the stamped ``Quote.latency_ms``."""
    with tempfile.TemporaryDirectory() as root:
        engine = QuoteEngine(cache=ResultCache(pathlib.Path(root)))
        tier1 = [
            engine.quote(
                QuoteRequest(**TIER1_SPECS[i % len(TIER1_SPECS)]), tiers=(1,)
            ).latency_ms
            for i in range(samples)
        ]
        # cold measured fallback: one sample per distinct cell, and the
        # store-back is what makes the tier-2 loop below answer at all
        tier3 = [
            engine.quote(QuoteRequest(graph=g, shock=s), tiers=(3,)).latency_ms
            for g, s in GRAPH_CELLS
        ]
        tier2 = [
            engine.quote(
                QuoteRequest(
                    graph=GRAPH_CELLS[i % len(GRAPH_CELLS)][0],
                    shock=GRAPH_CELLS[i % len(GRAPH_CELLS)][1],
                ),
                tiers=(2,),
            ).latency_ms
            for i in range(samples // 2)
        ]
    rows = []
    records = {}
    arms = (
        (1, "closed form", tier1, "tier1"),
        (2, "cached row (warm)", tier2, "tier2_warm"),
        (3, "measured fallback (cold)", tier3, "tier3_cold"),
    )
    for tier, route, latencies, key in arms:
        p50, p99 = _stats(latencies)
        rows.append((tier, route, len(latencies), f"{p50:.3f}", f"{p99:.3f}"))
        records[f"{key}_p50_ms"] = p50
        records[f"{key}_p99_ms"] = p99
    records["tier1_p50_budget_ms"] = TIER1_P50_BUDGET_MS
    records["tier2_warm_p50_budget_ms"] = TIER2_WARM_P50_BUDGET_MS
    return ("tier", "route", "n", "p50 (ms)", "p99 (ms)"), rows, records


def mixed_basket(n: int = 1000):
    """A heterogeneous basket: the tier-1 rotation plus graph-shaped
    deals, each cycled through four shock assumptions (the cycle lengths
    are coprime, so every spec meets every shock)."""
    specs = TIER1_SPECS + ({"graph": "ring:4"}, {"graph": "ring:5"})
    shocks = (0.03, 0.045, 0.06, 0.075)
    return [
        QuoteRequest(shock=shocks[i % len(shocks)], **specs[i % len(specs)])
        for i in range(n)
    ]


def _tier_mix(quotes):
    counts = {}
    for quote in quotes:
        counts[quote.tier] = counts.get(quote.tier, 0) + 1
    return " ".join(f"t{tier}:{counts[tier]}" for tier in sorted(counts))


def generate_batch_throughput_table(n: int = 1000):
    """Cold vs warm batch throughput on one shared cache."""
    requests = mixed_basket(n)
    with tempfile.TemporaryDirectory() as root:
        engine = QuoteEngine(cache=ResultCache(pathlib.Path(root)))
        start = time.perf_counter()
        cold = quote_batch(engine, requests)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = quote_batch(engine, requests)
        warm_seconds = time.perf_counter() - start
    # Parity first: the warm run answers from the cache the cold run
    # filled, and every member quote must be byte-identical.
    assert batch_digest(cold) == batch_digest(warm)
    rows = [
        ("cold", n, f"{cold_seconds:.3f}", f"{n / cold_seconds:.0f}", _tier_mix(cold)),
        ("warm", n, f"{warm_seconds:.3f}", f"{n / warm_seconds:.0f}", _tier_mix(warm)),
    ]
    records = {
        "batch_size": n,
        "batch_cold_qps": round(n / cold_seconds, 1),
        "batch_warm_qps": round(n / warm_seconds, 1),
        "batch_warm_qps_floor": BATCH_WARM_QPS_FLOOR,
        "batch_digest_parity": True,
    }
    return ("cache", "deals", "seconds", "quotes/sec", "tier mix"), rows, records


def run_gate() -> int:
    """CI perf gate: re-measure and enforce the committed budgets."""
    lat_header, lat_rows, lat = generate_tier_latency_table()
    print(format_table("quote latency ladder", lat_header, lat_rows))
    print()
    thr_header, thr_rows, thr = generate_batch_throughput_table()
    print(format_table("batch throughput (cold vs warm)", thr_header, thr_rows))
    print()
    failures = []
    if lat["tier1_p50_ms"] > TIER1_P50_BUDGET_MS:
        failures.append(
            f"tier-1 p50 {lat['tier1_p50_ms']} ms exceeds the "
            f"{TIER1_P50_BUDGET_MS} ms budget"
        )
    if lat["tier2_warm_p50_ms"] > TIER2_WARM_P50_BUDGET_MS:
        failures.append(
            f"warm tier-2 p50 {lat['tier2_warm_p50_ms']} ms exceeds the "
            f"{TIER2_WARM_P50_BUDGET_MS} ms budget"
        )
    if thr["batch_warm_qps"] < BATCH_WARM_QPS_FLOOR:
        failures.append(
            f"warm batch rate {thr['batch_warm_qps']} q/s is below the "
            f"{BATCH_WARM_QPS_FLOOR} q/s floor"
        )
    for failure in failures:
        print(f"GATE FAIL: {failure}")
    if not failures:
        print("quote perf gate: all budgets met")
    return 1 if failures else 0


# ----------------------------------------------------------------------
# pytest-benchmark arms (run via `pytest benchmarks/bench_quote.py`);
# bounds are deliberately 10x the CI budgets so they never flake — the
# tight gates live in run_gate(), where a slow box fails visibly rather
# than intermittently.
# ----------------------------------------------------------------------
def test_ladder_latency_is_sane(benchmark):
    _, _, records = benchmark.pedantic(
        generate_tier_latency_table, kwargs={"samples": 50}, rounds=1, iterations=1
    )
    assert records["tier1_p50_ms"] <= 10 * TIER1_P50_BUDGET_MS
    assert records["tier2_warm_p50_ms"] <= 10 * TIER2_WARM_P50_BUDGET_MS


def test_batch_is_digest_stable_and_fast(benchmark):
    _, _, records = benchmark.pedantic(
        generate_batch_throughput_table, kwargs={"n": 120}, rounds=1, iterations=1
    )
    assert records["batch_digest_parity"]
    assert records["batch_warm_qps"] >= BATCH_WARM_QPS_FLOOR / 10


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        action="store_true",
        help="enforce the CI latency/throughput budgets (exit 1 on breach)",
    )
    args = parser.parse_args()
    if args.gate:
        sys.exit(run_gate())
    lat_header, lat_rows, lat_records = generate_tier_latency_table()
    print(format_table(
        "EXP-QT: quote latency ladder (per-tier p50/p99)", lat_header, lat_rows
    ))
    print()
    thr_header, thr_rows, thr_records = generate_batch_throughput_table()
    print(format_table(
        "EXP-QT: 1000-deal heterogeneous batch, cold vs warm",
        thr_header, thr_rows,
    ))
    write_bench_json(
        "quote",
        {"experiment": "EXP-QT", **lat_records, **thr_records},
    )
