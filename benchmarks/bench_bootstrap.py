"""EXP-F2 / EXP-T2 — Figure 2 and the §6 bootstrapping claims.

Regenerates the premium ladder table (swap value × premium rate → rounds
needed and initial risk, including the "$1,000,000 hedged by $4 in 3
rounds" cell) and the renege-cost series for the staged protocol.

Run directly to print the tables:  python benchmarks/bench_bootstrap.py
"""

from repro.core.bootstrap import (
    BootstrapSpec,
    BootstrappedSwap,
    extract_bootstrap_outcome,
    initial_risk,
    plan_stages,
    premium_ladder,
    rounds_estimate,
    rounds_needed,
)
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table


def generate_rounds_table():
    """EXP-T2: rounds needed to reach a $4-scale risk across swap sizes."""
    rows = []
    for value in (10_000, 100_000, 1_000_000, 10_000_000):
        for rate in (10, 100):
            target = 4
            rounds = rounds_needed(value, value, rate, target)
            rows.append(
                (
                    f"{value:,}",
                    f"1/{rate}",
                    target,
                    rounds,
                    f"{rounds_estimate(value, value, rate, target):.2f}",
                    initial_risk(value, value, rate, rounds),
                )
            )
    header = ("swap value", "premium rate", "target risk", "rounds", "log_P((A+B)/p)", "initial risk")
    return header, rows


def generate_ladder_table():
    """EXP-F2: the Figure 2 ladder for the paper's $1M example."""
    ladder = premium_ladder(1_000_000, 1_000_000, 100, 3)
    rows = [
        (level, f"{a:,}", f"{b:,}")
        for level, (a, b) in enumerate(ladder)
    ]
    return ("level", "A_i", "B_i"), rows


def generate_renege_series():
    """Loss and lockup when a party walks out at each ladder stage."""
    spec = BootstrapSpec()
    stages = plan_stages(spec)
    rows = []
    for stage in stages:
        halt = stage.offset + 4  # after escrows, before redemption
        instance = BootstrappedSwap(spec).build()
        result = execute(instance, {"Bob": lambda a, r=halt: halt_at(a, r)})
        out = extract_bootstrap_outcome(instance, result)
        deviator_loss = -out.premium_net["Bob"]
        rows.append(
            (
                stage.index,
                "swap" if stage.is_final_swap else f"level-{stage.level}",
                f"{stage.premium_combined:,}",
                f"{deviator_loss:,}",
                f"{out.premium_net['Alice']:,}",
                out.max_lockup,
            )
        )
    header = ("stage", "kind", "stage premium", "Bob's loss", "Alice net", "max lockup(Δ)")
    return header, rows


# ----------------------------------------------------------------------
def test_million_dollar_cell(benchmark):
    header, rows = benchmark(generate_rounds_table)
    cell = next(r for r in rows if r[0] == "1,000,000" and r[1] == "1/100")
    assert cell[3] == 3  # §6: three rounds
    assert cell[5] == 4  # §6: $4 initial risk


def test_ladder_matches_figure2(benchmark):
    header, rows = benchmark(generate_ladder_table)
    assert rows[0] == (0, "1,000,000", "1,000,000")
    assert rows[3] == (3, "1", "4")


def test_renege_losses_bounded_and_compliant_whole(benchmark):
    header, rows = benchmark(generate_renege_series)
    for stage_idx, kind, premium, loss, alice_net, lockup in rows:
        assert int(loss.replace(",", "")) <= int(premium.replace(",", ""))
        assert int(alice_net.replace(",", "")) >= 0
        assert lockup <= 8  # one stage span (§6: one swap + Δ)


def test_bootstrap_throughput(benchmark):
    def run():
        instance = BootstrappedSwap(BootstrapSpec()).build()
        return execute(instance)

    result = benchmark(run)
    assert not result.reverted()


if __name__ == "__main__":
    print(format_table("EXP-T2: bootstrap rounds needed", *generate_rounds_table()))
    print()
    print(format_table("EXP-F2: the $1M ladder (P = 100)", *generate_ladder_table()))
    print()
    print(format_table("EXP-F2: renege cost per ladder stage", *generate_renege_series()))
