"""EXP-AB — ablations over the design choices DESIGN.md calls out.

Five ablations:

1. **leader-set choice** (§7): the protocol works with any feedback vertex
   set; the choice changes premium sizes and phase lengths.  Sweep the
   valid leader sets of the Figure 3a digraph.
2. **footnote-7 path pruning** (§8.2): premium capital with and without
   same-contract forwarding premiums.
3. **the cost of hedging**: transaction counts, run lengths, and peak
   native capital locked, hedged vs base, for each protocol family —
   the price paid for sore-loser protection.
4. **EXP-AB4, the deviation-profitability frontier**: the
   ``repro.campaign.ablation`` engine runs rational (utility-driven)
   pivots across a premium × shock grid on live protocol runs and reports,
   per family and shock, the smallest premium fraction π* that makes
   walking away irrational — the measured form of the paper's π-threshold
   deterrence claim.
5. **EXP-AB5, the refined (continuous) frontier**: adaptive bisection
   between the lattice points (``repro.campaign.ablation.refine``) closes
   the staircase to a π* within 1/64 of the closed forms, and prices the
   named two-party coalitions' collusive walks alongside the single
   pivots.
6. **EXP-AB6, engine throughput**: the vectorized payoff kernels
   (``repro.campaign.ablation.kernels``) vs the full simulator on the
   default grid and on a dense-shock hot path, with byte-identical
   run-digest parity asserted before any number is reported.  The
   committed ``BENCH_ablation.json`` carries the measured speedups plus
   the CI perf-gate floor (a speedup *ratio*, so the gate is
   machine-invariant).

Run directly to print the tables:  python benchmarks/bench_ablation.py
"""

from repro.core.hedged_broker import HedgedBrokerDeal, broker_premium_tables
from repro.core.hedged_multi_party import HedgedMultiPartySwap
from repro.core.hedged_two_party import HedgedTwoPartySwap
from repro.core.premiums import escrow_premium_amounts, leader_redemption_total
from repro.graph.digraph import figure3_graph
from repro.graph.feedback import is_feedback_vertex_set
from repro.graph.schedule import MultiPartySchedule
from repro.protocols.base_broker import BaseBrokerDeal, BrokerSpec
from repro.protocols.base_multi_party import BaseMultiPartySwap
from repro.protocols.base_two_party import BaseTwoPartySwap
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table


def generate_leader_choice_table():
    """Every valid leader set of Figure 3a: premiums and run length."""
    graph = figure3_graph()
    candidates = [("A",), ("B",), ("A", "B"), ("A", "C"), ("B", "C"), ("A", "B", "C")]
    rows = []
    for leaders in candidates:
        if not is_feedback_vertex_set(graph, leaders):
            continue
        schedule = MultiPartySchedule(graph, leaders)
        escrow = escrow_premium_amounts(graph, leaders, 1)
        redemption = sum(leader_redemption_total(graph, l, 1) for l in leaders)
        rows.append(
            (
                "{" + ",".join(leaders) + "}",
                sum(escrow.values()),
                redemption,
                schedule.forward_len,
                schedule.horizon,
            )
        )
    return (
        "leader set", "total escrow premium (p)", "leaders' redemption total (p)",
        "escrow phase (Δ)", "total run (Δ)",
    ), rows


def generate_pruning_table():
    """Footnote-7 pruning: premium capital per party, on vs off."""
    spec = BrokerSpec()
    rows = []
    for optimize in (True, False):
        tables = broker_premium_tables(spec, premium=1, optimize=optimize)
        total_t = sum(tables["trading"].values())
        total_e = sum(tables["escrow"].values())
        keys = sum(len(v) for v in tables["required_keys"].values())
        rows.append(
            (
                "pruned (footnote 7)" if optimize else "unpruned",
                total_t,
                total_e,
                keys,
            )
        )
    return ("mode", "total T (p)", "total E (p)", "required premium slots"), rows


def _run_cost(builder):
    instance = builder()
    result = execute(instance)
    txs = len(result.transactions)
    # peak native locked across all contracts and heights is approximated
    # by the sum of all native amounts that ever entered contracts
    native_in = 0
    for event in result.events:
        if "premium" in event.name and event.name.endswith("deposited"):
            native_in += int(event.data.get("amount", 0))
        if event.name == "premium_endowed":
            native_in += int(event.data.get("amount", 0))
    return txs, instance.horizon, native_in


def generate_overhead_table():
    rows = []
    pairs = [
        ("two-party", lambda: BaseTwoPartySwap().build(), lambda: HedgedTwoPartySwap().build()),
        (
            "multi-party (fig. 3a)",
            lambda: BaseMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build(),
            lambda: HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build(),
        ),
        ("broker", lambda: BaseBrokerDeal().build(), lambda: HedgedBrokerDeal().build()),
    ]
    for name, base_builder, hedged_builder in pairs:
        base_txs, base_len, _ = _run_cost(base_builder)
        hedged_txs, hedged_len, premium_capital = _run_cost(hedged_builder)
        rows.append(
            (
                name,
                base_txs,
                hedged_txs,
                base_len,
                hedged_len,
                premium_capital,
            )
        )
    return (
        "protocol", "base txs", "hedged txs", "base run (Δ)", "hedged run (Δ)",
        "premium capital (p units)",
    ), rows


FRONTIER_PREMIUMS = (0.0, 0.01, 0.03, 0.08)
FRONTIER_SHOCKS = (0.015, 0.045, 0.105)


def generate_frontier_table():
    """EXP-AB4: the staked-stage deterrence frontier, every family."""
    from repro.campaign import CampaignRunner, ablation_matrix, reduce_frontier

    matrix = ablation_matrix(
        premium_fractions=FRONTIER_PREMIUMS, shock_fractions=FRONTIER_SHOCKS
    )
    report = CampaignRunner(matrix).run()
    assert report.ok, [v.message for v in report.violations]
    frontier = reduce_frontier(report)
    rows = []
    for row in frontier.rows:
        if row.stage != "staked":
            continue
        profitable = [c.pi for c in row.cells if c.deviation_profitable]
        rows.append(
            (
                row.family,
                f"{row.shock:g}",
                "-" if row.pi_star is None else f"{row.pi_star:g}",
                ",".join(f"{pi:g}" for pi in profitable) or "-",
                f"{max((c.deviation_gain for c in row.cells), default=0.0):g}",
            )
        )
    return (
        "family", "price drop s", "pi* (deters)", "profitable pi",
        "max deviation gain",
    ), rows


REFINED_SHOCK = 0.045


def generate_refined_frontier_table():
    """EXP-AB5: bisected continuous π* vs the closed forms, + coalitions."""
    from repro.campaign import (
        CampaignRunner,
        ablation_matrix,
        reduce_frontier,
        refine_frontier,
        refine_spec,
    )
    from repro.campaign.ablation import (
        closed_form_coalition_pi_star,
        closed_form_pi_star,
    )
    from repro.campaign.canon import fmt_fraction

    matrix = ablation_matrix(
        premium_fractions=FRONTIER_PREMIUMS,
        shock_fractions=(REFINED_SHOCK,),
        stages=("staked",),
        coalitions=True,
    )
    report = CampaignRunner(matrix).run()
    assert report.ok, [v.message for v in report.violations]
    refined = refine_frontier(reduce_frontier(report))
    spec = refine_spec(
        premium_fractions=FRONTIER_PREMIUMS,
        shock_fractions=(REFINED_SHOCK,),
        stages=("staked",),
        coalitions=True,
    )
    rows = []
    for row in refined.rows:
        closed = (
            closed_form_pi_star(row.family, row.shock)
            if not row.coalition
            else closed_form_coalition_pi_star(
                row.family, row.coalition, row.shock
            )
        )
        rows.append(
            (
                row.family,
                row.coalition or "pivot",
                f"{row.shock:g}",
                "-" if row.lattice_hi is None else f"{row.lattice_hi:g}",
                "-" if row.pi_star is None else fmt_fraction(row.pi_star),
                "-" if closed is None else f"{closed:g}",
                len(row.probes),
            )
        )
    records = {
        "spec_digest": spec.digest(),
        "run_digest": report.run_digest,
        "refined_digest": refined.digest,
        "scenarios": report.scenarios,
        "scenarios_per_second": report.scenarios_per_second,
        "probes": refined.probes,
        "rows": len(refined.rows),
    }
    return (
        "family", "pivot", "price drop s", "lattice pi*", "refined pi*",
        "closed form", "probes",
    ), rows, records


#: dense shock sweep for the kernel hot path — enough distinct shocks that
#: template calibration amortizes and the vectorized decision replay
#: dominates, which is the regime the grid engine actually runs in.
HOT_SHOCKS = tuple(round(0.0005 + 0.00125 * i, 8) for i in range(96))

#: CI perf-gate floor on the warm dense-grid *engine-level* kernel speedup
#: over the simulator.  Engine-level throughput divides scenarios by the
#: per-result recorded seconds, isolating the execution engines from the
#: runner's (engine-independent) matrix expansion and report aggregation.
#: A *ratio*, so it holds across machines; committed an order of magnitude
#: under the measured ~1100x so only a real hot-path regression trips it.
KERNEL_HOT_SPEEDUP_FLOOR = 100.0


def _engine_rate(report):
    """Scenarios per second of *engine* time: the sum of the per-result
    recorded seconds, excluding runner overhead shared by both engines."""
    return report.scenarios / sum(r.elapsed_seconds for r in report.results)


def generate_engine_throughput_table():
    """EXP-AB6: kernel vs simulator throughput, digest parity enforced."""
    from repro.campaign import CampaignRunner, KernelEngine, ablation_matrix

    grids = (
        ("default", ablation_matrix(coalitions=True)),
        ("hot", ablation_matrix(shock_fractions=HOT_SHOCKS, coalitions=True)),
    )
    rows = []
    records = {}
    for grid_name, matrix in grids:
        sim = CampaignRunner(matrix, backend="serial").run()
        assert sim.ok, [v.message for v in sim.violations]
        engine = KernelEngine()
        cold = CampaignRunner(matrix, backend="kernel", kernel=engine).run()
        warm = CampaignRunner(matrix, backend="kernel", kernel=engine).run()
        # Parity first: a throughput number for a diverging engine is noise.
        assert cold.run_digest == sim.run_digest, grid_name
        assert warm.run_digest == sim.run_digest, grid_name
        arms = (("simulator", sim), ("kernel cold", cold), ("kernel warm", warm))
        for arm_name, report in arms:
            speedup = _engine_rate(report) / _engine_rate(sim)
            rows.append(
                (
                    grid_name,
                    arm_name,
                    report.scenarios,
                    f"{report.scenarios_per_second:.0f}",
                    f"{_engine_rate(report):.0f}",
                    f"{speedup:.1f}x",
                )
            )
        records[f"{grid_name}_scenarios"] = sim.scenarios
        records[f"{grid_name}_simulator_per_second"] = round(
            sim.scenarios_per_second, 1
        )
        records[f"{grid_name}_end_to_end_warm_speedup"] = round(
            warm.scenarios_per_second / sim.scenarios_per_second, 2
        )
        records[f"{grid_name}_engine_cold_speedup"] = round(
            _engine_rate(cold) / _engine_rate(sim), 2
        )
        records[f"{grid_name}_engine_warm_speedup"] = round(
            _engine_rate(warm) / _engine_rate(sim), 2
        )
    records["kernel_hot_speedup_floor"] = KERNEL_HOT_SPEEDUP_FLOOR
    return (
        "grid", "engine", "scenarios", "end-to-end scen/s",
        "engine scen/s", "engine speedup",
    ), rows, records


# ----------------------------------------------------------------------
def test_every_valid_leader_set_works(benchmark):
    header, rows = benchmark(generate_leader_choice_table)
    assert len(rows) >= 5  # {C} is the only invalid singleton
    # more leaders never lengthen the escrow phase
    by_size = {}
    for label, e, r, fwd, run in rows:
        size = label.count(",") + 1
        by_size.setdefault(size, []).append(fwd)
    assert min(by_size[3]) <= min(by_size[1])


def test_all_leader_sets_execute_cleanly():
    graph = figure3_graph()
    for leaders in [("A",), ("B",), ("A", "B"), ("A", "B", "C")]:
        instance = HedgedMultiPartySwap(graph=graph, leaders=leaders).build()
        result = execute(instance)
        assert not result.reverted(), leaders


def test_pruning_saves_capital(benchmark):
    header, rows = benchmark(generate_pruning_table)
    pruned = next(r for r in rows if r[0].startswith("pruned"))
    unpruned = next(r for r in rows if r[0] == "unpruned")
    assert pruned[1] < unpruned[1]
    assert pruned[2] < unpruned[2]
    assert pruned[3] < unpruned[3]


def test_hedging_overhead_is_bounded(benchmark):
    header, rows = benchmark(generate_overhead_table)
    for name, base_txs, hedged_txs, base_len, hedged_len, capital in rows:
        assert hedged_txs > base_txs  # premiums cost transactions...
        assert hedged_txs <= 6 * base_txs  # ...but only a constant factor
        assert hedged_len <= 3 * base_len + 6
        assert capital > 0


def test_frontier_matches_two_party_closed_form(benchmark):
    """EXP-AB4: the measured two-party π* is the smallest swept premium
    fraction above the shock — the paper's threshold, within a grid step."""
    header, rows = benchmark.pedantic(generate_frontier_table, rounds=1, iterations=1)
    two_party = {r[1]: r for r in rows if r[0] == "two-party"}
    for shock in FRONTIER_SHOCKS:
        above = [pi for pi in FRONTIER_PREMIUMS if pi * 100 > shock * 100]
        expected = f"{min(above):g}" if above else "-"
        assert two_party[f"{shock:g}"][2] == expected, (shock, two_party)
    # a deterred line never has a profitable premium at or past pi*
    for family, shock, pi_star, profitable, max_gain in rows:
        if pi_star != "-" and profitable != "-":
            assert max(float(p) for p in profitable.split(",")) < float(pi_star)


def test_refined_frontier_brackets_the_closed_forms(benchmark):
    """EXP-AB5: the bisected π* lands within the default tolerance of the
    continuous closed-form thresholds; coalition rows never price below
    the single pivot (member-to-member forfeits deter nothing)."""
    from repro.campaign.ablation import DEFAULT_TOL

    header, rows, _ = benchmark.pedantic(
        generate_refined_frontier_table, rounds=1, iterations=1
    )
    singles = {}
    for family, pivot, shock, lattice, refined, closed, probes in rows:
        if pivot == "pivot":
            singles[family] = refined
            assert refined != "-" and closed != "-"
            assert abs(float(refined) - float(closed)) <= DEFAULT_TOL, (
                family, refined, closed,
            )
            # refinement strictly improves on the lattice staircase
            assert float(refined) <= float(lattice)
    for family, pivot, shock, lattice, refined, closed, probes in rows:
        if pivot != "pivot" and refined != "-":
            assert float(refined) >= float(singles[family])


def test_kernel_engine_reproduces_simulator_fast(benchmark):
    """EXP-AB6: byte-identical digests at a real (order-of-magnitude or
    better) warm speedup.  The bench assertion bound is far below the
    committed BENCH floor so it never flakes on a loaded machine; the CI
    perf gate (benchmarks/parity_audit.py) enforces the committed floor."""
    header, rows, records = benchmark.pedantic(
        generate_engine_throughput_table, rounds=1, iterations=1
    )
    assert records["hot_engine_warm_speedup"] >= 20.0
    assert records["hot_end_to_end_warm_speedup"] >= 2.0


if __name__ == "__main__":
    print(format_table("EXP-AB: leader-set choice (Figure 3a)", *generate_leader_choice_table()))
    print()
    print(format_table("EXP-AB: footnote-7 pruning", *generate_pruning_table()))
    print()
    print(format_table("EXP-AB: the cost of hedging", *generate_overhead_table()))
    print()
    print(format_table(
        "EXP-AB4: deviation-profitability frontier (staked-stage shocks)",
        *generate_frontier_table(),
    ))
    print()
    ab5_header, ab5_rows, ab5_records = generate_refined_frontier_table()
    print(format_table(
        "EXP-AB5: refined (bisected) frontier vs closed forms + coalitions",
        ab5_header, ab5_rows,
    ))
    print()
    ab6_header, ab6_rows, ab6_records = generate_engine_throughput_table()
    print(format_table(
        "EXP-AB6: kernel vs simulator throughput (digest parity enforced)",
        ab6_header, ab6_rows,
    ))
    try:
        from benchmarks.tables import write_bench_json
    except ImportError:  # running the file directly from within benchmarks/
        from tables import write_bench_json
    write_bench_json(
        "ablation",
        {
            "experiment": "EXP-AB5",
            **ab5_records,
            "engine_throughput": ab6_records,
        },
    )
