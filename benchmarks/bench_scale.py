"""EXP-SC — scaling the hedged multi-party swap.

Not a paper artifact, but the sanity check any adopter asks for: how do
run length, transaction counts, and premium capital scale with the number
of parties?  Rings scale linearly on every axis (the §7.1 unique-path
claim, end to end); complete digraphs show the exponential premium capital
the paper warns about while the *protocol machinery itself* stays fast.

Run directly to print the table:  python benchmarks/bench_scale.py
"""

import time

from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.graph.digraph import complete_graph, ring_graph
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

RING_SIZES = (3, 4, 5, 6, 8, 10)
COMPLETE_SIZES = (3, 4, 5)


def _measure(graph, leaders=None):
    builder = (
        HedgedMultiPartySwap(graph=graph, leaders=leaders)
        if leaders
        else HedgedMultiPartySwap(graph=graph)
    )
    instance = builder.build()
    start = time.perf_counter()
    result = execute(instance)
    elapsed = time.perf_counter() - start
    out = extract_multi_party_outcome(instance, result)
    assert out.all_redeemed
    premiums = instance.meta["escrow_premiums"]
    return {
        "horizon": instance.horizon,
        "txs": len(result.transactions),
        "escrow_premium_total": sum(premiums.values()),
        "seconds": elapsed,
    }


def generate_ring_scaling():
    rows = []
    for n in RING_SIZES:
        m = _measure(ring_graph(n), leaders=("P0",))
        rows.append(
            (n, m["horizon"], m["txs"], m["escrow_premium_total"], f"{m['seconds'] * 1e3:.1f}ms")
        )
    return ("ring n", "run (Δ)", "transactions", "escrow premium total (p)", "sim time"), rows


def generate_complete_scaling():
    rows = []
    for n in COMPLETE_SIZES:
        m = _measure(complete_graph(n))
        rows.append(
            (n, m["horizon"], m["txs"], m["escrow_premium_total"], f"{m['seconds'] * 1e3:.1f}ms")
        )
    return ("complete n", "run (Δ)", "transactions", "escrow premium total (p)", "sim time"), rows


# ----------------------------------------------------------------------
def test_ring_everything_scales_linearly(benchmark):
    header, rows = benchmark.pedantic(generate_ring_scaling, rounds=1, iterations=1)
    ns = [r[0] for r in rows]
    horizons = [r[1] for r in rows]
    premiums = [r[3] for r in rows]
    # run length grows linearly: constant second differences
    diffs = [b - a for a, b in zip(horizons, horizons[1:])]
    steps = [m - n for n, m in zip(ns, ns[1:])]
    assert all(d == 4 * s for d, s in zip(diffs, steps))  # 4 phases x Δ/party
    # per-arc (and hence per-leader) premium is linear in n (§7.1), so the
    # total across the n arcs is exactly n²·p
    assert premiums == [n * n for n in ns]


def test_complete_premium_capital_explodes_but_sim_stays_fast(benchmark):
    header, rows = benchmark.pedantic(generate_complete_scaling, rounds=1, iterations=1)
    premiums = [r[3] for r in rows]
    assert premiums[-1] > 10 * premiums[0]
    # the machinery itself stays subsecond even at K5
    assert all(float(r[4].rstrip("ms")) < 2000 for r in rows)


def test_ten_party_ring_completes(benchmark):
    result = benchmark.pedantic(
        lambda: execute(HedgedMultiPartySwap(graph=ring_graph(10)).build()),
        rounds=1, iterations=1,
    )
    assert not result.reverted()


if __name__ == "__main__":
    print(format_table("EXP-SC: hedged swap on rings", *generate_ring_scaling()))
    print()
    print(format_table("EXP-SC: hedged swap on complete digraphs", *generate_complete_scaling()))
