"""EXP-M1 — §10: "We used model checking to verify the properties of the
two-party hedged swap and some three-party hedged swaps."

Our analog explores the contract-constrained adversary exhaustively against
the real implementation: every halt round and every action-subset skip for
every party (and every pair of parties for the two-party swap), asserting
the safety/liveness/hedged properties on each outcome.  The regenerated
table reports the state-space sizes and verification results.

Run directly to print the table:  python benchmarks/bench_model_check.py
"""

from repro.checker import (
    ModelChecker,
    full_strategy_space,
    halt_strategies,
    properties as props,
)
from repro.core.hedged_multi_party import HedgedMultiPartySwap
from repro.core.hedged_two_party import HedgedTwoPartySwap
from repro.graph.digraph import complete_graph, figure3_graph, ring_graph

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

TWO_PARTY_METHODS = ("deposit_premium", "escrow_principal", "redeem")
MULTI_METHODS = (
    "deposit_escrow_premium",
    "deposit_redemption_premium",
    "escrow_principal",
    "present_hashkey",
)


def _checks():
    two_party_space = full_strategy_space(8, TWO_PARTY_METHODS, max_skip_subset=3)
    fig3 = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    ring3 = HedgedMultiPartySwap(graph=ring_graph(3)).build()
    k3 = HedgedMultiPartySwap(graph=complete_graph(3)).build()
    return [
        (
            "two-party hedged swap (pairs)",
            ModelChecker(
                builder=lambda: HedgedTwoPartySwap().build(),
                properties=[props.no_stuck_escrow, props.two_party_hedged],
                strategies={p: two_party_space for p in ("Alice", "Bob")},
                max_adversaries=2,
            ),
        ),
        (
            "three-party: Figure 3a",
            ModelChecker(
                builder=lambda: HedgedMultiPartySwap(
                    graph=figure3_graph(), leaders=("A",)
                ).build(),
                properties=[props.no_stuck_escrow, props.multi_party_lemmas],
                strategies={
                    p: full_strategy_space(fig3.horizon, MULTI_METHODS, max_skip_subset=2)
                    for p in ("A", "B", "C")
                },
                max_adversaries=1,
            ),
        ),
        (
            "three-party: ring",
            ModelChecker(
                builder=lambda: HedgedMultiPartySwap(graph=ring_graph(3)).build(),
                properties=[props.no_stuck_escrow, props.multi_party_lemmas],
                strategies={p: halt_strategies(ring3.horizon) for p in ring_graph(3).parties},
                max_adversaries=1,
            ),
        ),
        (
            "three-party: complete (2 leaders)",
            ModelChecker(
                builder=lambda: HedgedMultiPartySwap(graph=complete_graph(3)).build(),
                properties=[props.no_stuck_escrow, props.multi_party_lemmas],
                strategies={p: halt_strategies(k3.horizon) for p in complete_graph(3).parties},
                max_adversaries=1,
            ),
        ),
    ]


def generate_model_check_table():
    rows = []
    for label, checker in _checks():
        report = checker.run()
        rows.append(
            (
                label,
                report.scenarios,
                report.transactions,
                f"{report.elapsed_seconds:.2f}s",
                len(report.violations),
            )
        )
    return ("protocol", "scenarios", "transactions", "time", "violations"), rows


# ----------------------------------------------------------------------
def test_model_check_all_clean(benchmark):
    header, rows = benchmark.pedantic(generate_model_check_table, rounds=1, iterations=1)
    assert all(r[4] == 0 for r in rows)
    assert sum(r[1] for r in rows) >= 400  # meaningful state-space coverage


if __name__ == "__main__":
    print(format_table("EXP-M1: exhaustive model checking", *generate_model_check_table()))
