"""EXP-G1 — rational deviation vs volatility (§1 motivation, Xu et al.).

Regenerates the success-rate table of the two-party swap as a stopping game
on a GBM price ratio: without premiums, rational parties defect on any
adverse move (the Xu et al. observation the paper cites); premiums of a few
percent — e.g. CRR-priced ones — restore the success rate.

Run directly to print the tables:  python benchmarks/bench_game.py
"""

from repro.analysis.game import SwapGame, success_table
from repro.analysis.options import suggest_premium

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

SIGMAS = (0.25, 0.5, 1.0, 2.0)
PREMIUMS = (0.0, 0.01, 0.02, 0.05, 0.10)


def generate_success_table():
    rows = []
    for result in success_table(list(SIGMAS), list(PREMIUMS), n_paths=20_000):
        rows.append(
            (
                result.sigma_annual,
                f"{result.premium_fraction:.0%}",
                f"{result.success_rate:.3f}",
                f"{result.bob_defection_rate:.3f}",
                f"{result.alice_defection_rate:.3f}",
                f"{result.mean_compliant_loss:.4f}",
            )
        )
    return (
        "sigma/yr", "premium", "success", "Bob defects", "Alice defects", "residual loss",
    ), rows


def generate_crr_premium_table():
    """CRR-priced premiums per §4 and the success rate they buy."""
    rows = []
    for sigma in SIGMAS:
        fair = suggest_premium(1.0, sigma, lockup_deltas=3, delta_hours=12)
        game = SwapGame(sigma_annual=sigma, premium_fraction=fair, n_paths=20_000).play()
        rows.append(
            (
                sigma,
                f"{fair:.4f}",
                f"{game.success_rate:.3f}",
                f"{SwapGame(sigma_annual=sigma, premium_fraction=0.0, n_paths=20_000).play().success_rate:.3f}",
            )
        )
    return ("sigma/yr", "CRR fair premium", "hedged success", "base success"), rows


# ----------------------------------------------------------------------
def test_premiums_restore_success(benchmark):
    header, rows = benchmark.pedantic(generate_success_table, rounds=1, iterations=1)
    by = {(r[0], r[1]): float(r[2]) for r in rows}
    for sigma in SIGMAS:
        # success increases monotonically with the premium at every sigma
        series = [by[(sigma, f"{p:.0%}")] for p in PREMIUMS]
        assert all(b >= a for a, b in zip(series, series[1:]))
        assert series[-1] > series[0]
    # zero-premium success is poor at high volatility (Xu et al. shape)
    assert by[(2.0, "0%")] < 0.25


def test_crr_premiums_beat_base(benchmark):
    header, rows = benchmark.pedantic(generate_crr_premium_table, rounds=1, iterations=1)
    for sigma, fair, hedged, base in rows:
        assert float(hedged) > float(base)
        assert 0.0 < float(fair) < 0.2  # a few percent, as the paper expects


if __name__ == "__main__":
    print(format_table("EXP-G1: swap success vs volatility and premium", *generate_success_table()))
    print()
    print(format_table("EXP-G1: CRR-priced premiums", *generate_crr_premium_table()))
