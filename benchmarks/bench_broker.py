"""EXP-F4 — Figure 4: the broker protocol and its §8.2 premium structure.

Regenerates the premium tables (E, T, R with and without the footnote-7
optimization), the deviation/payoff matrix for all three parties, and the
multi-round trading premium recurrence.

Run directly to print the tables:  python benchmarks/bench_broker.py
"""

from repro.core.hedged_broker import (
    HedgedBrokerDeal,
    broker_premium_tables,
    extract_broker_outcome,
    multi_round_trading_premiums,
)
from repro.parties.strategies import halt_at, skip_methods
from repro.protocols.base_broker import BrokerSpec
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

SPEC = BrokerSpec()


def generate_premium_structure():
    rows = []
    for optimize in (True, False):
        tables = broker_premium_tables(SPEC, premium=1, optimize=optimize)
        tag = "footnote-7" if optimize else "unoptimized"
        for arc, amount in sorted(tables["trading"].items()):
            rows.append((tag, f"T{arc}", amount))
        for arc, amount in sorted(tables["escrow"].items()):
            rows.append((tag, f"E{arc}", amount))
    return ("mode", "premium", "amount (p)"), rows


def generate_deviation_matrix():
    scenarios = [
        ("compliant", None, None),
        ("Bob omits B1", "Bob", lambda a: skip_methods(a, "escrow_asset")),
        ("Bob omits B2", "Bob", lambda a: halt_at(a, 7)),
        ("Carol omits C1", "Carol", lambda a: skip_methods(a, "escrow_asset")),
        ("Carol omits C2", "Carol", lambda a: halt_at(a, 7)),
        ("Alice omits trades", "Alice", lambda a: halt_at(a, 6)),
        ("Alice omits A3", "Alice", lambda a: halt_at(a, 7)),
        ("Alice skips premiums", "Alice", lambda a: skip_methods(a, "deposit_trading_premium")),
    ]
    rows = []
    for label, deviator, transform in scenarios:
        instance = HedgedBrokerDeal(premium=1).build()
        result = execute(instance, {deviator: transform} if deviator else {})
        out = extract_broker_outcome(instance, result)
        rows.append(
            (
                label,
                "yes" if out.completed else "no",
                out.premium_net["Alice"],
                out.premium_net["Bob"],
                out.premium_net["Carol"],
            )
        )
    return ("scenario", "completed", "Alice net", "Bob net", "Carol net"), rows


def generate_multi_round_table():
    """§8.2 extension: premiums for a 3-round trading chain."""
    rounds = [[("A", "M1")], [("M1", "M2")], [("M2", "C")]]
    tables = multi_round_trading_premiums(
        rounds, escrow_arcs=[("B", "A")], origination_totals={"C": 2, "M1": 2, "M2": 2, "A": 2, "B": 2}
    )
    rows = []
    for name in ("E", "T_1", "T_2", "T_3"):
        for arc, amount in sorted(tables[name].items()):
            rows.append((name, str(arc), amount))
    return ("table", "arc", "amount (p)"), rows


def generate_resale_chain_matrix():
    """§8.2 extension executed: r-broker resale chains under deviation."""
    from repro.core.multi_round_deal import DealSpec, MultiRoundDeal, extract_deal_outcome

    rows = []
    for brokers in (("Solo",), ("Ann", "Mike"), ("A1", "A2", "A3")):
        spec = DealSpec(brokers=brokers)
        for label, deviations in (
            ("compliant", {}),
            ("seller fails", {spec.seller: lambda a: skip_methods(a, "escrow_asset")}),
            ("first broker fails", {brokers[0]: lambda a: skip_methods(a, "trade")}),
        ):
            instance = MultiRoundDeal(spec, premium=1).build()
            result = execute(instance, deviations)
            out = extract_deal_outcome(instance, result)
            compliant_min = min(
                net for name, net in out.premium_net.items() if name not in deviations
            )
            rows.append(
                (
                    len(brokers),
                    label,
                    "yes" if out.completed else "no",
                    compliant_min,
                    min(out.premium_net.values()),
                )
            )
    return ("chain length r", "scenario", "completed", "min compliant net", "deviator net"), rows


# ----------------------------------------------------------------------
def test_premium_structure_matches_section82(benchmark):
    header, rows = benchmark(generate_premium_structure)
    values = {(mode, name): amount for mode, name, amount in rows}
    # optimized: T = R_w(w) = 2p, E = T(A) = 4p
    assert values[("footnote-7", "T('Alice', 'Bob')")] == 2
    assert values[("footnote-7", "E('Bob', 'Alice')")] == 4
    # the optimization strictly reduces premiums
    assert values[("unoptimized", "T('Alice', 'Bob')")] > 2
    assert values[("unoptimized", "E('Bob', 'Alice')")] > 4


def test_deviation_matrix_matches_paper(benchmark):
    header, rows = benchmark(generate_deviation_matrix)
    by = {r[0]: r for r in rows}
    assert by["compliant"][1] == "yes"
    assert by["compliant"][2:] == (0, 0, 0)
    # §8.2: Bob's omissions compensate Carol (and Alice breaks even or gains)
    for scenario in ("Bob omits B1", "Bob omits B2"):
        assert by[scenario][3] < 0  # Bob pays
        assert by[scenario][4] >= 1  # Carol compensated
        assert by[scenario][2] >= 0  # Alice whole
    # Alice's omissions compensate both escrowers
    for scenario in ("Alice omits trades", "Alice omits A3"):
        assert by[scenario][2] < 0
        assert by[scenario][3] >= 1 and by[scenario][4] >= 1
    # premium-phase walkouts end with only refunds
    assert by["Alice skips premiums"][2:] == (0, 0, 0)


def test_multi_round_recurrence_shape(benchmark):
    header, rows = benchmark(generate_multi_round_table)
    values = {(name, arc): amount for name, arc, amount in rows}
    assert values[("T_3", "('M2', 'C')")] == 2  # last round: R_C(C)
    assert values[("T_2", "('M1', 'M2')")] == 2  # covers M2's round-3 premium
    assert values[("E", "('B', 'A')")] == 2  # covers A's round-1 premium


def test_resale_chains_hold_bounds(benchmark):
    header, rows = benchmark.pedantic(generate_resale_chain_matrix, rounds=1, iterations=1)
    for r, label, completed, compliant_min, deviator_net in rows:
        if label == "compliant":
            assert completed == "yes" and compliant_min == 0
        else:
            assert completed == "no"
            assert compliant_min >= 0  # every compliant party whole
            assert deviator_net < 0  # the sore loser pays


def test_hedged_broker_throughput(benchmark):
    def run():
        instance = HedgedBrokerDeal(premium=1).build()
        return execute(instance)

    result = benchmark(run)
    assert not result.reverted()


if __name__ == "__main__":
    print(format_table("EXP-F4: §8.2 premium structure", *generate_premium_structure()))
    print()
    print(format_table("EXP-F4: broker deviation matrix", *generate_deviation_matrix()))
    print()
    print(format_table("EXP-F4: multi-round trading premiums", *generate_multi_round_table()))
    print()
    print(format_table("EXP-F4: r-broker resale chains", *generate_resale_chain_matrix()))
