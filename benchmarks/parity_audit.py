"""CI parity audit + perf gate for the vectorized payoff kernels.

The kernel engine (``repro.campaign.ablation.kernels``) is the default
executor for ablation grids; the simulator remains the authority.  This
script is the contract between them, run on every CI push:

1. **Parity audit** — every cell of the full default ablation grid
   (all families, coalitions included) runs through *both* engines; any
   divergence in a scenario digest, metric, violation set, premium net,
   or transaction count fails the job, as does a frontier-digest or
   run-digest mismatch.  Digest-chain equality is the strongest available
   check: the digests cover labels, violations, transaction counts,
   premium flows, and ``repr``-exact metric floats.
2. **Perf gate** — the warm dense-grid kernel speedup over the simulator
   must not drop below the floor committed in ``BENCH_ablation.json``
   (``engine_throughput.kernel_hot_speedup_floor``).  The gate compares a
   speedup *ratio* measured in-process, so it is machine-invariant: a
   slow CI box slows both engines alike.

Exit status is nonzero on any divergence or floor breach.

Usage::

    python benchmarks/parity_audit.py            # parity + perf gate
    python benchmarks/parity_audit.py --no-perf  # parity only
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

#: fallback floor when no committed BENCH_ablation.json is present.
DEFAULT_SPEEDUP_FLOOR = 100.0

_RESULT_FIELDS = (
    "digest",
    "label",
    "axes",
    "violations",
    "metrics",
    "transactions",
    "reverted",
    "premium_net",
    "trace",
)


def committed_floor(repo_root: pathlib.Path) -> float:
    """The perf floor from the committed BENCH file, or the default."""
    path = repo_root / "BENCH_ablation.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return float(data["engine_throughput"]["kernel_hot_speedup_floor"])
    except (OSError, ValueError, KeyError, TypeError):
        return DEFAULT_SPEEDUP_FLOOR


def audit_parity() -> list[str]:
    """Run the default grid through both engines; return divergences."""
    from repro.campaign import CampaignRunner, ablation_matrix, reduce_frontier

    matrix = ablation_matrix(coalitions=True)
    serial = CampaignRunner(matrix, backend="serial").run()
    kernel = CampaignRunner(matrix, backend="kernel").run()

    problems: list[str] = []
    if len(serial.results) != len(kernel.results):
        problems.append(
            f"result count: simulator {len(serial.results)} "
            f"vs kernel {len(kernel.results)}"
        )
        return problems
    for want, got in zip(serial.results, kernel.results):
        for field in _RESULT_FIELDS:
            if getattr(want, field) != getattr(got, field):
                problems.append(
                    f"{want.label}: {field} diverges — "
                    f"simulator {getattr(want, field)!r} "
                    f"vs kernel {getattr(got, field)!r}"
                )
    if kernel.run_digest != serial.run_digest:
        problems.append(
            f"run digest: simulator {serial.run_digest} "
            f"vs kernel {kernel.run_digest}"
        )
    serial_frontier = reduce_frontier(serial)
    kernel_frontier = reduce_frontier(kernel)
    if kernel_frontier.digest != serial_frontier.digest:
        problems.append(
            f"frontier digest: simulator {serial_frontier.digest} "
            f"vs kernel {kernel_frontier.digest}"
        )
    if not problems:
        print(
            f"parity: {serial.scenarios} scenarios byte-identical across "
            f"engines (run digest {serial.run_digest[:16]}..., frontier "
            f"digest {serial_frontier.digest[:16]}...)"
        )
    return problems


def gate_perf(floor: float) -> list[str]:
    """Measure the hot-path speedup ratio; return floor breaches."""
    try:
        from benchmarks.bench_ablation import generate_engine_throughput_table
    except ImportError:
        from bench_ablation import generate_engine_throughput_table

    header, rows, records = generate_engine_throughput_table()
    print(format_table("engine throughput (this machine)", header, rows))
    warm = records["hot_engine_warm_speedup"]
    print(
        f"perf gate: warm dense-grid engine-level speedup {warm:.1f}x "
        f"(committed floor {floor:.1f}x)"
    )
    if warm < floor:
        return [
            f"hot-path regression: warm kernel speedup {warm:.2f}x fell "
            f"below the committed floor {floor:.2f}x"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-perf",
        action="store_true",
        help="run only the parity audit, skip the throughput gate",
    )
    args = parser.parse_args(argv)

    problems = audit_parity()
    if not problems and not args.no_perf:
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        problems += gate_perf(committed_floor(repo_root))

    if problems:
        print(f"\nFAIL: {len(problems)} divergence(s)", file=sys.stderr)
        for problem in problems[:50]:
            print(f"  - {problem}", file=sys.stderr)
        if len(problems) > 50:
            print(f"  ... and {len(problems) - 50} more", file=sys.stderr)
        return 1
    print("OK: kernel engine verified against the simulator audit path")
    return 0


if __name__ == "__main__":
    sys.exit(main())
