"""Tiny table formatter shared by the benchmark harness.

Every experiment module exposes ``generate_*`` functions returning
``(header, rows)`` pairs; running a module directly prints the regenerated
paper artifact, and the pytest-benchmark tests both time the generators and
assert the paper's qualitative claims on the produced rows.

:func:`write_bench_json` is the machine-readable sibling of the printed
tables: running a benchmark module directly also drops a ``BENCH_*.json``
next to the invocation (scenarios/sec, cache hit-rates, spec and run
digests), so the performance trajectory is trackable across PRs without
scraping stdout.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Sequence


def write_bench_json(
    name: str,
    payload: dict,
    directory: str | None = None,
    phases: dict | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` (sorted keys, indented) and return it.

    ``phases`` takes the ``repro.obs.phase_fragments`` of a traced run —
    ``{phase: {count, total_seconds}}`` — and embeds it under a
    top-level ``"phases"`` key, so committed baselines carry a
    phase-level timing breakdown next to their headline throughput.
    """
    if phases:
        payload = {**payload, "phases": phases}
    path = pathlib.Path(directory or ".") / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"machine-readable results written to {path}")
    return path


def format_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [title, "=" * len(title)]
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append(sep.join("-" * widths[i] for i in range(len(header))))
    for row in materialized:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
