"""EXP-G2 — rational deviation inside live protocol runs.

EXP-G1 models the deviation game analytically; this experiment runs it on
the actual protocols.  A price shock hits Alice's asset mid-swap; Bob is
*rational* — he walks away exactly when walking beats completing.  In the
base protocol any drop makes him walk (his option is free).  In the hedged
protocol the forfeited premium deters every shock smaller than the premium
fraction, and when he does walk, Alice is compensated.

Run directly to print the table:  python benchmarks/bench_rational.py
"""

from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.parties.rational import price_shock, rational_bob
from repro.protocols.base_two_party import BaseTwoPartySwap, TwoPartySpec
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

SHOCKS = (0.0, 0.005, 0.01, 0.02, 0.05, 0.10)
PREMIUM_FRACTION = 0.02  # p_b = 2 on a 100-token principal
SHOCK_HEIGHT = 3  # the market moves right after Alice escrows


def _run_base(shock: float):
    builder = BaseTwoPartySwap()
    instance = builder.build()
    spec = instance.meta["spec"]
    price = price_shock(1.0, shock, at_height=2)  # after Alice's escrow (h1)
    transform = lambda actor: rational_bob(actor, spec, price, premium_contract=None)
    result = execute(instance, {"Bob": transform})
    return instance, extract_two_party_outcome(instance, result)


def _run_hedged(shock: float):
    spec = HedgedTwoPartySpec(premium_a=2, premium_b=2)  # p_b = 2% of 100
    builder = HedgedTwoPartySwap(spec)
    instance = builder.build()
    price = price_shock(1.0, shock, at_height=SHOCK_HEIGHT)
    premium_contract = instance.contracts["apricot_escrow"]
    transform = lambda actor: rational_bob(
        actor, spec, price, premium_contract=premium_contract
    )
    result = execute(instance, {"Bob": transform})
    return instance, extract_two_party_outcome(instance, result)


def generate_shock_table():
    rows = []
    for shock in SHOCKS:
        _, base_out = _run_base(shock)
        _, hedged_out = _run_hedged(shock)
        rows.append(
            (
                f"{shock:.1%}",
                "yes" if base_out.swapped else "WALKS",
                "yes" if hedged_out.swapped else "WALKS",
                hedged_out.alice_premium_net,
                hedged_out.bob_premium_net,
            )
        )
    return (
        "price drop", "base completes", f"hedged (p_b={PREMIUM_FRACTION:.0%}) completes",
        "Alice net", "Bob net",
    ), rows


# ----------------------------------------------------------------------
def test_free_option_walks_on_any_drop(benchmark):
    header, rows = benchmark.pedantic(generate_shock_table, rounds=1, iterations=1)
    by = {r[0]: r for r in rows}
    assert by["0.0%"][1] == "yes"  # no shock: both complete
    assert by["0.0%"][2] == "yes"
    # base Bob walks on even the smallest drop — the §1 free option
    for shock in ("0.5%", "1.0%", "2.0%", "5.0%", "10.0%"):
        assert by[shock][1] == "WALKS", shock


def test_premium_deters_small_shocks():
    header, rows = generate_shock_table()
    by = {r[0]: r for r in rows}
    # shocks below the premium fraction: hedged Bob rationally completes
    assert by["0.5%"][2] == "yes"
    assert by["1.0%"][2] == "yes"
    # at or beyond the premium the option is worth exercising...
    assert by["5.0%"][2] == "WALKS"
    assert by["10.0%"][2] == "WALKS"
    # ...but then Alice is compensated and Bob pays
    assert by["10.0%"][3] > 0
    assert by["10.0%"][4] < 0


def test_walking_is_never_free_in_the_hedged_protocol():
    header, rows = generate_shock_table()
    for row in rows:
        if row[2] == "WALKS":
            assert row[4] < 0  # Bob pays for exercising his option


if __name__ == "__main__":
    print(format_table(
        "EXP-G2: rational Bob under a mid-swap price shock", *generate_shock_table()
    ))
