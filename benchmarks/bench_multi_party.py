"""EXP-F3 — Figure 3: hashkey paths and the hedged multi-party swap.

Regenerates (a) the Figure 3b hashkey-path table for leader Alice, (b) the
Equation 1/2 premium tables on that digraph, and (c) the four-phase hedged
run trace summary.

Run directly to print the tables:  python benchmarks/bench_multi_party.py
"""

from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.core.premiums import (
    escrow_premium_amounts,
    leader_redemption_total,
    redemption_premium_table,
)
from repro.graph.digraph import figure3_graph
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table


def generate_hashkey_paths():
    """EXP-F3a: the Figure 3b path table for hashkey k_A."""
    graph = figure3_graph()
    rows = []
    for arc in sorted(graph.arcs):
        for path in sorted(graph.hashkey_paths(arc, "A")):
            rows.append((str(arc), "(" + ",".join(path) + ")", len(path)))
    return ("arc", "path q", "|q|"), rows


def generate_premium_tables():
    """EXP-F3b: Equations 1 and 2 on the Figure 3a digraph (p = 1)."""
    graph = figure3_graph()
    rows = []
    for arc, paths in sorted(redemption_premium_table(graph, "A", 1).items()):
        for path, amount in sorted(paths.items()):
            rows.append(("R_A", str(arc), "(" + ",".join(path) + ")", amount))
    for arc, amount in sorted(escrow_premium_amounts(graph, ("A",), 1).items()):
        rows.append(("E", str(arc), "-", amount))
    rows.append(("R(A)", "(total)", "-", leader_redemption_total(graph, "A", 1)))
    return ("kind", "arc", "path", "amount (p)"), rows


def generate_phase_trace():
    """EXP-F3c: event counts per phase of the compliant hedged run."""
    instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
    schedule = instance.meta["schedule"]
    result = execute(instance)
    boundaries = [
        ("1: escrow premiums", 0, schedule.p2_start),
        ("2: redemption premiums", schedule.p2_start, schedule.p3_start),
        ("3: principal escrow", schedule.p3_start, schedule.p4_start),
        ("4: hashkeys/redemption", schedule.p4_start, schedule.end + 1),
    ]
    rows = []
    for name, lo, hi in boundaries:
        events = [
            e for e in result.events
            if lo < e.height <= hi and e.name != "deployed"
        ]
        kinds = sorted({e.name for e in events})
        rows.append((name, f"{lo + 1}..{hi}", len(events), ", ".join(kinds)))
    outcome = extract_multi_party_outcome(instance, result)
    assert outcome.all_redeemed
    return ("phase", "heights", "events", "event kinds"), rows


# ----------------------------------------------------------------------
def test_hashkey_paths_match_figure3b(benchmark):
    header, rows = benchmark(generate_hashkey_paths)
    table = {(arc, path) for arc, path, _ in rows}
    assert ("('B', 'A')", "(A)") in table
    assert ("('C', 'A')", "(A)") in table
    assert ("('B', 'C')", "(C,A)") in table
    assert ("('A', 'B')", "(B,A)") in table
    assert ("('A', 'B')", "(B,C,A)") in table
    assert len(rows) == 5  # exactly the five paths of Figure 3b


def test_premium_tables_match_equations(benchmark):
    header, rows = benchmark(generate_premium_tables)
    amounts = {(kind, arc, path): amount for kind, arc, path, amount in rows}
    assert amounts[("R_A", "('C', 'A')", "(A)")] == 3
    assert amounts[("E", "('A', 'B')", "-")] == 10
    assert amounts[("R(A)", "(total)", "-")] == 5


def test_phase_trace_completes(benchmark):
    header, rows = benchmark(generate_phase_trace)
    assert len(rows) == 4
    assert all(count > 0 for _, _, count, _ in rows)
    # redemption happens only in phase 4
    assert "principal_redeemed" in rows[3][3]


def test_hedged_multi_party_throughput(benchmark):
    def run():
        instance = HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()
        return execute(instance)

    result = benchmark(run)
    assert not result.reverted()


if __name__ == "__main__":
    print(format_table("EXP-F3a: Figure 3b hashkey paths (leader A)", *generate_hashkey_paths()))
    print()
    print(format_table("EXP-F3b: premium tables (Equations 1-2)", *generate_premium_tables()))
    print()
    print(format_table("EXP-F3c: hedged four-phase trace", *generate_phase_trace()))
