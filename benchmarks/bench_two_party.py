"""EXP-F1 / EXP-T1 — Figure 1 and the §5.1/§5.2 payoff claims.

Regenerates (a) the sore-loser exposure table of the *base* swap (§5.1:
Alice locked 3Δ / Bob locked Δ, deviator unpunished) and (b) the full
deviation/payoff matrix of the *hedged* swap (§5.2: Bob's walk-away costs
him p_b, Alice's costs her p_a net).

Run directly to print the tables:  python benchmarks/bench_two_party.py
"""

from repro.analysis.risk import sore_loser_exposure, worst_uncompensated_lockup
from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

SPEC = HedgedTwoPartySpec(premium_a=2, premium_b=1)


def generate_exposure_table():
    """EXP-T1: measured lockups and compensation, base vs hedged."""
    rows = []
    for row in sore_loser_exposure(premium_a=SPEC.premium_a, premium_b=SPEC.premium_b):
        if row.victim_lockup == 0 and row.victim_compensation == 0:
            continue  # nothing at stake in this halt point
        rows.append(
            (
                row.protocol,
                row.deviator,
                row.halt_round,
                row.victim,
                row.victim_lockup,
                row.victim_compensation,
                row.deviator_penalty,
            )
        )
    header = (
        "protocol", "deviator", "halt@", "victim",
        "lockup(Δ)", "compensation", "penalty",
    )
    return header, rows


def generate_payoff_matrix():
    """EXP-F1: who pays whom for every single-party halt round."""
    rows = []
    for deviator in ("Alice", "Bob"):
        for rnd in range(8):
            instance = HedgedTwoPartySwap(SPEC).build()
            result = execute(instance, {deviator: lambda a, r=rnd: halt_at(a, r)})
            out = extract_two_party_outcome(instance, result)
            rows.append(
                (
                    deviator,
                    rnd,
                    "yes" if out.swapped else "no",
                    out.alice_premium_net,
                    out.bob_premium_net,
                )
            )
    header = ("deviator", "halt@", "swapped", "Alice net", "Bob net")
    return header, rows


# ----------------------------------------------------------------------
# paper-shape assertions + timing
# ----------------------------------------------------------------------
def test_exposure_shape_matches_paper(benchmark):
    header, rows = benchmark(generate_exposure_table)
    base = [r for r in rows if r[0] == "base"]
    hedged = [r for r in rows if r[0] == "hedged"]
    # §5.1: the base protocol leaves some victim locked with zero compensation
    assert any(r[4] > 0 and r[5] == 0 for r in base)
    assert all(r[6] == 0 for r in base)  # and the deviator never pays
    # §5.2: every hedged lockup is compensated and the deviator pays
    assert all(r[5] > 0 for r in hedged if r[4] > 0)
    assert all(r[6] > 0 for r in hedged if r[4] > 0)


def test_payoff_matrix_matches_paper(benchmark):
    header, rows = benchmark(generate_payoff_matrix)
    by = {(r[0], r[1]): r for r in rows}
    # Bob walks after Alice escrows -> pays p_b = 1
    assert by[("Bob", 3)][3] == 1 and by[("Bob", 3)][4] == -1
    # Alice walks after Bob escrows -> net p_a = 2 to Bob
    assert by[("Alice", 4)][3] == -2 and by[("Alice", 4)][4] == 2
    # too-late halts leave the swap complete with premiums refunded
    assert by[("Bob", 7)][2] == "yes" and by[("Bob", 7)][3] == 0


def test_hedged_swap_throughput(benchmark):
    """Raw cost of one full hedged swap simulation."""

    def run():
        instance = HedgedTwoPartySwap(SPEC).build()
        return execute(instance)

    result = benchmark(run)
    assert not result.reverted()


if __name__ == "__main__":
    print(format_table("EXP-T1: sore-loser exposure (base vs hedged)", *generate_exposure_table()))
    print()
    print(format_table("EXP-F1: hedged two-party payoff matrix", *generate_payoff_matrix()))
