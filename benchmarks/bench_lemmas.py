"""EXP-L16 — Lemmas 1-6 verified by exhaustive deviation sweeps.

For the Figure 3a digraph and a 4-ring, every single-party halt-round
deviation (plus action-skip deviations on Figure 3a) is executed and the
lemma bounds are checked on every compliant party's outcome.  The
regenerated table reports, per lemma scenario, the premium flows observed.

Run directly to print the tables:  python benchmarks/bench_lemmas.py
"""

from repro.checker import ModelChecker, full_strategy_space, halt_strategies, properties as props
from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.graph.digraph import figure3_graph, ring_graph
from repro.parties.strategies import halt_at, skip_methods
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table

METHODS = (
    "deposit_escrow_premium",
    "deposit_redemption_premium",
    "escrow_principal",
    "present_hashkey",
)


def _fig3_builder():
    return HedgedMultiPartySwap(graph=figure3_graph(), leaders=("A",)).build()


def generate_lemma_scenarios():
    """One representative run per lemma, with observed premium flows."""
    scenarios = [
        ("Lemma 1 (success)", None, None),
        ("Lemma 5 (P1 fails)", "B", lambda a: skip_methods(a, "deposit_escrow_premium")),
        ("Lemma 4 (P2 fails)", "A", lambda a: skip_methods(a, "deposit_redemption_premium")),
        ("Lemma 3 (P3 fails)", "C", lambda a: skip_methods(a, "escrow_principal")),
        ("Lemma 2 (P4 fails)", "B", lambda a: halt_at(a, 9)),
    ]
    rows = []
    for label, deviator, transform in scenarios:
        instance = _fig3_builder()
        deviations = {deviator: transform} if deviator else {}
        result = execute(instance, deviations)
        out = extract_multi_party_outcome(instance, result)
        compliant = [p for p in out.parties if p != deviator]
        ok = all(out.safety_holds(p) and out.hedged_holds(p) for p in compliant)
        rows.append(
            (
                label,
                deviator or "-",
                str(out.premium_net),
                sum(1 for s in out.arc_states.values() if s == "redeemed"),
                "holds" if ok else "VIOLATED",
            )
        )
    return ("scenario", "deviator", "premium nets", "arcs redeemed", "lemma bound"), rows


def generate_sweep_summary():
    """Exhaustive sweeps per graph: scenario counts and violations."""
    rows = []

    fig3 = _fig3_builder()
    checker = ModelChecker(
        builder=_fig3_builder,
        properties=[props.no_stuck_escrow, props.multi_party_lemmas],
        strategies={
            p: full_strategy_space(fig3.horizon, METHODS, max_skip_subset=2)
            for p in ("A", "B", "C")
        },
        max_adversaries=1,
    )
    report = checker.run()
    rows.append(("figure-3a (halts+skips)", report.scenarios, report.transactions, len(report.violations)))

    ring = HedgedMultiPartySwap(graph=ring_graph(4)).build()
    checker = ModelChecker(
        builder=lambda: HedgedMultiPartySwap(graph=ring_graph(4)).build(),
        properties=[props.no_stuck_escrow, props.multi_party_lemmas],
        strategies={p: halt_strategies(ring.horizon) for p in ring_graph(4).parties},
        max_adversaries=1,
    )
    report = checker.run()
    rows.append(("ring-4 (halts)", report.scenarios, report.transactions, len(report.violations)))
    return ("sweep", "scenarios", "transactions", "violations"), rows


# ----------------------------------------------------------------------
def test_lemma_scenarios_all_hold(benchmark):
    header, rows = benchmark(generate_lemma_scenarios)
    assert all(r[4] == "holds" for r in rows)
    success = rows[0]
    assert success[3] == 4  # Lemma 1: all four arcs redeemed


def test_exhaustive_sweeps_clean(benchmark):
    header, rows = benchmark(generate_sweep_summary)
    assert all(r[3] == 0 for r in rows)
    assert sum(r[1] for r in rows) > 100  # meaningful coverage


if __name__ == "__main__":
    print(format_table("EXP-L16: lemma scenarios on Figure 3a", *generate_lemma_scenarios()))
    print()
    print(format_table("EXP-L16: exhaustive sweeps", *generate_sweep_summary()))
