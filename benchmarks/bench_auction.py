"""EXP-A1 — §9: the hedged auction scenario sweep (Lemmas 7-8).

Regenerates the outcome matrix over every auctioneer strategy (honest,
publish-loser, single-chain publications, publish-both, abandon) crossed
with sulking bidders, asserting that no compliant bidder's bid is ever
stolen and that wrecked auctions pay each bidder p.

Run directly to print the table:  python benchmarks/bench_auction.py
"""

from repro.core.hedged_auction import (
    AuctioneerStrategy,
    AuctionSpec,
    HedgedAuction,
    extract_auction_outcome,
)
from repro.parties.strategies import halt_at
from repro.protocols.instance import execute

try:
    from benchmarks.tables import format_table
except ImportError:  # running the file directly from within benchmarks/
    from tables import format_table


def generate_scenario_matrix():
    rows = []
    for strategy in AuctioneerStrategy:
        for sulker in (None, "Carol"):
            instance = HedgedAuction(strategy=strategy).build()
            deviations = {sulker: lambda a: halt_at(a, 2)} if sulker else {}
            result = execute(instance, deviations)
            out = extract_auction_outcome(instance, result)
            stolen = [b for b in ("Bob", "Carol") if out.bid_stolen(b)]
            rows.append(
                (
                    strategy.value,
                    sulker or "-",
                    out.coin_outcome,
                    out.tickets_to or "(refunded)",
                    out.premium_net["Bob"],
                    out.premium_net["Carol"],
                    ",".join(stolen) or "none",
                )
            )
    return (
        "auctioneer strategy", "sulking bidder", "coin outcome",
        "tickets to", "Bob net", "Carol net", "bids stolen",
    ), rows


def generate_bidder_scaling():
    """Premium endowment scales as n·p with the bidder count (§9.2)."""
    rows = []
    for n in (2, 3, 5, 8):
        bidders = tuple(f"B{i}" for i in range(n))
        spec = AuctionSpec(
            bidders=bidders,
            bids={b: 50 + 10 * i for i, b in enumerate(bidders)},
            premium=2,
        )
        instance = HedgedAuction(spec=spec, strategy=AuctioneerStrategy.ABANDON).build()
        result = execute(instance)
        out = extract_auction_outcome(instance, result)
        rows.append(
            (
                n,
                2 * n,
                -out.premium_net["Alice"],
                min(out.premium_net[b] for b in bidders),
            )
        )
    return ("bidders", "endowment (n·p)", "Alice pays", "min bidder compensation"), rows


# ----------------------------------------------------------------------
def test_no_bid_ever_stolen(benchmark):
    header, rows = benchmark(generate_scenario_matrix)
    for row in rows:
        strategy, sulker = row[0], row[1]
        if sulker == "Carol":
            # only Bob is guaranteed compliant in these runs
            assert "Bob" not in row[6], row
        else:
            assert row[6] == "none", row


def test_wrecked_auctions_pay_bidders():
    header, rows = generate_scenario_matrix()
    for row in rows:
        if row[2] == "refunded" and row[1] == "-":
            assert row[4] == 1 and row[5] == 1, row


def test_honest_single_chain_completes():
    header, rows = generate_scenario_matrix()
    by = {(r[0], r[1]): r for r in rows}
    assert by[("publish-ticket-only", "-")][2] == "completed"
    assert by[("publish-coin-only", "-")][2] == "completed"
    # even with the loser sulking, the winner forwards for himself
    assert by[("publish-ticket-only", "Carol")][2] == "completed"


def test_endowment_scales_with_bidders(benchmark):
    header, rows = benchmark(generate_bidder_scaling)
    for n, endowment, alice_pays, min_comp in rows:
        assert alice_pays == endowment
        assert min_comp == 2


def test_auction_throughput(benchmark):
    def run():
        instance = HedgedAuction().build()
        return execute(instance)

    result = benchmark(run)
    assert not result.reverted()


if __name__ == "__main__":
    print(format_table("EXP-A1: auction scenario matrix", *generate_scenario_matrix()))
    print()
    print(format_table("EXP-A1: bidder scaling", *generate_bidder_scaling()))
