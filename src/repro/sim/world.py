"""The simulated multi-chain world.

A :class:`World` owns the key registry and a set of lock-stepped chains.
Actors never touch a :class:`repro.chain.blockchain.Blockchain` directly;
they receive a :class:`WorldView` of read-only chain views each round.
"""

from __future__ import annotations

from repro.chain.blockchain import Blockchain, ChainView
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import ChainError


class World:
    """All chains of one simulation, advanced in lockstep."""

    def __init__(self, chain_names: tuple[str, ...] | list[str]) -> None:
        self.registry = KeyRegistry()
        self.chains: dict[str, Blockchain] = {
            name: Blockchain(name, self.registry) for name in chain_names
        }
        self.public_of: dict[str, str] = {}

    @property
    def height(self) -> int:
        """Common height of all chains (they advance in lockstep)."""
        heights = {chain.height for chain in self.chains.values()}
        if len(heights) != 1:
            raise ChainError(f"chains out of lockstep: {heights}")
        return heights.pop()

    def chain(self, name: str) -> Blockchain:
        """Look up a chain by name."""
        try:
            return self.chains[name]
        except KeyError:
            raise ChainError(f"no chain named {name!r}") from None

    def register_party(self, name: str, keypair: KeyPair | None = None) -> KeyPair:
        """Create/record a party's key pair and publish its public key."""
        keypair = keypair or KeyPair.generate(owner=name)
        self.registry.register(keypair)
        self.public_of[name] = keypair.public
        return keypair

    def fund(self, chain: str, account: str, symbol: str, amount: int) -> None:
        """Genesis allocation: mint ``amount`` of an asset to ``account``."""
        host = self.chain(chain)
        host.ledger.mint(host.asset(symbol), account, amount)

    def view(self) -> "WorldView":
        """A read-only observation of every chain at the current height."""
        return WorldView(self)


class WorldView:
    """Read-only facade over all chains, handed to actors each round."""

    def __init__(self, world: World) -> None:
        self._world = world
        self.height = world.height

    def chain(self, name: str) -> ChainView:
        return ChainView(self._world.chain(name))

    @property
    def chain_names(self) -> tuple[str, ...]:
        return tuple(self._world.chains)
