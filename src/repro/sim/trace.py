"""Protocol trace rendering.

:func:`render_lanes` draws a run as a Figure-1-style lane diagram — one
column per chain, one row per height — so the examples and benchmarks can
print protocol executions in the same shape the paper draws them.
:func:`render_timeline` gives a flat one-line-per-event view with relative
timing, useful for diffing two runs (e.g. compliant vs attacked).
"""

from __future__ import annotations

from collections import defaultdict

from repro.chain.events import Event
from repro.sim.runner import RunResult

#: events that are pure bookkeeping noise in a diagram
_HIDDEN = frozenset({"deployed"})


def _describe(event: Event) -> str:
    """A compact one-phrase description of an event."""
    data = event.data
    name = event.name
    if name == "premium_deposited":
        return f"premium {data.get('amount')} in ({data.get('payer')})"
    if name == "premium_refunded":
        return f"premium {data.get('amount')} back to {data.get('to')}"
    if name == "premium_awarded":
        return f"premium {data.get('amount')} AWARDED to {data.get('to')}"
    if name == "principal_escrowed":
        return f"escrow {data.get('amount')} ({data.get('owner', data.get('arc'))})"
    if name == "redeemed" or name == "principal_redeemed":
        return f"redeem -> {data.get('to')}"
    if name == "principal_refunded" or name == "asset_refunded":
        return f"refund -> {data.get('to')}"
    if name == "hashkey_accepted":
        path = data.get("path")
        joined = ",".join(path) if isinstance(path, tuple) else path
        return f"hashkey ({joined})"
    pairs = ", ".join(f"{k}={v}" for k, v in sorted(data.items()))
    return f"{name}({pairs})" if pairs else name


def render_lanes(result: RunResult, width: int = 40) -> str:
    """Render the run as one lane per chain, one row per height."""
    chains = sorted(result.world.chains)
    by_cell: dict[tuple[int, str], list[str]] = defaultdict(list)
    max_height = 0
    for event in result.events:
        if event.name in _HIDDEN:
            continue
        by_cell[(event.height, event.chain)].append(_describe(event))
        max_height = max(max_height, event.height)

    head = "height".rjust(6) + " | " + " | ".join(c.ljust(width) for c in chains)
    rule = "-" * 6 + "-+-" + "-+-".join("-" * width for _ in chains)
    lines = [head, rule]
    for height in range(1, max_height + 1):
        rows = max(
            (len(by_cell.get((height, chain), ())) for chain in chains), default=0
        )
        if rows == 0:
            continue
        for i in range(rows):
            cells = []
            for chain in chains:
                entries = by_cell.get((height, chain), [])
                cells.append((entries[i] if i < len(entries) else "").ljust(width))
            label = str(height) if i == 0 else ""
            lines.append(label.rjust(6) + " | " + " | ".join(cells))
    return "\n".join(lines)


def render_timeline(result: RunResult) -> str:
    """One line per event with height deltas, for easy run diffing."""
    lines = []
    last_height = 0
    for event in result.events:
        if event.name in _HIDDEN:
            continue
        gap = f"+{event.height - last_height}Δ" if event.height != last_height else "  "
        last_height = event.height
        lines.append(
            f"h={event.height:>3} {gap:>4}  {event.chain:<14} {_describe(event)}"
        )
    return "\n".join(lines)
