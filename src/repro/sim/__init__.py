"""Synchronous simulation engine.

One simulation *round* is one Δ of the paper's synchronous model.  At the
start of round ``r`` every actor observes all chains at height ``r`` (so a
change made in round ``r-1`` is visible — propagation within Δ), submits
transactions, and every chain then advances to height ``r+1``, executing
the submitted transactions and running timeout settlement.
"""

from repro.sim.world import World, WorldView
from repro.sim.runner import SyncRunner, RunResult
from repro.sim.payoff import Valuation, PayoffSheet
from repro.sim.trace import render_lanes, render_timeline

__all__ = [
    "World",
    "WorldView",
    "SyncRunner",
    "RunResult",
    "Valuation",
    "PayoffSheet",
    "render_lanes",
    "render_timeline",
]
