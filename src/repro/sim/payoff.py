"""Payoff accounting.

A :class:`Valuation` assigns a per-unit value to each asset so outcomes on
different chains can be compared (the paper: "we treat all premiums as if
they were denominated in the same currency").  Native (premium) assets
default to value 1.  A :class:`PayoffSheet` diffs ledger snapshots taken
before and after a protocol run and reports, per party, the premium flow
(native assets) and the principal flow (everything else) separately, which
is how the paper's lemmas are phrased.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.assets import Asset
from repro.sim.world import World


@dataclass
class Valuation:
    """Per-unit asset values; native assets default to 1."""

    values: dict[Asset, float] = field(default_factory=dict)

    def value_of(self, asset: Asset) -> float:
        if asset in self.values:
            return self.values[asset]
        return 1.0 if asset.is_native else 0.0

    def set(self, asset: Asset, value: float) -> "Valuation":
        self.values[asset] = value
        return self


class PayoffSheet:
    """Balance diffs per party between two world snapshots."""

    def __init__(self, world: World, parties: list[str] | tuple[str, ...]) -> None:
        self._world = world
        self.parties = tuple(parties)
        self._start = self._snapshot()
        self._end: dict[tuple[Asset, str], int] | None = None

    def _snapshot(self) -> dict[tuple[Asset, str], int]:
        snap: dict[tuple[Asset, str], int] = {}
        for chain in self._world.chains.values():
            snap.update(chain.ledger.snapshot())
        return snap

    def finish(self) -> None:
        """Record the post-run snapshot."""
        self._end = self._snapshot()

    # ------------------------------------------------------------------
    # queries (valid after finish())
    # ------------------------------------------------------------------
    def delta(self, party: str) -> dict[Asset, int]:
        """Per-asset balance change for ``party``."""
        assert self._end is not None, "call finish() first"
        assets = {a for (a, acc) in set(self._start) | set(self._end) if acc == party}
        out: dict[Asset, int] = {}
        for asset in assets:
            change = self._end.get((asset, party), 0) - self._start.get((asset, party), 0)
            if change:
                out[asset] = change
        return out

    def premium_net(self, party: str) -> int:
        """Net flow of native (premium) currency across all chains."""
        return sum(v for a, v in self.delta(party).items() if a.is_native)

    def principal_delta(self, party: str) -> dict[Asset, int]:
        """Balance changes in non-native assets only."""
        return {a: v for a, v in self.delta(party).items() if not a.is_native}

    def total_value(self, party: str, valuation: Valuation) -> float:
        """Value-weighted total payoff for ``party``."""
        return sum(valuation.value_of(a) * v for a, v in self.delta(party).items())

    def realized_utility(self, party: str, price_of, height: int) -> float:
        """The party's realized utility under an exogenous price path.

        ``price_of(asset, height)`` is a per-unit value function (e.g.
        :class:`repro.parties.rational.TokenPrices`); the party's final
        balance deltas are valued at the path's prices at ``height`` —
        typically the run horizon, so a mid-run shock is priced in.  This
        is the quantity the ablation engine compares between a rational
        deviator and its compliant twin to decide whether deviating paid.
        """
        return sum(
            price_of(asset, height) * change
            for asset, change in self.delta(party).items()
        )

    def table(self) -> dict[str, dict[str, object]]:
        """A printable summary: premium net + principal deltas per party."""
        return {
            p: {
                "premium_net": self.premium_net(p),
                "principals": {str(a): v for a, v in self.principal_delta(p).items()},
            }
            for p in self.parties
        }
