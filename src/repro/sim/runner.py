"""The synchronous round runner.

``SyncRunner.run(rounds)`` drives the world: each round every actor (in a
fixed, deterministic order) observes the world at the current height and
submits transactions; then all chains advance one height, executing the
transactions and running settlement ticks.  The result bundles executed
transactions, payoffs, and the merged event trace.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.chain.block import Transaction
from repro.chain.events import Event
from repro.errors import ChainError
from repro.parties.base import Actor
from repro.sim.payoff import PayoffSheet
from repro.sim.world import World


@dataclass
class RunResult:
    """Everything observable about a finished run."""

    world: World
    rounds: int
    transactions: list[Transaction] = field(default_factory=list)
    payoffs: PayoffSheet | None = None

    @property
    def events(self) -> list[Event]:
        """All events from all chains, ordered by height then chain name."""
        merged: list[Event] = []
        for name in sorted(self.world.chains):
            merged.extend(self.world.chains[name].events)
        merged.sort(key=lambda e: (e.height, e.chain))
        return merged

    def events_named(self, name: str) -> list[Event]:
        return [e for e in self.events if e.name == name]

    def reverted(self) -> list[Transaction]:
        """Transactions that reverted (useful for compliance assertions)."""
        return [t for t in self.transactions if t.receipt.status == "reverted"]

    def format_trace(self) -> str:
        """A printable protocol trace (one line per event)."""
        return "\n".join(str(e) for e in self.events)


class SyncRunner:
    """Round-based driver for a set of actors over a world."""

    def __init__(self, world: World, actors: list[Actor]) -> None:
        names = [a.name for a in actors]
        if len(set(names)) != len(names):
            raise ChainError(f"duplicate actor names: {names}")
        self.world = world
        # Fixed order for determinism; any order satisfies the model.
        self.actors = sorted(actors, key=lambda a: a.name)

    def run(self, rounds: int, parties: list[str] | None = None) -> RunResult:
        """Run ``rounds`` rounds and return the result.

        ``parties`` selects whose payoffs to track (defaults to actor names).
        """
        tracked = parties if parties is not None else [a.name for a in self.actors]
        sheet = PayoffSheet(self.world, tracked)
        result = RunResult(world=self.world, rounds=rounds, payoffs=sheet)
        for rnd in range(rounds):
            view = self.world.view()
            by_chain: dict[str, list[Transaction]] = defaultdict(list)
            for actor in self.actors:
                for tx in actor.on_round(rnd, view):
                    by_chain[tx.chain].append(tx)
            for name in sorted(self.world.chains):
                executed = self.world.chains[name].advance(by_chain.get(name, ()))
                result.transactions.extend(executed)
        sheet.finish()
        return result
