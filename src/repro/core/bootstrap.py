"""Premium bootstrapping — §6, Figure 2.

When the principals are large, the premium a hedged swap needs
(``(A + B)/P`` on one side) can exceed what a counterparty will expose to
lockup risk.  Bootstrapping runs ``r`` rounds of premium exchanges in which
smaller premiums protect the distribution of larger premiums:

- the level amounts follow ``A_i = ⌈A_{i-1}/P⌉`` and
  ``B_i = ⌈(A_{i-1} + B_{i-1})/P⌉`` with ``A_0 = A, B_0 = B`` — in closed
  (real-valued) form ``B_i = (iA + B)/P^i``, the paper's
  "initial premium is (rA + B)/P^r and A/P^r",
- round ``j`` (for levels ℓ = r-1 … 1) exchanges the level-ℓ deposits
  protected by level-(ℓ+1) premiums, leadership alternating between Alice
  and Bob (Figure 2); the final stage is the real hedged swap protected by
  the level-1 premiums,
- only the very first deposits (level ``r``) are unprotected — the
  residual, irreducible sore-loser exposure.  With 1% premiums (P = 100)
  and a $4 initial risk, 3 rounds suffice to hedge a $1,000,000 swap
  (``(3·10^6 + 10^6)/100^3 = 4``): see :func:`rounds_needed` and EXP-T2.

Implementation note (documented substitution): the paper threads each
round's redeemed deposits directly into the next round's escrow contracts;
we model each round as a *deposit exchange* (a hedged two-party swap whose
"principals" are native deposits released back to their owners on success
— ``HedgedEscrow(redeem_to_owner=True)``), run back-to-back on the same
two chains.  A compliant party enters round ``j+1`` only if round ``j``
completed, so the loss and lockup bounds per round are identical to the
paper's: a renege at any round costs the deviator that round's premium and
locks the victim's deposits for at most one swap duration plus Δ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.chain.block import Transaction
from repro.contracts.hedged_escrow import HedgedEscrow
from repro.crypto.hashing import Secret
from repro.errors import ProtocolError
from repro.parties.base import Actor
from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult
from repro.sim.world import World, WorldView

#: heights consumed by one stage (six deadlines + settlement tick).
STAGE_SPAN = 8


# ----------------------------------------------------------------------
# ladder arithmetic
# ----------------------------------------------------------------------
def premium_ladder(amount_a: int, amount_b: int, rate: int, rounds: int) -> list[tuple[int, int]]:
    """Level amounts ``[(A_0, B_0), (A_1, B_1), ..., (A_rounds, B_rounds)]``.

    ``rate`` is ``P`` (premium ratio: a premium is 1/P of what it
    protects).  Integer amounts round up so protection never falls short.
    """
    if rate < 2:
        raise ProtocolError("premium rate P must be at least 2")
    levels = [(amount_a, amount_b)]
    for _ in range(rounds):
        a, b = levels[-1]
        levels.append((math.ceil(a / rate), math.ceil((a + b) / rate)))
    return levels


def initial_risk(amount_a: int, amount_b: int, rate: int, rounds: int) -> int:
    """The unprotected first deposit ``B_r ≈ (rA + B)/P^r``.

    The paper counts the plain §5.2 swap's own premium phase as round 1, so
    ``rounds = 1`` gives the unbootstrapped premium ``(A + B)/P`` and each
    further round divides the exposure by another factor of ``P``.
    """
    if rounds < 1:
        raise ProtocolError("rounds starts at 1 (the plain hedged swap)")
    return premium_ladder(amount_a, amount_b, rate, rounds)[-1][1]


def rounds_needed(amount_a: int, amount_b: int, rate: int, acceptable_risk: int) -> int:
    """Smallest ``r ≥ 1`` whose initial deposit is within the acceptable
    risk — the paper's ``log_P((A + B)/p)`` estimate (§6)."""
    r = 1
    while initial_risk(amount_a, amount_b, rate, r) > acceptable_risk:
        r += 1
        if r > 64:
            raise ProtocolError("no feasible round count (risk too small?)")
    return r


def rounds_estimate(amount_a: int, amount_b: int, rate: int, acceptable_risk: int) -> float:
    """The paper's closed-form estimate ``log_P((A + B)/p)``."""
    return math.log((amount_a + amount_b) / acceptable_risk, rate)


# ----------------------------------------------------------------------
# staged protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BootstrapSpec:
    """Parameters for a bootstrapped swap."""

    alice: str = "Alice"
    bob: str = "Bob"
    chain_a: str = "apricot"
    chain_b: str = "banana"
    token_a: str = "apricot-token"
    token_b: str = "banana-token"
    amount_a: int = 1_000_000
    amount_b: int = 1_000_000
    rate: int = 100  # P: premiums are 1% of what they protect
    rounds: int = 3  # r bootstrap rounds before the swap


@dataclass(frozen=True)
class StagePlan:
    """One stage: a deposit exchange (or the final swap) with premiums."""

    index: int
    level: int  # ladder level of the principals this stage locks
    is_final_swap: bool
    leader: str  # plays the "Alice" role (larger premium, redeems first)
    follower: str
    principal_a: int  # locked on chain_a by the follower-side owner
    principal_b: int  # locked on chain_b by the leader-side owner
    premium_combined: int  # leader deposit: the (p_a + p_b) analogue
    premium_single: int  # follower deposit: the p_b analogue
    offset: int  # height offset of the stage


def plan_stages(spec: BootstrapSpec) -> list[StagePlan]:
    """Lay out the ``r`` bootstrap stages plus the final swap stage."""
    ladder = premium_ladder(spec.amount_a, spec.amount_b, spec.rate, spec.rounds)
    stages: list[StagePlan] = []
    total = spec.rounds  # stages before the final swap: levels r-1 .. 1
    for index, level in enumerate(range(spec.rounds - 1, 0, -1)):
        a_lvl, b_lvl = ladder[level]
        a_prem, b_prem = ladder[level + 1]
        # Leadership alternates backwards from Alice on the final swap.
        stage_from_end = total - index  # final swap = 0
        leader = spec.alice if stage_from_end % 2 == 0 else spec.bob
        follower = spec.bob if leader == spec.alice else spec.alice
        stages.append(
            StagePlan(
                index=index,
                level=level,
                is_final_swap=False,
                leader=leader,
                follower=follower,
                principal_a=a_lvl,
                principal_b=b_lvl,
                premium_combined=b_prem,
                premium_single=a_prem,
                offset=index * STAGE_SPAN,
            )
        )
    a1, b1 = ladder[1] if spec.rounds >= 1 else (
        math.ceil(spec.amount_a / spec.rate),
        math.ceil((spec.amount_a + spec.amount_b) / spec.rate),
    )
    stages.append(
        StagePlan(
            index=len(stages),
            level=0,
            is_final_swap=True,
            leader=spec.alice,
            follower=spec.bob,
            principal_a=spec.amount_a,
            principal_b=spec.amount_b,
            premium_combined=b1,
            premium_single=a1,
            offset=len(stages) * STAGE_SPAN,
        )
    )
    return stages


class BootstrapParty(Actor):
    """Walks the stage ladder, aborting if the previous stage failed."""

    def __init__(self, name, keypair, spec, stages, secrets, addresses):
        super().__init__(name, keypair)
        self.spec = spec
        self.stages = stages
        self.secrets = secrets  # stage index -> Secret (leader holds it)
        self.addresses = addresses  # stage index -> (apricot addr, banana addr)
        self.aborted = False

    def _stage_for_round(self, rnd: int) -> StagePlan | None:
        idx = rnd // STAGE_SPAN
        return self.stages[idx] if idx < len(self.stages) else None

    def _previous_completed(self, view: WorldView, stage: StagePlan) -> bool:
        if stage.index == 0:
            return True
        prev_a, prev_b = self.addresses[stage.index - 1]
        apricot = view.chain(self.spec.chain_a).contract(prev_a)
        banana = view.chain(self.spec.chain_b).contract(prev_b)
        return (
            apricot.principal_state == "redeemed"
            and banana.principal_state == "redeemed"
        )

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        if self.aborted:
            return []
        stage = self._stage_for_round(rnd)
        if stage is None:
            return []
        local = rnd - stage.offset
        if local == 0 and not self._previous_completed(view, stage):
            self.aborted = True
            return []
        spec = self.spec
        addr_a, addr_b = self.addresses[stage.index]
        apricot = view.chain(spec.chain_a).contract(addr_a)
        banana = view.chain(spec.chain_b).contract(addr_b)
        lands = view.height + 1
        txs: list[Transaction] = []

        if self.name == stage.leader:
            # The "Alice" role of the hedged swap template.
            if banana.premium_state == "absent" and lands <= banana.premium_deadline:
                txs.append(self.tx(spec.chain_b, addr_b, "deposit_premium"))
            if (
                apricot.premium_state == "held"
                and apricot.principal_state == "absent"
                and apricot.principal_owner == self.name
                and lands <= apricot.principal_deadline
            ):
                txs.append(self.tx(spec.chain_a, addr_a, "escrow_principal"))
            if (
                banana.principal_state == "escrowed"
                and lands <= banana.redemption_timelock
            ):
                secret = self.secrets[stage.index]
                txs.append(
                    self.tx(spec.chain_b, addr_b, "redeem", preimage=secret.preimage)
                )
        else:
            # The "Bob" role.
            if (
                banana.premium_state == "held"
                and apricot.premium_state == "absent"
                and lands <= apricot.premium_deadline
            ):
                txs.append(self.tx(spec.chain_a, addr_a, "deposit_premium"))
            if (
                apricot.principal_state == "escrowed"
                and banana.principal_state == "absent"
                and banana.principal_owner == self.name
                and lands <= banana.principal_deadline
            ):
                txs.append(self.tx(spec.chain_b, addr_b, "escrow_principal"))
            if (
                banana.revealed_preimage is not None
                and apricot.principal_state == "escrowed"
                and lands <= apricot.redemption_timelock
            ):
                txs.append(
                    self.tx(
                        spec.chain_a, addr_a, "redeem",
                        preimage=banana.revealed_preimage,
                    )
                )
        return txs


@dataclass
class BootstrapOutcome:
    """Result of a bootstrapped swap run."""

    stages_completed: int
    total_stages: int
    swapped: bool
    premium_net: dict[str, int]
    max_lockup: int

    @property
    def failed_stage(self) -> int | None:
        if self.stages_completed == self.total_stages:
            return None
        return self.stages_completed


def extract_bootstrap_outcome(instance: ProtocolInstance, result: RunResult) -> BootstrapOutcome:
    spec: BootstrapSpec = instance.meta["spec"]
    stages: list[StagePlan] = instance.meta["stages"]
    payoffs = result.payoffs
    assert payoffs is not None
    completed = 0
    max_lockup = 0
    for stage in stages:
        apricot = instance.contract(f"stage{stage.index}-apricot")
        banana = instance.contract(f"stage{stage.index}-banana")
        for contract in (apricot, banana):
            if contract.principal_lockup is not None:
                max_lockup = max(max_lockup, contract.principal_lockup)
            if contract.premium_lockup is not None:
                max_lockup = max(max_lockup, contract.premium_lockup)
        if (
            apricot.principal_state == "redeemed"
            and banana.principal_state == "redeemed"
        ):
            completed += 1
    token_a = instance.world.chain(spec.chain_a).asset(spec.token_a)
    token_b = instance.world.chain(spec.chain_b).asset(spec.token_b)
    alice_delta = payoffs.delta(spec.alice)
    swapped = (
        alice_delta.get(token_b, 0) >= spec.amount_b
        and payoffs.delta(spec.bob).get(token_a, 0) >= spec.amount_a
    )
    return BootstrapOutcome(
        stages_completed=completed,
        total_stages=len(stages),
        swapped=swapped,
        premium_net={
            spec.alice: payoffs.premium_net(spec.alice),
            spec.bob: payoffs.premium_net(spec.bob),
        },
        max_lockup=max_lockup,
    )


class BootstrappedSwap:
    """Builder: ``r`` bootstrap stages then the hedged swap (§6, Fig. 2)."""

    def __init__(self, spec: BootstrapSpec | None = None) -> None:
        self.spec = spec or BootstrapSpec()
        if self.spec.rounds < 1:
            raise ProtocolError("bootstrapping needs at least one round")
        self.stages = plan_stages(self.spec)
        self.secrets = {
            stage.index: Secret.generate(f"stage-{stage.index}") for stage in self.stages
        }

    def build(self) -> ProtocolInstance:
        spec, stages = self.spec, self.stages
        world = World([spec.chain_a, spec.chain_b])
        keys = {
            spec.alice: world.register_party(spec.alice),
            spec.bob: world.register_party(spec.bob),
        }
        world.fund(spec.chain_a, spec.alice, spec.token_a, spec.amount_a)
        world.fund(spec.chain_b, spec.bob, spec.token_b, spec.amount_b)
        # Native funding: every deposit a party could ever make, summed
        # (refunds recycle between stages; the sum is a safe upper bound).
        need_a: dict[str, int] = {spec.alice: 0, spec.bob: 0}
        need_b: dict[str, int] = {spec.alice: 0, spec.bob: 0}
        for stage in stages:
            need_b[stage.leader] += stage.premium_combined
            need_a[stage.follower] += stage.premium_single
            if not stage.is_final_swap:
                need_a[stage.leader] += stage.principal_a
                need_b[stage.follower] += stage.principal_b
        for name in (spec.alice, spec.bob):
            world.fund(spec.chain_a, name, "native", need_a[name])
            world.fund(spec.chain_b, name, "native", need_b[name])

        apricot = world.chain(spec.chain_a)
        banana = world.chain(spec.chain_b)
        addresses: dict[int, tuple[str, str]] = {}
        contracts: dict[str, tuple[str, str]] = {}
        for stage in stages:
            o = stage.offset
            hashlock = self.secrets[stage.index].hashlock
            exchange = not stage.is_final_swap
            asset_a = (
                apricot.native if exchange else apricot.asset(spec.token_a)
            )
            asset_b = banana.native if exchange else banana.asset(spec.token_b)
            addr_a = apricot.deploy(
                HedgedEscrow(
                    principal_asset=asset_a,
                    principal_amount=stage.principal_a,
                    principal_owner=stage.leader,
                    redeemer=stage.follower,
                    hashlock=hashlock,
                    premium_amount=stage.premium_single,
                    premium_deadline=o + 2,
                    principal_deadline=o + 3,
                    redemption_timelock=o + 6,
                    redeem_to_owner=exchange,
                )
            )
            addr_b = banana.deploy(
                HedgedEscrow(
                    principal_asset=asset_b,
                    principal_amount=stage.principal_b,
                    principal_owner=stage.follower,
                    redeemer=stage.leader,
                    hashlock=hashlock,
                    premium_amount=stage.premium_combined,
                    premium_deadline=o + 1,
                    principal_deadline=o + 4,
                    redemption_timelock=o + 5,
                    redeem_to_owner=exchange,
                )
            )
            addresses[stage.index] = (addr_a, addr_b)
            contracts[f"stage{stage.index}-apricot"] = (spec.chain_a, addr_a)
            contracts[f"stage{stage.index}-banana"] = (spec.chain_b, addr_b)

        actors = {
            name: BootstrapParty(name, keys[name], spec, stages, self.secrets, addresses)
            for name in (spec.alice, spec.bob)
        }
        # Leaders hold the secrets; strip them from the follower's copy so
        # a deviant follower cannot redeem early (parties are autonomous).
        for name, actor in actors.items():
            actor.secrets = {
                idx: secret
                for idx, secret in self.secrets.items()
                if stages[idx].leader == name
            }

        horizon = stages[-1].offset + STAGE_SPAN + 1
        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=horizon,
            contracts=contracts,
            meta={"spec": spec, "stages": stages},
        )
