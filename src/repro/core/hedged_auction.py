"""The hedged auction protocol — §9.

Alice auctions tickets to ``n`` bidders.  Bidders pay no premiums (they
cannot lock anyone's assets); Alice endows the coin contract with ``n·p``,
refunded on an honest completion and paid out ``p`` per bidder when the
auction is wrecked (she abandons it or is caught publishing the wrong
hashkey).  Bidders protect themselves in the challenge phase by copying
hashkeys across contracts (Lemma 7), which guarantees no compliant bidder's
bid can be stolen (Lemma 8).

`AuctioneerStrategy` enumerates the deviant declarations used by the tests,
benchmarks, and model checker: publishing the loser's key, publishing on a
single chain only, publishing both keys, or abandoning the declaration.

The module also ships a commit–reveal variant
(:class:`CommitRevealAuction`), flagged by the paper (footnote 8) as the
realistic sealed-bid extension: bids are hash commitments during the
bidding phase and reveal before declaration.  It reuses the same
declaration/challenge/commit machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.chain.block import Transaction
from repro.contracts.auction import (
    AuctionDeadlines,
    CoinAuctionContract,
    TicketAuctionContract,
)
from repro.crypto.hashing import Secret, sha256_hex
from repro.crypto.hashkeys import HashKey
from repro.parties.base import Actor
from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult
from repro.sim.world import World, WorldView


class AuctioneerStrategy(enum.Enum):
    """How Alice behaves in the declaration phase."""

    HONEST = "honest"
    PUBLISH_LOSER = "publish-loser"
    PUBLISH_TICKET_ONLY = "publish-ticket-only"
    PUBLISH_COIN_ONLY = "publish-coin-only"
    PUBLISH_BOTH_KEYS = "publish-both-keys"
    ABANDON = "abandon"


@dataclass(frozen=True)
class AuctionSpec:
    """Parameters of one auction (defaults: the paper's 2-bidder story)."""

    auctioneer: str = "Alice"
    bidders: tuple[str, ...] = ("Bob", "Carol")
    bids: dict[str, int] = field(default_factory=lambda: {"Bob": 120, "Carol": 90})
    ticket_chain: str = "ticket-chain"
    coin_chain: str = "coin-chain"
    ticket_token: str = "ticket"
    coin_token: str = "coin"
    tickets: int = 1
    premium: int = 1  # 0 = base (unhedged) §9.1 protocol


class AuctioneerActor(Actor):
    """Alice: setup, then declare per strategy, never forwards keys."""

    #: the round in which bids become visible and Alice declares
    declaration_round = 2

    def __init__(self, name, keypair, spec, secrets, addrs, strategy):
        super().__init__(name, keypair)
        self.spec = spec
        self.secrets = secrets  # bidder -> Secret designating that bidder
        self.ticket_addr, self.coin_addr = addrs
        self.strategy = strategy
        self.declared = False

    def _key_for(self, bidder: str) -> HashKey:
        return HashKey.originate(self.secrets[bidder], self.keypair, self.name)

    def _declaration_plan(self, coin) -> list[tuple[str, tuple[str, str]]]:
        """(bidder-to-designate, target contract) pairs per the strategy."""
        spec = self.spec
        winner = coin.high_bidder
        if winner is None or self.strategy is AuctioneerStrategy.ABANDON:
            return []
        loser = next((b for b in spec.bidders if b != winner), winner)
        both = [
            (spec.ticket_chain, self.ticket_addr),
            (spec.coin_chain, self.coin_addr),
        ]
        if self.strategy is AuctioneerStrategy.HONEST:
            return [(winner, t) for t in both]
        if self.strategy is AuctioneerStrategy.PUBLISH_LOSER:
            return [(loser, t) for t in both]
        if self.strategy is AuctioneerStrategy.PUBLISH_TICKET_ONLY:
            return [(winner, both[0])]
        if self.strategy is AuctioneerStrategy.PUBLISH_COIN_ONLY:
            return [(winner, both[1])]
        if self.strategy is AuctioneerStrategy.PUBLISH_BOTH_KEYS:
            return [(b, t) for b in (winner, loser) for t in both]
        return []

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        coin = view.chain(spec.coin_chain).contract(self.coin_addr)
        ticket = view.chain(spec.ticket_chain).contract(self.ticket_addr)

        if rnd == 0:
            if not ticket.escrowed:
                txs.append(self.tx(spec.ticket_chain, self.ticket_addr, "escrow_tickets"))
            if spec.premium and coin.endowment == 0:
                txs.append(self.tx(spec.coin_chain, self.coin_addr, "endow_premium"))

        if rnd == self.declaration_round and not self.declared:
            self.declared = True
            for bidder, (chain_name, address) in self._declaration_plan(coin):
                txs.append(
                    self.tx(chain_name, address, "present_hashkey", hashkey=self._key_for(bidder))
                )
        return txs


class BidderActor(Actor):
    """A bidder: bid in round 1, then run the challenge phase (Lemma 7)."""

    def __init__(self, name, keypair, spec, addrs):
        super().__init__(name, keypair)
        self.spec = spec
        self.ticket_addr, self.coin_addr = addrs
        self.forwarded: set[tuple[str, str]] = set()

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        coin = view.chain(spec.coin_chain).contract(self.coin_addr)
        ticket = view.chain(spec.ticket_chain).contract(self.ticket_addr)

        # Bid only into a properly set-up auction: the tickets must be in
        # escrow and (in the hedged form) the premium endowment present —
        # both are visible on-chain before the bidding round.
        setup_ok = ticket.escrowed and (
            spec.premium == 0 or coin.endowment >= spec.premium * len(spec.bidders)
        )
        if rnd == 1 and setup_ok and self.name not in coin.bids:
            amount = spec.bids.get(self.name, 0)
            if amount > 0:
                txs.append(self.tx(spec.coin_chain, self.coin_addr, "bid", amount=amount))

        # Challenge phase: copy keys across contracts.
        if rnd >= 3:
            sides = [
                (ticket, coin, spec.coin_chain, self.coin_addr),
                (coin, ticket, spec.ticket_chain, self.ticket_addr),
            ]
            for source, target, target_chain, target_addr in sides:
                for designated, hashkey in sorted(source.accepted.items()):
                    if designated in target.accepted:
                        continue
                    if (designated, target_chain) in self.forwarded:
                        continue
                    if self.name in hashkey.path:
                        continue
                    self.forwarded.add((designated, target_chain))
                    txs.append(
                        self.tx(
                            target_chain,
                            target_addr,
                            "present_hashkey",
                            hashkey=hashkey.extend(self.keypair, self.name),
                        )
                    )
        return txs


@dataclass
class AuctionOutcome:
    """Condensed result of one auction run."""

    winner_expected: str | None
    coin_outcome: str
    ticket_outcome: str
    tickets_to: str
    premium_net: dict[str, int]
    coins_delta: dict[str, int]
    bids: dict[str, int]

    def bid_stolen(self, bidder: str) -> bool:
        """True iff the bidder paid coins without receiving the tickets."""
        paid = self.coins_delta.get(bidder, 0) < 0
        return paid and self.tickets_to != bidder


def extract_auction_outcome(instance: ProtocolInstance, result: RunResult) -> AuctionOutcome:
    spec: AuctionSpec = instance.meta["spec"]
    payoffs = result.payoffs
    assert payoffs is not None
    coin = instance.contract("coin")
    ticket = instance.contract("ticket")
    coin_asset = instance.world.chain(spec.coin_chain).asset(spec.coin_token)
    parties = (spec.auctioneer,) + spec.bidders
    return AuctionOutcome(
        winner_expected=coin.high_bidder,
        coin_outcome=coin.outcome,
        ticket_outcome=ticket.outcome,
        tickets_to=ticket.awarded_to,
        premium_net={p: payoffs.premium_net(p) for p in parties},
        coins_delta={p: payoffs.delta(p).get(coin_asset, 0) for p in parties},
        bids=dict(coin.bids),
    )


class HedgedAuction:
    """Builder for the §9 auction (``premium=0`` gives the base §9.1 form)."""

    def __init__(
        self,
        spec: AuctionSpec | None = None,
        strategy: AuctioneerStrategy = AuctioneerStrategy.HONEST,
        secrets: dict[str, Secret] | None = None,
    ) -> None:
        self.spec = spec or AuctionSpec()
        self.strategy = strategy
        self.secrets = secrets or {
            bidder: Secret.generate(f"designates-{bidder}") for bidder in self.spec.bidders
        }

    def build(self) -> ProtocolInstance:
        spec = self.spec
        world = World([spec.ticket_chain, spec.coin_chain])
        parties = (spec.auctioneer,) + spec.bidders
        keys = {name: world.register_party(name) for name in parties}

        world.fund(spec.ticket_chain, spec.auctioneer, spec.ticket_token, spec.tickets)
        world.fund(
            spec.coin_chain, spec.auctioneer, "native", spec.premium * len(spec.bidders)
        )
        for bidder in spec.bidders:
            world.fund(spec.coin_chain, bidder, spec.coin_token, spec.bids.get(bidder, 0))

        hashlocks = {bidder: self.secrets[bidder].hashlock for bidder in spec.bidders}
        deadlines = AuctionDeadlines()
        ticket_host = world.chain(spec.ticket_chain)
        coin_host = world.chain(spec.coin_chain)

        ticket_addr = ticket_host.deploy(
            TicketAuctionContract(
                auctioneer=spec.auctioneer,
                bidders=spec.bidders,
                hashlocks=hashlocks,
                public_of=world.public_of,
                deadlines=deadlines,
                ticket_asset=ticket_host.asset(spec.ticket_token),
                tickets=spec.tickets,
            )
        )
        coin_addr = coin_host.deploy(
            CoinAuctionContract(
                auctioneer=spec.auctioneer,
                bidders=spec.bidders,
                hashlocks=hashlocks,
                public_of=world.public_of,
                deadlines=deadlines,
                coin_asset=coin_host.asset(spec.coin_token),
                premium=spec.premium,
            )
        )

        addrs = (ticket_addr, coin_addr)
        actors: dict[str, Actor] = {
            spec.auctioneer: AuctioneerActor(
                spec.auctioneer, keys[spec.auctioneer], spec, self.secrets, addrs, self.strategy
            )
        }
        for bidder in spec.bidders:
            actors[bidder] = BidderActor(bidder, keys[bidder], spec, addrs)

        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=deadlines.horizon,
            contracts={
                "ticket": (spec.ticket_chain, ticket_addr),
                "coin": (spec.coin_chain, coin_addr),
            },
            meta={"spec": spec, "deadlines": deadlines, "strategy": self.strategy},
        )


# ----------------------------------------------------------------------
# commit-reveal extension (paper footnote 8 — out of the paper's scope,
# implemented here as the documented "future work" variant)
# ----------------------------------------------------------------------
class CommitRevealCoinContract(CoinAuctionContract):
    """Sealed bids: commit a salted hash, reveal before declaration.

    The schedule gains one phase: commits land by ``bidding``, reveals by
    ``bidding + 1``; declaration and everything after shift accordingly
    (the builder passes shifted :class:`AuctionDeadlines`).  Unrevealed
    commitments forfeit nothing — the deposit moves only at reveal time.
    """

    kind = "auction-coin-cr"

    def __init__(self, *args, reveal_deadline: int, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reveal_deadline = reveal_deadline
        self.commitments: dict[str, str] = {}

    def bid(self, ctx: CallContext, amount: int) -> None:  # type: ignore[override]
        self.require(False, "sealed auction: use commit_bid / reveal_bid")

    def commit_bid(self, ctx: CallContext, commitment: str) -> None:
        """Record ``H(amount || salt)`` during the bidding phase."""
        self.require(ctx.sender in self.bidders, f"{ctx.sender} is not a bidder")
        self.require(ctx.sender not in self.commitments, "already committed")
        self.require(ctx.height <= self.deadlines.bidding, "bidding closed")
        self.commitments[ctx.sender] = commitment
        self.emit("bid_committed", bidder=ctx.sender)

    def reveal_bid(self, ctx: CallContext, amount: int, salt: bytes) -> None:
        """Open the commitment and deposit the coins."""
        self.require(ctx.sender in self.commitments, "no commitment to reveal")
        self.require(ctx.sender not in self.bids, "already revealed")
        self.require(ctx.height <= self.reveal_deadline, "reveal closed")
        digest = sha256_hex(f"{amount}|".encode() + salt)
        self.require(digest == self.commitments[ctx.sender], "commitment mismatch")
        self.require(amount > 0, "bid must be positive")
        self.pull(self.coin_asset, ctx.sender, amount)
        self.bids[ctx.sender] = amount
        self.bid_at[ctx.sender] = ctx.height
        self.emit("bid_revealed", bidder=ctx.sender, amount=amount)


def commitment_for(amount: int, salt: bytes) -> str:
    """The commitment digest bidders publish in a sealed auction."""
    return sha256_hex(f"{amount}|".encode() + salt)


class SealedAuctioneerActor(AuctioneerActor):
    """Alice for the sealed auction: declaration waits for the reveals
    (which land at height 3, one Δ after the commitments)."""

    declaration_round = 3


class SealedBidderActor(Actor):
    """A bidder in the sealed auction: commit, reveal, then challenge."""

    def __init__(self, name, keypair, spec, addrs, salt: bytes):
        super().__init__(name, keypair)
        self.spec = spec
        self.ticket_addr, self.coin_addr = addrs
        self.salt = salt
        self.forwarded: set[tuple[str, str]] = set()

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        coin = view.chain(spec.coin_chain).contract(self.coin_addr)
        ticket = view.chain(spec.ticket_chain).contract(self.ticket_addr)
        amount = spec.bids.get(self.name, 0)

        setup_ok = ticket.escrowed and (
            spec.premium == 0 or coin.endowment >= spec.premium * len(spec.bidders)
        )
        if rnd == 1 and setup_ok and amount > 0 and self.name not in coin.commitments:
            txs.append(
                self.tx(
                    spec.coin_chain, self.coin_addr, "commit_bid",
                    commitment=commitment_for(amount, self.salt),
                )
            )
        if rnd == 2 and self.name in coin.commitments and self.name not in coin.bids:
            txs.append(
                self.tx(
                    spec.coin_chain, self.coin_addr, "reveal_bid",
                    amount=amount, salt=self.salt,
                )
            )
        # Challenge phase (shifted one Δ later than the open auction).
        if rnd >= 4:
            sides = [
                (ticket, coin, spec.coin_chain, self.coin_addr),
                (coin, ticket, spec.ticket_chain, self.ticket_addr),
            ]
            for source, target, target_chain, target_addr in sides:
                for designated, hashkey in sorted(source.accepted.items()):
                    if designated in target.accepted:
                        continue
                    if (designated, target_chain) in self.forwarded:
                        continue
                    if self.name in hashkey.path:
                        continue
                    self.forwarded.add((designated, target_chain))
                    txs.append(
                        self.tx(
                            target_chain, target_addr, "present_hashkey",
                            hashkey=hashkey.extend(self.keypair, self.name),
                        )
                    )
        return txs


class SealedBidAuction:
    """Builder for the commit–reveal auction (footnote 8 extension).

    Identical guarantees to :class:`HedgedAuction` — Lemmas 7 and 8 and the
    §9.2 premium payout — with bids hidden until the reveal phase.  The
    schedule gains one Δ: commits land by height 2, reveals by 3,
    declaration by 4, challenge through height 7, commit above 7.
    """

    def __init__(
        self,
        spec: AuctionSpec | None = None,
        strategy: AuctioneerStrategy = AuctioneerStrategy.HONEST,
        secrets: dict[str, Secret] | None = None,
    ) -> None:
        self.spec = spec or AuctionSpec()
        self.strategy = strategy
        self.secrets = secrets or {
            bidder: Secret.generate(f"designates-{bidder}") for bidder in self.spec.bidders
        }

    def build(self) -> ProtocolInstance:
        spec = self.spec
        deadlines = AuctionDeadlines(setup=1, bidding=2, hashkey_base=3, commit=7)
        world = World([spec.ticket_chain, spec.coin_chain])
        parties = (spec.auctioneer,) + spec.bidders
        keys = {name: world.register_party(name) for name in parties}

        world.fund(spec.ticket_chain, spec.auctioneer, spec.ticket_token, spec.tickets)
        world.fund(
            spec.coin_chain, spec.auctioneer, "native", spec.premium * len(spec.bidders)
        )
        for bidder in spec.bidders:
            world.fund(spec.coin_chain, bidder, spec.coin_token, spec.bids.get(bidder, 0))

        hashlocks = {bidder: self.secrets[bidder].hashlock for bidder in spec.bidders}
        ticket_host = world.chain(spec.ticket_chain)
        coin_host = world.chain(spec.coin_chain)

        ticket_addr = ticket_host.deploy(
            TicketAuctionContract(
                auctioneer=spec.auctioneer,
                bidders=spec.bidders,
                hashlocks=hashlocks,
                public_of=world.public_of,
                deadlines=deadlines,
                ticket_asset=ticket_host.asset(spec.ticket_token),
                tickets=spec.tickets,
            )
        )
        coin_addr = coin_host.deploy(
            CommitRevealCoinContract(
                spec.auctioneer,
                spec.bidders,
                hashlocks,
                world.public_of,
                deadlines,
                coin_host.asset(spec.coin_token),
                spec.premium,
                reveal_deadline=3,
            )
        )

        addrs = (ticket_addr, coin_addr)
        actors: dict[str, Actor] = {
            spec.auctioneer: SealedAuctioneerActor(
                spec.auctioneer, keys[spec.auctioneer], spec, self.secrets, addrs, self.strategy
            )
        }
        for i, bidder in enumerate(spec.bidders):
            actors[bidder] = SealedBidderActor(
                bidder, keys[bidder], spec, addrs, salt=f"salt-{i}-{bidder}".encode()
            )

        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=deadlines.horizon,
            contracts={
                "ticket": (spec.ticket_chain, ticket_addr),
                "coin": (spec.coin_chain, coin_addr),
            },
            meta={"spec": spec, "deadlines": deadlines, "strategy": self.strategy},
        )
