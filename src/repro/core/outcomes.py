"""Outcome extraction and the paper's payoff predicates.

:class:`TwoPartyOutcome` condenses a hedged (or base) two-party run into the
quantities the paper reasons about: whether the swap completed, each party's
net premium flow, each party's principal delta, and how long assets sat in
escrow.  The ``hedged`` predicate of Definition 1 — "whenever a compliant
party escrows assets that are not redeemed, that party receives what it
considers sufficient compensation" — is checked by the model checker via
:func:`compliant_payoff_acceptable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult


@dataclass
class TwoPartyOutcome:
    """Condensed result of a two-party swap run."""

    swapped: bool
    alice_premium_net: int
    bob_premium_net: int
    alice_got_tokens: bool
    bob_got_tokens: bool
    alice_kept_tokens: bool
    bob_kept_tokens: bool
    principal_lockups: dict[str, int | None] = field(default_factory=dict)
    premium_lockups: dict[str, int | None] = field(default_factory=dict)
    scenario: str = ""

    @property
    def alice_safe(self) -> bool:
        """Alice's principal is either traded for Bob's or returned."""
        return self.alice_got_tokens or self.alice_kept_tokens

    @property
    def bob_safe(self) -> bool:
        return self.bob_got_tokens or self.bob_kept_tokens


def extract_two_party_outcome(
    instance: ProtocolInstance, result: RunResult
) -> TwoPartyOutcome:
    """Read the outcome of a (base or hedged) two-party swap run."""
    spec = instance.meta["spec"]
    payoffs = result.payoffs
    assert payoffs is not None

    token_a = instance.world.chain(spec.chain_a).asset(spec.token_a)
    token_b = instance.world.chain(spec.chain_b).asset(spec.token_b)
    alice_delta = payoffs.delta(spec.alice)
    bob_delta = payoffs.delta(spec.bob)

    alice_got = alice_delta.get(token_b, 0) >= spec.amount_b
    bob_got = bob_delta.get(token_a, 0) >= spec.amount_a
    alice_kept = alice_delta.get(token_a, 0) == 0
    bob_kept = bob_delta.get(token_b, 0) == 0

    principal_lockups: dict[str, int | None] = {}
    premium_lockups: dict[str, int | None] = {}
    for label in instance.contracts:
        contract = instance.contract(label)
        if hasattr(contract, "principal_lockup"):
            principal_lockups[label] = contract.principal_lockup
            premium_lockups[label] = contract.premium_lockup
        elif hasattr(contract, "lockup_duration"):
            principal_lockups[label] = contract.lockup_duration

    return TwoPartyOutcome(
        swapped=alice_got and bob_got,
        alice_premium_net=payoffs.premium_net(spec.alice),
        bob_premium_net=payoffs.premium_net(spec.bob),
        alice_got_tokens=alice_got,
        bob_got_tokens=bob_got,
        alice_kept_tokens=alice_kept,
        bob_kept_tokens=bob_kept,
        principal_lockups=principal_lockups,
        premium_lockups=premium_lockups,
    )


def compliant_payoff_acceptable(
    outcome: TwoPartyOutcome,
    compliant: str,
    spec,
) -> bool:
    """Definition 1 check for the two-party hedged swap.

    A compliant party must end in one of the acceptable states:

    - the swap completed and its premiums were refunded (net premium 0), or
    - it kept (or recovered) its principal; and if its principal had been
      escrowed and went unredeemed because the counterparty walked away, it
      collected the counterparty's premium.
    """
    if compliant == spec.alice:
        if outcome.swapped:
            return outcome.alice_premium_net == 0
        if not outcome.alice_safe:
            return False
        # if Alice escrowed and Bob walked, she must net >= p_b
        alice_escrowed = outcome.principal_lockups.get("apricot_escrow") is not None
        if alice_escrowed and not outcome.swapped:
            return outcome.alice_premium_net >= spec.premium_b
        return outcome.alice_premium_net >= 0
    if compliant == spec.bob:
        if outcome.swapped:
            return outcome.bob_premium_net == 0
        if not outcome.bob_safe:
            return False
        bob_escrowed = outcome.principal_lockups.get("banana_escrow") is not None
        if bob_escrowed and not outcome.swapped:
            return outcome.bob_premium_net >= spec.premium_a
        return outcome.bob_premium_net >= 0
    raise ValueError(f"unknown party {compliant!r}")
