"""The hedged multi-party swap — §7.1.

Four phases, each mirroring the base protocol's flows:

1. **escrow premiums** (forward): leaders deposit ``E(L, v)`` on outgoing
   arcs; a follower deposits on its outgoing arcs once every incoming arc
   carries its escrow premium,
2. **redemption premiums** (backward, per leader): each leader that saw all
   its incoming escrow premiums originates redemption premiums on its
   incoming arcs; every other party, on first seeing a premium for ``k_i``
   on an outgoing arc, extends the authenticated path and deposits on all
   its incoming arcs (amounts from Equation 1),
3. **principal escrow** (forward): like base Phase One, but only on
   *activated* arcs (all redemption premiums present),
4. **hashkeys** (backward): like base Phase Two — with the Lemma 3/4
   leader rule: a leader releases its key iff all its incoming arcs hold
   principals *or* it escrowed nothing; otherwise it withholds the key,
   turning the redemption premiums on its escrowed arcs into compensation.

If premium distribution fails, parties execute exactly the truncated runs
the lemmas describe — the actors below implement those recovery rules, and
`repro.checker` verifies the lemma bounds under exhaustive deviations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.chain.block import Transaction
from repro.contracts.swap_arc import HedgedSwapArc
from repro.core.premiums import (
    escrow_premium_amounts,
    worst_case_redemption_amount,
)
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import SignedPath
from repro.errors import ProtocolError
from repro.graph.digraph import Arc, SwapGraph
from repro.graph.feedback import minimum_feedback_vertex_set
from repro.graph.schedule import MultiPartySchedule
from repro.parties.base import Actor
from repro.protocols.base_multi_party import AddrMap, MultiPartyActorBase
from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult
from repro.sim.world import World, WorldView


class HedgedMultiPartyActor(MultiPartyActorBase):
    """Compliant actor for the hedged protocol, including recovery rules."""

    def __init__(self, name, keypair, graph, schedule, addresses, secret, hashlocks):
        super().__init__(name, keypair, graph, schedule, addresses, secret)
        self.hashlocks = hashlocks
        self.p1_done = False
        self.rpremium_done: set[str] = set()
        self.p3_done = False

    # -- phase-1 helpers ---------------------------------------------------
    def all_incoming_escrow_premiums(self, view: WorldView) -> bool:
        return all(
            self.arc_contract(view, arc).escrow_premium_state == "held"
            for arc in self.my_in_arcs()
        )

    def _deposit_escrow_premiums(self) -> list[Transaction]:
        txs = []
        for arc in sorted(self.my_out_arcs()):
            chain_name, address = self.addresses[arc]
            txs.append(self.tx(chain_name, address, "deposit_escrow_premium"))
        self.p1_done = True
        return txs

    # -- phase-2 helpers ---------------------------------------------------
    def _originate_redemption_premiums(self, view: WorldView) -> list[Transaction]:
        payload = f"rpremium:{self.hashlocks[self.name].digest}"
        chain = SignedPath.create(payload, self.keypair, self.name)
        return self._deposit_rpremium_on_in_arcs(view, self.name, chain)

    def _deposit_rpremium_on_in_arcs(
        self, view: WorldView, leader: str, chain: SignedPath
    ) -> list[Transaction]:
        self.rpremium_done.add(leader)
        txs = []
        for arc in sorted(self.my_in_arcs()):
            contract = self.arc_contract(view, arc)
            if leader in contract.redemption_deposits:
                continue
            chain_name, address = self.addresses[arc]
            txs.append(
                self.tx(chain_name, address, "deposit_redemption_premium", path_chain=chain)
            )
        return txs

    def _forward_redemption_premiums(self, view: WorldView) -> list[Transaction]:
        """First premium for k_i on an outgoing arc triggers the extension."""
        txs: list[Transaction] = []
        for leader in sorted(self.schedule_leaders()):
            if leader in self.rpremium_done:
                continue
            for arc in sorted(self.my_out_arcs()):
                deposits = self.arc_contract(view, arc).redemption_deposits
                if leader in deposits:
                    seen = deposits[leader].chain
                    if self.name in seen.vertices:
                        self.rpremium_done.add(leader)
                        break
                    extended = seen.extend(self.keypair, self.name)
                    txs.extend(self._deposit_rpremium_on_in_arcs(view, leader, extended))
                    break
        return txs

    # -- phase-3 helpers ---------------------------------------------------
    def _escrow_principals(self, view: WorldView) -> list[Transaction]:
        txs = []
        for arc in sorted(self.my_out_arcs()):
            if not self.arc_contract(view, arc).activated:
                continue
            chain_name, address = self.addresses[arc]
            txs.append(self.tx(chain_name, address, "escrow_principal"))
            self.escrowed_arcs.add(arc)
        self.p3_done = True
        return txs

    # -- driver -------------------------------------------------------------
    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        s = self.schedule
        txs: list[Transaction] = []

        # Phase 1 — escrow premiums (forward flow).
        if rnd < s.p2_start and not self.p1_done:
            ready = rnd == 0 if self.is_leader else self.all_incoming_escrow_premiums(view)
            if ready:
                txs.extend(self._deposit_escrow_premiums())

        # Phase 2 — redemption premiums (backward flow).
        if s.p2_start <= rnd < s.p3_start:
            if (
                self.is_leader
                and rnd == s.p2_start
                and self.name not in self.rpremium_done
            ):
                if self.all_incoming_escrow_premiums(view):
                    txs.extend(self._originate_redemption_premiums(view))
                else:
                    # Lemma 5 recovery: skip origination entirely.
                    self.rpremium_done.add(self.name)
            txs.extend(self._forward_redemption_premiums(view))

        # Phase 3 — principal escrow (forward flow, activated arcs only).
        if s.p3_start <= rnd < s.p4_start and not self.p3_done:
            ready = rnd == s.p3_start if self.is_leader else self.all_incoming_escrowed(view)
            if ready:
                txs.extend(self._escrow_principals(view))

        # Phase 4 — hashkeys (backward flow).
        if rnd >= s.p4_start:
            if self.is_leader and self.name not in self.released and rnd == s.p4_start:
                if self.all_incoming_escrowed(view) or not self.escrowed_arcs:
                    # Normal release, or Lemma 4 recovery (nothing escrowed:
                    # release to recover own redemption premium deposits).
                    txs.extend(self._originate_hashkey(view))
                else:
                    # Lemma 3 recovery: withhold the key; redemption
                    # premiums on escrowed outgoing arcs become compensation.
                    self.released.add(self.name)
            txs.extend(self._forward_hashkeys(view))
        return txs


@dataclass
class MultiPartyOutcome:
    """Condensed result of a multi-party run (base or hedged)."""

    parties: tuple[str, ...]
    premium: int
    premium_net: dict[str, int]
    arc_states: dict[Arc, str]
    escrowers: dict[Arc, str] = field(default_factory=dict)

    @property
    def all_redeemed(self) -> bool:
        return all(state == "redeemed" for state in self.arc_states.values())

    def out_arcs_of(self, party: str) -> list[Arc]:
        return [arc for arc in self.arc_states if arc[0] == party]

    def in_arcs_of(self, party: str) -> list[Arc]:
        return [arc for arc in self.arc_states if arc[1] == party]

    def unredeemed_escrow_count(self, party: str) -> int:
        """Outgoing arcs whose principal was escrowed but refunded."""
        return sum(
            1 for arc in self.out_arcs_of(party) if self.arc_states[arc] == "refunded"
        )

    def safety_holds(self, party: str) -> bool:
        """If any outgoing principal was taken, all incoming were received."""
        gave = any(self.arc_states[a] == "redeemed" for a in self.out_arcs_of(party))
        if not gave:
            return True
        return all(self.arc_states[a] == "redeemed" for a in self.in_arcs_of(party))

    def hedged_holds(self, party: str) -> bool:
        """Lemma 6: net premium ≥ p per escrowed-but-unredeemed asset."""
        return self.premium_net[party] >= self.premium * self.unredeemed_escrow_count(party)


def extract_multi_party_outcome(
    instance: ProtocolInstance, result: RunResult
) -> MultiPartyOutcome:
    """Read arc states and premium flows after a run."""
    graph: SwapGraph = instance.meta["graph"]
    addresses: AddrMap = instance.meta["addresses"]
    payoffs = result.payoffs
    assert payoffs is not None
    arc_states = {}
    for arc, (chain_name, address) in addresses.items():
        contract = instance.world.chain(chain_name).contract_at(address)
        arc_states[arc] = contract.principal_state
    return MultiPartyOutcome(
        parties=tuple(graph.parties),
        premium=int(instance.meta.get("premium", 0)),
        premium_net={p: payoffs.premium_net(p) for p in graph.parties},
        arc_states=arc_states,
        escrowers={arc: arc[0] for arc in addresses},
    )


class HedgedMultiPartySwap:
    """Builder for the hedged multi-party swap (§7.1)."""

    def __init__(
        self,
        graph: SwapGraph | None = None,
        leaders: tuple[str, ...] | None = None,
        premium: int = 1,
        secrets: dict[str, Secret] | None = None,
    ) -> None:
        from repro.graph.digraph import figure3_graph

        self.graph = graph or figure3_graph()
        if not self.graph.is_strongly_connected():
            raise ProtocolError("swap digraph must be strongly connected")
        self.leaders = tuple(leaders or minimum_feedback_vertex_set(self.graph))
        self.premium = premium
        self.secrets = secrets or {
            leader: Secret.generate(f"{leader}-secret") for leader in self.leaders
        }
        if set(self.secrets) != set(self.leaders):
            raise ProtocolError("need exactly one secret per leader")
        self.schedule = MultiPartySchedule(self.graph, self.leaders)

    def build(self) -> ProtocolInstance:
        graph, schedule, p = self.graph, self.schedule, self.premium
        world = World(graph.chains)
        keys = {name: world.register_party(name) for name in graph.parties}
        hashlocks = {leader: self.secrets[leader].hashlock for leader in self.leaders}
        escrow_premiums = escrow_premium_amounts(graph, self.leaders, p)

        # Token funding: each escrower holds what its outgoing arcs move.
        token_need: dict[tuple[str, str, str], int] = defaultdict(int)
        for (u, v), spec in graph.specs.items():
            token_need[(spec.chain, u, spec.token)] += spec.amount
        for (chain_name, account, token), amount in token_need.items():
            world.fund(chain_name, account, token, amount)

        # Native funding: worst-case premium exposure per party per chain.
        native_need: dict[tuple[str, str], int] = defaultdict(int)
        for arc, amount in escrow_premiums.items():
            u, _ = arc
            native_need[(graph.specs[arc].chain, u)] += amount
        for arc in graph.arcs:
            u, v = arc
            chain_name = graph.specs[arc].chain
            # Worst case over the paths v could authenticate to any leader,
            # maximized over member *subsets* rather than enumerated paths
            # (a factorial → n·2^n reduction that unlocks complete:7/8).
            worst = max(
                (
                    worst_case_redemption_amount(graph, v, u, leader, p)
                    for leader in self.leaders
                ),
                default=0,
            )
            native_need[(chain_name, v)] += worst * len(self.leaders)
        for (chain_name, account), amount in native_need.items():
            world.fund(chain_name, account, "native", amount)

        addresses: AddrMap = {}
        contracts: dict[str, tuple[str, str]] = {}
        for arc in sorted(graph.arcs):
            spec = graph.specs[arc]
            host = world.chain(spec.chain)
            address = host.deploy(
                HedgedSwapArc(
                    graph=graph,
                    schedule=schedule,
                    public_of=world.public_of,
                    hashlocks=hashlocks,
                    arc=arc,
                    asset=host.asset(spec.token),
                    amount=spec.amount,
                    premium=p,
                    escrow_premium_amount=escrow_premiums[arc],
                )
            )
            addresses[arc] = (spec.chain, address)
            contracts[f"arc:{arc[0]}->{arc[1]}"] = (spec.chain, address)

        actors: dict[str, Actor] = {}
        for name in graph.parties:
            actors[name] = HedgedMultiPartyActor(
                name,
                keys[name],
                graph,
                schedule,
                addresses,
                self.secrets.get(name),
                hashlocks,
            )

        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=schedule.horizon,
            contracts=contracts,
            meta={
                "graph": graph,
                "schedule": schedule,
                "leaders": self.leaders,
                "addresses": addresses,
                "premium": p,
                "escrow_premiums": escrow_premiums,
            },
        )
