"""The hedged broker protocol — §8.2.

Premiums are deposited in three phases mirroring the base protocol:

1. **escrow premiums** — Bob posts ``E(B, A)`` and Carol ``E(C, A)``, each
   equal to ``T(A) = T(A,B) + T(A,C)`` (the broker's total forced trading
   premiums: whoever blocks the deal reimburses Alice's passthrough),
2. **trading premiums** — Alice posts ``T(A, B) = R_B(B)`` and
   ``T(A, C) = R_C(C)``,
3. **redemption premiums** — backward flow per leader exactly as in the
   multi-party swap; with ``optimize=True`` (default) the footnote-7
   pruning drops deposits whose forwarding target shares a contract with
   the arc where the key is observed.

Compliant release rule in the redemption phase: Alice always releases her
key (she escrows nothing — releasing only recovers her deposits).  An
escrower releases when both contracts are traded (happy path), or when the
contract holding *its* asset is untraded (nothing can be redeemed, so
releasing merely recovers premiums); it withholds exactly when its asset's
contract is traded but the other is not — the case where release would let
its asset go without the counter-payment.

The module also implements the §8.2 multi-round extension: premiums for an
``r``-round trading schedule obey ``E(v,w) = T_1(w)``,
``T_k(v,w) = T_{k+1}(w)`` for ``k < r`` and ``T_r(v,w) = R_w(w)`` —
see :func:`multi_round_trading_premiums`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Transaction
from repro.contracts.broker import BrokerDeadlines, HedgedBrokerContract
from repro.core.premiums import (
    pruned_redemption_premium_amount,
    required_redemption_keys,
)
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import SignedPath
from repro.graph.digraph import Arc
from repro.protocols.base_broker import BrokerActorBase, BrokerSpec
from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult
from repro.sim.world import World, WorldView


def broker_premium_tables(
    spec: BrokerSpec, premium: int, optimize: bool = True
) -> dict[str, object]:
    """All premium amounts for one deal: R flows, T, and E tables."""
    graph = spec.graph()
    contract_of = spec.contract_of() if optimize else None
    a, b, c = spec.broker, spec.seller, spec.buyer

    def origination_total(leader: str) -> int:
        """R_w(w): the leader's own-key deposits on its incoming arcs."""
        total = 0
        seen_contracts: set[str] = set()
        for arc in sorted(graph.in_arcs(leader)):
            if contract_of is not None:
                host = contract_of[arc]
                if host in seen_contracts:
                    continue
                seen_contracts.add(host)
            total += pruned_redemption_premium_amount(
                graph, (leader,), arc[0], premium, contract_of
            )
        return total

    trading = {(a, b): origination_total(b), (a, c): origination_total(c)}
    t_total = sum(trading.values())
    escrow = {(b, a): t_total, (c, a): t_total}
    return {
        "trading": trading,
        "escrow": escrow,
        "required_keys": required_redemption_keys(graph, (a, b, c), contract_of),
        "contract_of": contract_of,
    }


def multi_round_trading_premiums(
    rounds: list[list[Arc]],
    escrow_arcs: list[Arc],
    origination_totals: dict[str, int],
) -> dict[str, dict[Arc, int]]:
    """The §8.2 multi-round recurrence.

    ``rounds[k]`` lists the arcs traded in round ``k+1`` (1-based phases);
    ``origination_totals`` maps each party ``w`` to ``R_w(w)``.  Returns the
    escrow premium table ``E`` and per-round trading premium tables
    ``T_1 .. T_r``.
    """
    r = len(rounds)
    tables: dict[int, dict[Arc, int]] = {}
    # T_r first, then backward.
    for k in range(r, 0, -1):
        table: dict[Arc, int] = {}
        for (v, w) in rounds[k - 1]:
            if k == r:
                table[(v, w)] = origination_totals[w]
            else:
                next_total = sum(
                    amount for (x, y), amount in tables[k + 1].items() if x == w
                )
                table[(v, w)] = next_total
        tables[k] = table
    escrow: dict[Arc, int] = {}
    for (v, w) in escrow_arcs:
        escrow[(v, w)] = sum(amount for (x, y), amount in tables[1].items() if x == w)
    out: dict[str, dict[Arc, int]] = {"E": escrow}
    for k in range(1, r + 1):
        out[f"T_{k}"] = tables[k]
    return out


class HedgedBrokerActorBase(BrokerActorBase):
    """Premium-phase machinery shared by all three hedged broker parties."""

    def __init__(self, name, keypair, spec, secret, addrs, deadlines, contract_of):
        super().__init__(name, keypair, spec, secret, addrs)
        self.deadlines = deadlines
        self.contract_of = contract_of  # None when optimize=False
        self.rpremium_done: set[str] = set()

    def _addr_for_arc(self, arc: Arc) -> tuple[str, str]:
        hosting = (self.spec.contract_of())[arc]
        if hosting == "ticket":
            return (self.spec.ticket_chain, self.ticket_addr)
        return (self.spec.coin_chain, self.coin_addr)

    def _contract_for_arc(self, view: WorldView, arc: Arc):
        chain_name, address = self._addr_for_arc(arc)
        return view.chain(chain_name).contract(address)

    def _all_pre_premiums_present(self, view: WorldView) -> bool:
        """Both escrow premiums and both trading premiums are held."""
        ticket, coin = self.contracts(view)
        return all(
            state == "held"
            for state in (
                ticket.escrow_premium_state,
                coin.escrow_premium_state,
                ticket.trading_premium_state,
                coin.trading_premium_state,
            )
        )

    def _originate_rpremiums(self, view: WorldView) -> list[Transaction]:
        """Deposit my own-key redemption premiums on my incoming arcs."""
        self.rpremium_done.add(self.name)
        payload = f"rpremium:{self.secret.hashlock.digest}"
        chain = SignedPath.create(payload, self.keypair, self.name)
        txs = []
        seen_contracts: set[str] = set()
        for arc in sorted(self.graph.in_arcs(self.name)):
            if self.contract_of is not None:
                host = self.spec.contract_of()[arc]
                if host in seen_contracts:
                    continue
                seen_contracts.add(host)
            chain_name, address = self._addr_for_arc(arc)
            txs.append(
                self.tx(
                    chain_name, address, "deposit_redemption_premium",
                    arc=arc, path_chain=chain,
                )
            )
        return txs

    def _forward_rpremiums(self, view: WorldView) -> list[Transaction]:
        """Extend the first-seen premium for each leader (backward flow)."""
        txs: list[Transaction] = []
        for leader in sorted(self.graph.parties):
            if leader in self.rpremium_done:
                continue
            for out_arc in sorted(self.graph.out_arcs(self.name)):
                contract = self._contract_for_arc(view, out_arc)
                deposit = contract.rdeposits.get((out_arc, leader))
                if deposit is None:
                    continue
                self.rpremium_done.add(leader)
                seen = deposit.chain
                if self.name in seen.vertices:
                    break
                extended = seen.extend(self.keypair, self.name)
                observe_host = self.spec.contract_of()[out_arc]
                for in_arc in sorted(self.graph.in_arcs(self.name)):
                    in_host = self.spec.contract_of()[in_arc]
                    if self.contract_of is not None and in_host == observe_host:
                        continue  # footnote 7 pruning
                    in_contract = self._contract_for_arc(view, in_arc)
                    if (in_arc, leader) in in_contract.rdeposits:
                        continue
                    chain_name, address = self._addr_for_arc(in_arc)
                    txs.append(
                        self.tx(
                            chain_name, address, "deposit_redemption_premium",
                            arc=in_arc, path_chain=extended,
                        )
                    )
                break
        return txs


class HedgedBrokerAlice(HedgedBrokerActorBase):
    """The broker: premiums, trades, unconditional key release."""

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, d, txs = self.spec, self.deadlines, []
        ticket, coin = self.contracts(view)

        # Trading premiums once both escrow premiums are visible.
        if (
            rnd + 1 <= d.trading_premium
            and ticket.trading_premium_state == "absent"
            and ticket.escrow_premium_state == "held"
            and coin.escrow_premium_state == "held"
        ):
            txs.append(self.tx(spec.ticket_chain, self.ticket_addr, "deposit_trading_premium"))
            txs.append(self.tx(spec.coin_chain, self.coin_addr, "deposit_trading_premium"))

        # Redemption premium origination + forwarding.
        if d.trading_premium <= rnd < d.escrow:
            if self.name not in self.rpremium_done:
                if self._all_pre_premiums_present(view):
                    txs.extend(self._originate_rpremiums(view))
                else:
                    self.rpremium_done.add(self.name)
            txs.extend(self._forward_rpremiums(view))

        # Trade both contracts once both principals are escrowed.
        both_escrowed = (
            ticket.escrow_state == "escrowed" and coin.escrow_state == "escrowed"
        )
        if both_escrowed and not ticket.traded and rnd + 1 <= d.trade:
            if ticket.contract_activated and coin.contract_activated:
                txs.append(self.tx(spec.ticket_chain, self.ticket_addr, "trade"))
                txs.append(self.tx(spec.coin_chain, self.coin_addr, "trade"))

        # Redemption phase: always release (recovers deposits), and forward.
        if rnd >= d.hashkey_base:
            if not self.released_own:
                txs.extend(
                    self._release_own(
                        view,
                        [
                            (spec.ticket_chain, self.ticket_addr),
                            (spec.coin_chain, self.coin_addr),
                        ],
                    )
                )
            txs.extend(self._forward_keys(view))
        return txs


class HedgedBrokerEscrower(HedgedBrokerActorBase):
    """Bob or Carol: escrow premium, principal, guarded key release."""

    def __init__(self, name, keypair, spec, secret, addrs, deadlines, contract_of, side):
        super().__init__(name, keypair, spec, secret, addrs, deadlines, contract_of)
        self.side = side  # "ticket" for Bob, "coin" for Carol

    def _my_contract(self, view: WorldView):
        ticket, coin = self.contracts(view)
        return ticket if self.side == "ticket" else coin

    def _my_chain_addr(self) -> tuple[str, str]:
        if self.side == "ticket":
            return (self.spec.ticket_chain, self.ticket_addr)
        return (self.spec.coin_chain, self.coin_addr)

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        d, txs = self.deadlines, []
        ticket, coin = self.contracts(view)
        mine = self._my_contract(view)
        chain_name, address = self._my_chain_addr()

        # Phase 1: my escrow premium, immediately.
        if rnd == 0 and mine.escrow_premium_state == "absent":
            txs.append(self.tx(chain_name, address, "deposit_escrow_premium"))

        # Phases 2-3 premium flow.
        if d.trading_premium <= rnd < d.escrow:
            if self.name not in self.rpremium_done:
                if self._all_pre_premiums_present(view):
                    txs.extend(self._originate_rpremiums(view))
                else:
                    self.rpremium_done.add(self.name)
            txs.extend(self._forward_rpremiums(view))

        # Escrow my principal once my contract's premium structure is live.
        if (
            d.escrow - 1 <= rnd < d.trade
            and mine.escrow_state == "absent"
            and mine.contract_activated
        ):
            txs.append(self.tx(chain_name, address, "escrow_asset"))

        # Redemption phase: guarded release + forwarding.  Release when both
        # trades landed (happy path) or when my asset was never locked
        # (recovering premium deposits is then free); withhold when my asset
        # sits escrowed without both trades — the Lemma-3 rule that turns
        # the counterparties' redemption premiums into my compensation.
        if rnd >= d.hashkey_base:
            both_traded = ticket.traded and coin.traded
            safe = both_traded or mine.escrowed_at is None
            if safe and not self.released_own:
                # Present my own key on my incoming arc's contract (the
                # *other* asset's contract, where I am the trading redeemer).
                other_chain, other_addr = (
                    (self.spec.coin_chain, self.coin_addr)
                    if self.side == "ticket"
                    else (self.spec.ticket_chain, self.ticket_addr)
                )
                txs.extend(self._release_own(view, [(other_chain, other_addr)]))
            txs.extend(self._forward_keys(view))
        return txs


@dataclass
class BrokerOutcome:
    """Condensed result of a broker run."""

    premium: int
    premium_net: dict[str, int]
    tickets_delta: dict[str, int]
    coins_delta: dict[str, int]
    ticket_state: str
    coin_state: str
    traded: tuple[bool, bool]

    @property
    def completed(self) -> bool:
        return self.ticket_state == "redeemed" and self.coin_state == "redeemed"


def extract_broker_outcome(instance: ProtocolInstance, result: RunResult) -> BrokerOutcome:
    spec: BrokerSpec = instance.meta["spec"]
    payoffs = result.payoffs
    assert payoffs is not None
    ticket = instance.contract("ticket")
    coin = instance.contract("coin")
    ticket_asset = instance.world.chain(spec.ticket_chain).asset(spec.ticket_token)
    coin_asset = instance.world.chain(spec.coin_chain).asset(spec.coin_token)
    parties = (spec.broker, spec.seller, spec.buyer)
    return BrokerOutcome(
        premium=int(instance.meta.get("premium", 0)),
        premium_net={p: payoffs.premium_net(p) for p in parties},
        tickets_delta={p: payoffs.delta(p).get(ticket_asset, 0) for p in parties},
        coins_delta={p: payoffs.delta(p).get(coin_asset, 0) for p in parties},
        ticket_state=ticket.escrow_state,
        coin_state=coin.escrow_state,
        traded=(ticket.traded, coin.traded),
    )


class HedgedBrokerDeal:
    """Builder for the hedged §8.2 broker protocol."""

    def __init__(
        self,
        spec: BrokerSpec | None = None,
        premium: int = 1,
        optimize: bool = True,
        secrets: dict[str, Secret] | None = None,
    ) -> None:
        self.spec = spec or BrokerSpec()
        self.premium = premium
        self.optimize = optimize
        parties = (self.spec.broker, self.spec.seller, self.spec.buyer)
        self.secrets = secrets or {p: Secret.generate(f"{p}-secret") for p in parties}

    def build(self) -> ProtocolInstance:
        spec, p = self.spec, self.premium
        graph = spec.graph()
        a, b, c = spec.broker, spec.seller, spec.buyer
        tables = broker_premium_tables(spec, p, self.optimize)
        trading = tables["trading"]
        escrow = tables["escrow"]
        required = tables["required_keys"]
        contract_of = tables["contract_of"]

        world = World([spec.ticket_chain, spec.coin_chain])
        keys = {name: world.register_party(name) for name in (a, b, c)}
        world.fund(spec.ticket_chain, b, spec.ticket_token, spec.tickets)
        world.fund(spec.coin_chain, c, spec.coin_token, spec.buyer_price)
        # Native funding: generous bound (all premiums both chains).
        bound = 4 * (sum(trading.values()) + sum(escrow.values())) + 16 * p
        for chain_name in (spec.ticket_chain, spec.coin_chain):
            for name in (a, b, c):
                world.fund(chain_name, name, "native", bound)

        hashlocks = {name: self.secrets[name].hashlock for name in (a, b, c)}
        deadlines = BrokerDeadlines.hedged()
        ticket_host = world.chain(spec.ticket_chain)
        coin_host = world.chain(spec.coin_chain)

        ticket_addr = ticket_host.deploy(
            HedgedBrokerContract(
                graph=graph,
                public_of=world.public_of,
                hashlocks=hashlocks,
                escrow_arc=(b, a),
                trading_arc=(a, c),
                asset=ticket_host.asset(spec.ticket_token),
                amount=spec.tickets,
                payouts=((c, spec.tickets),),
                deadlines=deadlines,
                premium=p,
                escrow_premium_amount=escrow[(b, a)],
                trading_premium_amount=trading[(a, c)],
                required_keys=required,
                contract_of=contract_of,
            )
        )
        coin_addr = coin_host.deploy(
            HedgedBrokerContract(
                graph=graph,
                public_of=world.public_of,
                hashlocks=hashlocks,
                escrow_arc=(c, a),
                trading_arc=(a, b),
                asset=coin_host.asset(spec.coin_token),
                amount=spec.buyer_price,
                payouts=((b, spec.seller_price), (a, spec.markup)),
                deadlines=deadlines,
                premium=p,
                escrow_premium_amount=escrow[(c, a)],
                trading_premium_amount=trading[(a, b)],
                required_keys=required,
                contract_of=contract_of,
            )
        )

        addrs = (ticket_addr, coin_addr)
        actors = {
            a: HedgedBrokerAlice(
                a, keys[a], spec, self.secrets[a], addrs, deadlines, contract_of
            ),
            b: HedgedBrokerEscrower(
                b, keys[b], spec, self.secrets[b], addrs, deadlines, contract_of, "ticket"
            ),
            c: HedgedBrokerEscrower(
                c, keys[c], spec, self.secrets[c], addrs, deadlines, contract_of, "coin"
            ),
        }
        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=deadlines.horizon,
            contracts={
                "ticket": (spec.ticket_chain, ticket_addr),
                "coin": (spec.coin_chain, coin_addr),
            },
            meta={
                "spec": spec,
                "graph": graph,
                "deadlines": deadlines,
                "premium": p,
                "tables": tables,
            },
        )
