"""The hedged two-party atomic swap — §5.2, Figure 1.

Timeline (heights; one height = Δ; a transaction submitted in round *r*
lands at height *r + 1*):

======  =======================================================  =========
round   action                                                   deadline
======  =======================================================  =========
0       Alice deposits premium ``p_a + p_b`` on the **banana**   1
        chain's escrow contract
1       Bob deposits premium ``p_b`` on the **apricot** chain    2
2       Alice escrows her principal on the apricot chain         ``t_a,e`` = 3
3       Bob escrows his principal on the banana chain            ``t_b,e`` = 4
4       Alice redeems Bob's principal, revealing ``s``           ``t_A`` = 5
5       Bob redeems Alice's principal with ``s``                 ``t_B`` = 6
==========================================================================

Premium rules (enforced by :class:`repro.contracts.hedged_escrow.HedgedEscrow`):
a premium refunds to its payer when the same-chain principal is redeemed (or
never escrowed), and is awarded to the principal's owner when an escrowed
principal goes unredeemed.  Consequences, as in the paper: if Bob reneges
after Alice escrows, he pays Alice ``p_b``; if Alice reneges after Bob
escrows, she pays ``p_a + p_b`` to Bob and receives ``p_b`` back, a net
transfer of ``p_a`` to Bob.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.chain.block import Transaction
from repro.contracts.hedged_escrow import HedgedEscrow
from repro.crypto.hashing import Secret
from repro.parties.base import Actor
from repro.protocols.instance import ProtocolInstance
from repro.sim.world import World, WorldView


@dataclass(frozen=True)
class HedgedTwoPartySpec:
    """Parameters of the hedged two-party swap (Figure 1)."""

    alice: str = "Alice"
    bob: str = "Bob"
    chain_a: str = "apricot"
    chain_b: str = "banana"
    token_a: str = "apricot-token"
    token_b: str = "banana-token"
    amount_a: int = 100
    amount_b: int = 100
    premium_a: int = 2  # p_a — compensates Bob if Alice reneges
    premium_b: int = 1  # p_b — compensates Alice if Bob reneges

    # deadlines in heights (Δ units), §5.2 verbatim
    alice_premium_deadline: int = 1
    bob_premium_deadline: int = 2
    alice_escrow_deadline: int = 3  # t_a,e
    bob_escrow_deadline: int = 4  # t_b,e
    alice_redeem_deadline: int = 5  # t_A (banana chain timelock)
    bob_redeem_deadline: int = 6  # t_B (apricot chain timelock)

    def stretched(self, k: int) -> "HedgedTwoPartySpec":
        """The same swap with every deadline stretched to ``k`` Δ-heights.

        §5.2 prices premiums off the time value of locked assets, so the
        deadline spacing is a real axis: a slower chain (or a cautious
        confirmation policy) multiplies every timeout by ``k`` while the
        compliant happy path still finishes at the original pace — only
        deviant runs see the longer escrow windows.
        """
        if k < 1:
            raise ValueError(f"stretch factor must be >= 1, got {k}")
        return replace(
            self,
            alice_premium_deadline=self.alice_premium_deadline * k,
            bob_premium_deadline=self.bob_premium_deadline * k,
            alice_escrow_deadline=self.alice_escrow_deadline * k,
            bob_escrow_deadline=self.bob_escrow_deadline * k,
            alice_redeem_deadline=self.alice_redeem_deadline * k,
            bob_redeem_deadline=self.bob_redeem_deadline * k,
        )

    @property
    def alice_premium(self) -> int:
        """Alice deposits ``p_a + p_b`` (the passthrough pattern, §5.2)."""
        return self.premium_a + self.premium_b

    @property
    def bob_premium(self) -> int:
        return self.premium_b


class HedgedSwapAlice(Actor):
    """Compliant Alice for the hedged swap (reactive)."""

    def __init__(self, name, keypair, spec, secret: Secret, addrs):
        super().__init__(name, keypair)
        self.spec = spec
        self.secret = secret
        self.apricot_escrow, self.banana_escrow = addrs

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        lands = view.height + 1
        apricot = view.chain(spec.chain_a).contract(self.apricot_escrow)
        banana = view.chain(spec.chain_b).contract(self.banana_escrow)

        # Step 1: deposit premium p_a + p_b on the banana chain.
        if banana.premium_state == "absent" and lands <= spec.alice_premium_deadline:
            txs.append(self.tx(spec.chain_b, self.banana_escrow, "deposit_premium"))

        # Step 3: escrow principal once Bob's premium is visible.
        if (
            apricot.premium_state == "held"
            and apricot.principal_state == "absent"
            and lands <= spec.alice_escrow_deadline
        ):
            txs.append(self.tx(spec.chain_a, self.apricot_escrow, "escrow_principal"))

        # Step 5: redeem Bob's principal, revealing the secret.
        if (
            banana.principal_state == "escrowed"
            and lands <= spec.alice_redeem_deadline
        ):
            txs.append(
                self.tx(
                    spec.chain_b,
                    self.banana_escrow,
                    "redeem",
                    preimage=self.secret.preimage,
                )
            )
        return txs


class HedgedSwapBob(Actor):
    """Compliant Bob for the hedged swap (reactive)."""

    def __init__(self, name, keypair, spec, addrs):
        super().__init__(name, keypair)
        self.spec = spec
        self.apricot_escrow, self.banana_escrow = addrs

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        lands = view.height + 1
        apricot = view.chain(spec.chain_a).contract(self.apricot_escrow)
        banana = view.chain(spec.chain_b).contract(self.banana_escrow)

        # Step 2: deposit premium p_b once Alice's premium is visible.
        if (
            banana.premium_state == "held"
            and apricot.premium_state == "absent"
            and lands <= spec.bob_premium_deadline
        ):
            txs.append(self.tx(spec.chain_a, self.apricot_escrow, "deposit_premium"))

        # Step 4: escrow principal once Alice's principal is visible.
        if (
            apricot.principal_state == "escrowed"
            and banana.principal_state == "absent"
            and lands <= spec.bob_escrow_deadline
        ):
            txs.append(self.tx(spec.chain_b, self.banana_escrow, "escrow_principal"))

        # Step 6: redeem Alice's principal with the revealed secret.
        if (
            banana.revealed_preimage is not None
            and apricot.principal_state == "escrowed"
            and lands <= spec.bob_redeem_deadline
        ):
            txs.append(
                self.tx(
                    spec.chain_a,
                    self.apricot_escrow,
                    "redeem",
                    preimage=banana.revealed_preimage,
                )
            )
        return txs


class HedgedTwoPartySwap:
    """Builder for the hedged §5.2 swap (Figure 1)."""

    def __init__(
        self,
        spec: HedgedTwoPartySpec | None = None,
        secret: Secret | None = None,
    ) -> None:
        self.spec = spec or HedgedTwoPartySpec()
        self.secret = secret or Secret.generate("alice-hedged-secret")

    def build(self) -> ProtocolInstance:
        spec = self.spec
        world = World([spec.chain_a, spec.chain_b])
        alice_keys = world.register_party(spec.alice)
        bob_keys = world.register_party(spec.bob)

        # Principals plus exactly the native currency each premium requires.
        world.fund(spec.chain_a, spec.alice, spec.token_a, spec.amount_a)
        world.fund(spec.chain_b, spec.bob, spec.token_b, spec.amount_b)
        world.fund(spec.chain_b, spec.alice, "native", spec.alice_premium)
        world.fund(spec.chain_a, spec.bob, "native", spec.bob_premium)

        hashlock = self.secret.hashlock
        apricot = world.chain(spec.chain_a)
        banana = world.chain(spec.chain_b)

        # Apricot contract: Alice's principal + Bob's premium p_b.
        apricot_addr = apricot.deploy(
            HedgedEscrow(
                principal_asset=apricot.asset(spec.token_a),
                principal_amount=spec.amount_a,
                principal_owner=spec.alice,
                redeemer=spec.bob,
                hashlock=hashlock,
                premium_amount=spec.bob_premium,
                premium_deadline=spec.bob_premium_deadline,
                principal_deadline=spec.alice_escrow_deadline,
                redemption_timelock=spec.bob_redeem_deadline,
            )
        )
        # Banana contract: Bob's principal + Alice's premium p_a + p_b.
        banana_addr = banana.deploy(
            HedgedEscrow(
                principal_asset=banana.asset(spec.token_b),
                principal_amount=spec.amount_b,
                principal_owner=spec.bob,
                redeemer=spec.alice,
                hashlock=hashlock,
                premium_amount=spec.alice_premium,
                premium_deadline=spec.alice_premium_deadline,
                principal_deadline=spec.bob_escrow_deadline,
                redemption_timelock=spec.alice_redeem_deadline,
            )
        )

        addrs = (apricot_addr, banana_addr)
        actors = {
            spec.alice: HedgedSwapAlice(spec.alice, alice_keys, spec, self.secret, addrs),
            spec.bob: HedgedSwapBob(spec.bob, bob_keys, spec, addrs),
        }
        horizon = spec.bob_redeem_deadline + 2
        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=horizon,
            contracts={
                "apricot_escrow": (spec.chain_a, apricot_addr),
                "banana_escrow": (spec.chain_b, banana_addr),
            },
            meta={"spec": spec, "secret": self.secret},
        )
