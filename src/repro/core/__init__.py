"""The paper's contribution: hedged cross-chain protocols.

- :mod:`repro.core.hedged_two_party` — the hedged two-party swap (§5.2),
- :mod:`repro.core.bootstrap` — premium bootstrapping (§6),
- :mod:`repro.core.premiums` — Equations 1 and 2 (redemption and escrow
  premiums on swap digraphs) plus the footnote-7 pruned variants,
- :mod:`repro.core.hedged_multi_party` — the hedged multi-party swap (§7.1),
- :mod:`repro.core.hedged_broker` — hedged brokered commerce (§8.2),
- :mod:`repro.core.hedged_auction` — the hedged auction (§9),
- :mod:`repro.core.outcomes` — payoff extraction and the hedged-property
  predicates used by tests and the model checker.
"""

from repro.core.bootstrap import (
    BootstrapSpec,
    BootstrappedSwap,
    initial_risk,
    premium_ladder,
    rounds_estimate,
    rounds_needed,
)
from repro.core.hedged_auction import (
    AuctioneerStrategy,
    AuctionSpec,
    HedgedAuction,
    extract_auction_outcome,
)
from repro.core.hedged_broker import (
    BrokerOutcome,
    HedgedBrokerDeal,
    broker_premium_tables,
    extract_broker_outcome,
    multi_round_trading_premiums,
)
from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    MultiPartyOutcome,
    extract_multi_party_outcome,
)
from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
from repro.core.multi_round_deal import (
    DealSpec,
    MultiRoundDeal,
    deal_premium_tables,
    extract_deal_outcome,
)
from repro.core.outcomes import TwoPartyOutcome, extract_two_party_outcome
from repro.core.premiums import (
    escrow_premium_amounts,
    leader_redemption_total,
    redemption_premium_amount,
    redemption_premium_flow,
    redemption_premium_table,
)

__all__ = [
    "BootstrapSpec",
    "BootstrappedSwap",
    "initial_risk",
    "premium_ladder",
    "rounds_estimate",
    "rounds_needed",
    "AuctioneerStrategy",
    "AuctionSpec",
    "HedgedAuction",
    "extract_auction_outcome",
    "BrokerOutcome",
    "HedgedBrokerDeal",
    "broker_premium_tables",
    "extract_broker_outcome",
    "multi_round_trading_premiums",
    "HedgedMultiPartySwap",
    "MultiPartyOutcome",
    "extract_multi_party_outcome",
    "HedgedTwoPartySpec",
    "HedgedTwoPartySwap",
    "DealSpec",
    "MultiRoundDeal",
    "deal_premium_tables",
    "extract_deal_outcome",
    "TwoPartyOutcome",
    "extract_two_party_outcome",
    "escrow_premium_amounts",
    "leader_redemption_total",
    "redemption_premium_amount",
    "redemption_premium_flow",
    "redemption_premium_table",
]
