"""Multi-round brokered deals — the §8.2 trading-rounds extension, runnable.

A *resale chain*: the seller's tickets pass through ``r`` brokers before
reaching the buyer, while the buyer's coins flow back through the same
brokers (each keeping a margin) to the seller.  With ``r = 1`` this is
exactly the Figure-4 deal; larger ``r`` exercises the paper's premium
recurrence ``E(v,w) = T_1(w)``, ``T_k(v,w) = T_{k+1}(w)``,
``T_r(v,w) = R_w(w)`` end to end.

Deal digraph (r = 2, brokers A then M)::

    tickets:  Seller -> A -> M -> Buyer
    coins:    Buyer -> M -> A -> Seller

Trading rounds are numbered **per broker**: in round ``k`` broker ``k``
performs *both* of its transfers — the ticket hop toward the buyer and the
coin hop toward the seller — exactly as Figure 4's Alice performs A1 and A2
in the single trading phase.  This numbering is what makes the premium
passthrough close: each party's deposits are covered by a premium whose
beneficiary it is, with purely local (single-chain) award conditions.  The
amounts generalize the paper's recurrence via ``cover(w, k)`` — the total
of ``w``'s obligations after round ``k``: its next round's trading premiums
if it trades again, else its redemption total ``R_w(w)``; then
``T_k(v, w) = cover(w, k)`` and ``E(v, w) = cover(w, 0)``.  For ``r = 1``
this is literally the paper's ``E = T_1(w)``, ``T_1(v,w) = R_w(w)``.

Every party is a leader; redemption premiums flow backward with footnote-7
pruning; each contract redeems only when escrowed, traded in *every* round,
and holding all hashkeys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Transaction
from repro.contracts.deal import DealDeadlines, PipelineDealContract, TradeStep
from repro.core.premiums import (
    pruned_redemption_premium_amount,
    required_redemption_keys,
)
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import HashKey, SignedPath
from repro.errors import ProtocolError
from repro.graph.digraph import Arc, ArcSpec, SwapGraph
from repro.parties.base import Actor
from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult
from repro.sim.world import World, WorldView


@dataclass(frozen=True)
class DealSpec:
    """Parameters of an r-round resale chain."""

    seller: str = "Seller"
    buyer: str = "Buyer"
    brokers: tuple[str, ...] = ("Ann", "Mike")
    ticket_chain: str = "ticket-chain"
    coin_chain: str = "coin-chain"
    ticket_token: str = "ticket"
    coin_token: str = "coin"
    tickets: int = 1
    seller_price: int = 100
    margin: int = 1  # per broker

    @property
    def rounds(self) -> int:
        return len(self.brokers)

    @property
    def buyer_price(self) -> int:
        return self.seller_price + self.margin * self.rounds

    def parties(self) -> tuple[str, ...]:
        return (self.seller, self.buyer) + self.brokers

    def ticket_path(self) -> tuple[str, ...]:
        return (self.seller,) + self.brokers + (self.buyer,)

    def coin_path(self) -> tuple[str, ...]:
        return (self.buyer,) + tuple(reversed(self.brokers)) + (self.seller,)

    def graph(self) -> SwapGraph:
        tickets = self.ticket_path()
        coins = self.coin_path()
        arcs: list[Arc] = []
        specs: dict[Arc, ArcSpec] = {}
        for u, v in zip(tickets, tickets[1:]):
            arcs.append((u, v))
            specs[(u, v)] = ArcSpec(self.ticket_chain, self.ticket_token, self.tickets)
        for u, v in zip(coins, coins[1:]):
            arcs.append((u, v))
            specs[(u, v)] = ArcSpec(self.coin_chain, self.coin_token, self.buyer_price)
        return SwapGraph(self.parties(), tuple(arcs), specs)

    def contract_of(self) -> dict[Arc, str]:
        tickets = self.ticket_path()
        coins = self.coin_path()
        out: dict[Arc, str] = {}
        for u, v in zip(tickets, tickets[1:]):
            out[(u, v)] = "ticket"
        for u, v in zip(coins, coins[1:]):
            out[(u, v)] = "coin"
        return out

    def broker_arcs(self, j: int) -> tuple[Arc, Arc]:
        """Broker j's round-(j+1) transfers: (ticket hop, coin hop)."""
        tickets = self.ticket_path()
        coins = list(reversed(self.coin_path()))  # Seller ... Buyer order
        broker = self.brokers[j]
        ticket_next = tickets[j + 2]  # next broker or the buyer
        coin_prev = coins[j]  # previous broker or the seller
        return (broker, ticket_next), (broker, coin_prev)


def deal_premium_tables(spec: DealSpec, premium: int) -> dict[str, object]:
    """All premium amounts for the chain deal (footnote-7 pruned).

    ``cover(w, k)`` totals the beneficiary's obligations after round ``k``:
    the next round's trading premiums if ``w`` is a broker that still
    trades, else ``R_w(w)``.  Computed backward from the last broker.
    """
    graph = spec.graph()
    contract_of = spec.contract_of()

    def origination_total(leader: str) -> int:
        total = 0
        seen: set[str] = set()
        for arc in sorted(graph.in_arcs(leader)):
            host = contract_of[arc]
            if host in seen:
                continue
            seen.add(host)
            total += pruned_redemption_premium_amount(
                graph, (leader,), arc[0], premium, contract_of
            )
        return total

    originations = {p: origination_total(p) for p in spec.parties()}

    # Per-broker trading premiums, computed backward (last broker first).
    trading: dict[Arc, int] = {}
    broker_total: dict[str, int] = {}
    for j in range(spec.rounds - 1, -1, -1):
        ticket_arc, coin_arc = spec.broker_arcs(j)
        ticket_recipient, coin_recipient = ticket_arc[1], coin_arc[1]
        ticket_amount = (
            broker_total[ticket_recipient]
            if ticket_recipient in spec.brokers
            else originations[ticket_recipient]
        )
        coin_amount = originations[coin_recipient]  # earlier tier: only R left
        trading[ticket_arc] = ticket_amount
        trading[coin_arc] = coin_amount
        broker_total[spec.brokers[j]] = ticket_amount + coin_amount

    # Escrow premiums cover each broker's worst-case *deficit* over the
    # scenarios in which that escrow premium fires: the hosting contract is
    # activated with no escrow, so all its trading premiums are awarded,
    # while the other contract's premiums may fire too (it activated and
    # died) or all refund (it never activated).  The premium is awarded in
    # exactly these per-broker shares, so a compliant broker blocked by an
    # escrow failure breaks even in every combination.
    def deficits(firing_hosts: frozenset[str]) -> dict[str, int]:
        paid: dict[str, int] = {b: 0 for b in spec.brokers}
        received: dict[str, int] = {b: 0 for b in spec.brokers}
        for (v, w), amount in trading.items():
            if contract_of[(v, w)] not in firing_hosts:
                continue
            if v in paid:
                paid[v] += amount
            if w in received:
                received[w] += amount
        return {b: max(0, paid[b] - received[b]) for b in spec.brokers}

    def shares_for(host: str) -> tuple[tuple[str, int], ...]:
        alone = deficits(frozenset({host}))
        both = deficits(frozenset({"ticket", "coin"}))
        return tuple(
            (b, max(alone[b], both[b]))
            for b in spec.brokers
            if max(alone[b], both[b]) > 0
        )

    escrow_shares = {
        (spec.seller, spec.brokers[0]): shares_for("ticket"),
        (spec.buyer, spec.brokers[-1]): shares_for("coin"),
    }
    escrow = {arc: sum(a for _, a in s) for arc, s in escrow_shares.items()}
    return {
        "originations": originations,
        "trading": trading,
        "escrow": escrow,
        "escrow_shares": escrow_shares,
        "broker_total": broker_total,
        "required_keys": required_redemption_keys(graph, spec.parties(), contract_of),
        "contract_of": contract_of,
    }


class DealActorBase(Actor):
    """Premium flow + hashkey forwarding shared by all deal parties."""

    def __init__(self, name, keypair, spec, secret, addrs, deadlines):
        super().__init__(name, keypair)
        self.spec = spec
        self.secret = secret
        self.ticket_addr, self.coin_addr = addrs
        self.deadlines = deadlines
        self.graph = spec.graph()
        self.host_of = spec.contract_of()
        self.rpremium_done: set[str] = set()
        self.released_own = False
        self.forwarded: set[tuple[str, str]] = set()

    # -- addressing -------------------------------------------------------
    def contracts(self, view: WorldView):
        ticket = view.chain(self.spec.ticket_chain).contract(self.ticket_addr)
        coin = view.chain(self.spec.coin_chain).contract(self.coin_addr)
        return ticket, coin

    def _addr_for_host(self, host: str) -> tuple[str, str]:
        if host == "ticket":
            return (self.spec.ticket_chain, self.ticket_addr)
        return (self.spec.coin_chain, self.coin_addr)

    def _contract_for_arc(self, view: WorldView, arc: Arc):
        chain_name, address = self._addr_for_host(self.host_of[arc])
        return view.chain(chain_name).contract(address)

    # -- premium structure observation --------------------------------------
    def _pre_premiums_present(self, view: WorldView) -> bool:
        ticket, coin = self.contracts(view)
        for contract in (ticket, coin):
            if contract.escrow_premium_state == "absent":
                return False
            if any(state == "absent" for state in contract.trading_premium_state.values()):
                return False
        return True

    # -- redemption premium flow --------------------------------------------
    def _originate_rpremiums(self, view: WorldView) -> list[Transaction]:
        self.rpremium_done.add(self.name)
        payload = f"rpremium:{self.secret.hashlock.digest}"
        chain = SignedPath.create(payload, self.keypair, self.name)
        txs = []
        seen_hosts: set[str] = set()
        for arc in sorted(self.graph.in_arcs(self.name)):
            host = self.host_of[arc]
            if host in seen_hosts:
                continue
            seen_hosts.add(host)
            chain_name, address = self._addr_for_host(host)
            txs.append(
                self.tx(chain_name, address, "deposit_redemption_premium",
                        arc=arc, path_chain=chain)
            )
        return txs

    def _forward_rpremiums(self, view: WorldView) -> list[Transaction]:
        txs: list[Transaction] = []
        for leader in sorted(self.graph.parties):
            if leader in self.rpremium_done:
                continue
            for out_arc in sorted(self.graph.out_arcs(self.name)):
                contract = self._contract_for_arc(view, out_arc)
                deposit = contract.rdeposits.get((out_arc, leader))
                if deposit is None:
                    continue
                self.rpremium_done.add(leader)
                seen = deposit.chain
                if self.name in seen.vertices:
                    break
                extended = seen.extend(self.keypair, self.name)
                observe_host = self.host_of[out_arc]
                for in_arc in sorted(self.graph.in_arcs(self.name)):
                    if self.host_of[in_arc] == observe_host:
                        continue  # footnote-7 pruning
                    in_contract = self._contract_for_arc(view, in_arc)
                    if (in_arc, leader) in in_contract.rdeposits:
                        continue
                    chain_name, address = self._addr_for_host(self.host_of[in_arc])
                    txs.append(
                        self.tx(chain_name, address, "deposit_redemption_premium",
                                arc=in_arc, path_chain=extended)
                    )
                break
        return txs

    # -- hashkeys ------------------------------------------------------------
    def _release_own(self, view: WorldView) -> list[Transaction]:
        """Present my own key on BOTH contracts directly.

        Direct dual presentation (|q| = 1) keeps the contracts' key sets
        symmetric: either every released key reaches both contracts or a
        withheld key blocks both, so the deal completes or dies atomically
        with no reliance on any single forwarder.
        """
        self.released_own = True
        own = HashKey.originate(self.secret, self.keypair, self.name)
        txs = []
        for host in ("ticket", "coin"):
            chain_name, address = self._addr_for_host(host)
            contract = view.chain(chain_name).contract(address)
            if self.name not in contract.accepted:
                txs.append(self.tx(chain_name, address, "present_hashkey", hashkey=own))
        return txs

    def _forward_keys(self, view: WorldView) -> list[Transaction]:
        ticket, coin = self.contracts(view)
        spec = self.spec
        sides = [
            (ticket, coin, spec.coin_chain, self.coin_addr),
            (coin, ticket, spec.ticket_chain, self.ticket_addr),
        ]
        txs = []
        for source, target, target_chain, target_addr in sides:
            for leader, hashkey in sorted(source.accepted.items()):
                if leader in target.accepted:
                    continue
                if (leader, target_chain) in self.forwarded:
                    continue
                if self.name in hashkey.path:
                    continue
                extended_path = (self.name,) + hashkey.path
                if not self.graph.is_path(extended_path):
                    continue
                self.forwarded.add((leader, target_chain))
                txs.append(
                    self.tx(target_chain, target_addr, "present_hashkey",
                            hashkey=hashkey.extend(self.keypair, self.name))
                )
        return txs

    # -- common phase driver ---------------------------------------------------
    def _premium_phase(self, rnd: int, view: WorldView) -> list[Transaction]:
        d, txs = self.deadlines, []
        if d.redemption_premium_base <= rnd < d.activation:
            if self.name not in self.rpremium_done:
                if self._pre_premiums_present(view):
                    txs.extend(self._originate_rpremiums(view))
                else:
                    self.rpremium_done.add(self.name)
            txs.extend(self._forward_rpremiums(view))
        return txs


class DealEscrower(DealActorBase):
    """Seller or buyer: escrow premium, asset, guarded key release."""

    def __init__(self, name, keypair, spec, secret, addrs, deadlines, side):
        super().__init__(name, keypair, spec, secret, addrs, deadlines)
        self.side = side  # "ticket" | "coin"

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        d, txs = self.deadlines, []
        ticket, coin = self.contracts(view)
        mine = ticket if self.side == "ticket" else coin
        chain_name, address = self._addr_for_host(self.side)

        if rnd == 0 and mine.escrow_premium_state == "absent":
            txs.append(self.tx(chain_name, address, "deposit_escrow_premium"))

        txs.extend(self._premium_phase(rnd, view))

        if (
            d.escrow - 1 <= rnd < d.trade_base + 1
            and mine.escrow_state == "absent"
            and mine.contract_activated
        ):
            txs.append(self.tx(chain_name, address, "escrow_asset"))

        if rnd >= d.hashkey_base:
            both_done = ticket.fully_traded and coin.fully_traded
            # Withhold only when MY contract could actually redeem (fully
            # traded) while the other cannot — otherwise releasing is free
            # and recovers the redemption premium deposits (Lemma 4 style).
            safe = both_done or not mine.fully_traded
            if safe and not self.released_own:
                txs.extend(self._release_own(view))
            txs.extend(self._forward_keys(view))
        return txs


class DealBroker(DealActorBase):
    """A middleman: trading premiums, per-round trades, free release."""

    def __init__(self, name, keypair, spec, secret, addrs, deadlines, duties):
        super().__init__(name, keypair, spec, secret, addrs, deadlines)
        # duties: list of (host, round) pairs this broker trades
        self.duties = tuple(sorted(duties, key=lambda d: d[1]))
        self.t_posted: set[tuple[str, int]] = set()

    def _earlier_premiums_present(self, view: WorldView, round_k: int) -> bool:
        ticket, coin = self.contracts(view)
        for contract in (ticket, coin):
            if contract.escrow_premium_state == "absent":
                return False
            for step in contract.steps:
                if step.round < round_k and contract.trading_premium_state[step.round] == "absent":
                    return False
        return True

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        d, txs = self.deadlines, []
        ticket, coin = self.contracts(view)

        # Trading premium deposits: T_k lands by 1 + k (post in round k).
        for host, round_k in self.duties:
            if (host, round_k) in self.t_posted:
                continue
            if rnd == round_k and self._earlier_premiums_present(view, round_k):
                chain_name, address = self._addr_for_host(host)
                self.t_posted.add((host, round_k))
                txs.append(
                    self.tx(chain_name, address, "deposit_trading_premium", round=round_k)
                )

        txs.extend(self._premium_phase(rnd, view))

        # Trades: round k lands by trade_base + k; act one round earlier.
        both_escrowed = (
            ticket.escrow_state == "escrowed" and coin.escrow_state == "escrowed"
        )
        if both_escrowed:
            for host, round_k in self.duties:
                if rnd == d.trade_base + round_k - 1:
                    contract = ticket if host == "ticket" else coin
                    prior_ok = all(
                        c.traded.get(k, True)
                        for c in (ticket, coin)
                        for k in c.traded
                        if k < round_k
                    )
                    if (
                        prior_ok
                        and not contract.traded[round_k]
                        and contract.contract_activated
                        and ticket.contract_activated
                        and coin.contract_activated
                    ):
                        chain_name, address = self._addr_for_host(host)
                        txs.append(self.tx(chain_name, address, "trade", round=round_k))

        if rnd >= d.hashkey_base:
            if not self.released_own:
                txs.extend(self._release_own(view))
            txs.extend(self._forward_keys(view))
        return txs


@dataclass
class DealOutcome:
    """Condensed result of a multi-round deal run."""

    premium: int
    premium_net: dict[str, int]
    tickets_delta: dict[str, int]
    coins_delta: dict[str, int]
    ticket_state: str
    coin_state: str
    rounds_traded: tuple[int, int]

    @property
    def completed(self) -> bool:
        return self.ticket_state == "redeemed" and self.coin_state == "redeemed"


def extract_deal_outcome(instance: ProtocolInstance, result: RunResult) -> DealOutcome:
    spec: DealSpec = instance.meta["spec"]
    payoffs = result.payoffs
    assert payoffs is not None
    ticket = instance.contract("ticket")
    coin = instance.contract("coin")
    ticket_asset = instance.world.chain(spec.ticket_chain).asset(spec.ticket_token)
    coin_asset = instance.world.chain(spec.coin_chain).asset(spec.coin_token)
    parties = spec.parties()
    return DealOutcome(
        premium=int(instance.meta.get("premium", 0)),
        premium_net={p: payoffs.premium_net(p) for p in parties},
        tickets_delta={p: payoffs.delta(p).get(ticket_asset, 0) for p in parties},
        coins_delta={p: payoffs.delta(p).get(coin_asset, 0) for p in parties},
        ticket_state=ticket.escrow_state,
        coin_state=coin.escrow_state,
        rounds_traded=(
            sum(1 for t in ticket.traded.values() if t),
            sum(1 for t in coin.traded.values() if t),
        ),
    )


class MultiRoundDeal:
    """Builder for the r-round resale chain."""

    def __init__(self, spec: DealSpec | None = None, premium: int = 1,
                 secrets: dict[str, Secret] | None = None) -> None:
        self.spec = spec or DealSpec()
        if self.spec.rounds < 1:
            raise ProtocolError("a deal needs at least one broker")
        self.premium = premium
        self.secrets = secrets or {
            p: Secret.generate(f"{p}-secret") for p in self.spec.parties()
        }

    def build(self) -> ProtocolInstance:
        spec, p = self.spec, self.premium
        graph = spec.graph()
        tables = deal_premium_tables(spec, p)
        trading = tables["trading"]
        escrow_shares = tables["escrow_shares"]
        required = tables["required_keys"]
        contract_of = tables["contract_of"]
        deadlines = DealDeadlines.for_rounds(spec.rounds, len(spec.parties()))

        world = World([spec.ticket_chain, spec.coin_chain])
        keys = {name: world.register_party(name) for name in spec.parties()}
        world.fund(spec.ticket_chain, spec.seller, spec.ticket_token, spec.tickets)
        world.fund(spec.coin_chain, spec.buyer, spec.coin_token, spec.buyer_price)
        bound = 16 * p * len(spec.parties()) ** 3
        for chain_name in (spec.ticket_chain, spec.coin_chain):
            for name in spec.parties():
                world.fund(chain_name, name, "native", bound)

        hashlocks = {name: self.secrets[name].hashlock for name in spec.parties()}
        tickets_path = spec.ticket_path()
        coins_path = spec.coin_path()

        def steps_for(side: int) -> tuple[TradeStep, ...]:
            """side 0 = ticket hops, side 1 = coin hops; round = broker+1."""
            steps = []
            for j in range(spec.rounds):
                arc = spec.broker_arcs(j)[side]
                steps.append(
                    TradeStep(
                        round=j + 1,
                        trader=arc[0],
                        recipient=arc[1],
                        arc=arc,
                        premium_amount=trading[arc],
                        deadline=deadlines.trade_base + j + 1,
                    )
                )
            return tuple(steps)

        ticket_host = world.chain(spec.ticket_chain)
        coin_host = world.chain(spec.coin_chain)
        ticket_escrow_arc = (tickets_path[0], tickets_path[1])
        coin_escrow_arc = (coins_path[0], coins_path[1])

        ticket_addr = ticket_host.deploy(
            PipelineDealContract(
                graph=graph,
                public_of=world.public_of,
                hashlocks=hashlocks,
                escrow_arc=ticket_escrow_arc,
                steps=steps_for(0),
                asset=ticket_host.asset(spec.ticket_token),
                amount=spec.tickets,
                payouts=((spec.buyer, spec.tickets),),
                deadlines=deadlines,
                premium=p,
                escrow_premium_shares=escrow_shares[ticket_escrow_arc],
                required_keys=required,
                contract_of=contract_of,
            )
        )
        coin_payouts = tuple(
            [(spec.seller, spec.seller_price)]
            + [(broker, spec.margin) for broker in spec.brokers]
        )
        coin_addr = coin_host.deploy(
            PipelineDealContract(
                graph=graph,
                public_of=world.public_of,
                hashlocks=hashlocks,
                escrow_arc=coin_escrow_arc,
                steps=steps_for(1),
                asset=coin_host.asset(spec.coin_token),
                amount=spec.buyer_price,
                payouts=coin_payouts,
                deadlines=deadlines,
                premium=p,
                escrow_premium_shares=escrow_shares[coin_escrow_arc],
                required_keys=required,
                contract_of=contract_of,
            )
        )

        addrs = (ticket_addr, coin_addr)
        actors: dict[str, Actor] = {
            spec.seller: DealEscrower(
                spec.seller, keys[spec.seller], spec, self.secrets[spec.seller],
                addrs, deadlines, "ticket",
            ),
            spec.buyer: DealEscrower(
                spec.buyer, keys[spec.buyer], spec, self.secrets[spec.buyer],
                addrs, deadlines, "coin",
            ),
        }
        for j, broker in enumerate(spec.brokers):
            duties = [("ticket", j + 1), ("coin", j + 1)]
            actors[broker] = DealBroker(
                broker, keys[broker], spec, self.secrets[broker],
                addrs, deadlines, duties,
            )

        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=deadlines.horizon,
            contracts={
                "ticket": (spec.ticket_chain, ticket_addr),
                "coin": (spec.coin_chain, coin_addr),
            },
            meta={
                "spec": spec,
                "deadlines": deadlines,
                "premium": p,
                "tables": tables,
            },
        )
