"""Premium formulas — Equations 1 and 2 of §7.1.

**Redemption premiums** flow backward from each leader.  A deposit by ``v``
on incoming arc ``(u, v)`` carries a path ``q`` from ``v`` to the leader
``L_i`` and must be large enough that if hashkey ``k_i`` never reaches
``v``, the premium ``v`` collects covers both a compensation ``p`` for
``u``'s locked asset and every passthrough deposit ``u`` itself made.  The
paper's Equation 1::

    R_i(q, v) = p                                  if v ‖ q is a cycle
    R_i(q, v) = p + Σ_{(u,v) ∈ G} R_i(v ‖ q, u)    otherwise

In our notation :func:`redemption_premium_amount` computes the amount of
the deposit with (redeemer-first) path ``q`` whose beneficiary is ``u``:
the beneficiary passes nothing through when it already lies on the path
(in particular when it *is* the leader — the paper's "v ‖ q is a cycle"
case), so the amount is ``p``; otherwise it is ``p`` plus the deposits the
beneficiary will make on its own incoming arcs with the extended path.

**Escrow premiums** flow forward (Equation 2)::

    E(u, v) = R(L_i)            if v is leader L_i
    E(u, v) = Σ_{(v,w) ∈ G} E(v, w)   otherwise

well-defined because leaders form a feedback vertex set.

Everything is exact integer arithmetic: with integer ``p`` both equations
stay integral.

**Complexity.**  Equation 1's recursion branches over every simple
extension of the path, which is exponential in the vertex count if
evaluated naively — dense graphs beyond ``complete:5`` were infeasible.
But the recursion only ever tests *membership* in the path, never order,
so its true state space is (vertex subset, beneficiary): at most
``n·2^n`` states per ``(graph, p)``.  :func:`redemption_premium_amount`
memoizes on that key, shared across calls through a cache slotted on the
graph instance itself, which is what makes ``complete:6+`` premium
sizing (and the per-deposit re-validation inside
:class:`repro.contracts.swap_arc.HedgedSwapArc`) feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import GraphError
from repro.graph.digraph import Arc, SwapGraph
from repro.graph.feedback import is_feedback_vertex_set


def _amount_memo(graph: SwapGraph) -> dict:
    """The graph's shared Equation-1 memo, keyed ``(members, u, p)``.

    ``SwapGraph`` is a frozen dataclass, but — like ``cached_property``,
    which the graph already uses — we can slot the cache straight into the
    instance ``__dict__``; it dies with the graph, so distinct graphs can
    never share entries.
    """
    memo = graph.__dict__.get("_equation1_memo")
    if memo is None:
        memo = {}
        graph.__dict__["_equation1_memo"] = memo
    return memo


def redemption_premium_amount(
    graph: SwapGraph, path: tuple[str, ...], beneficiary: str, p: int
) -> int:
    """Equation 1: the amount of a redemption premium deposit.

    ``path`` is redeemer-first: ``path[0]`` is the depositor ``v`` (the
    redeemer on arc ``(beneficiary, v)``), ``path[-1]`` the leader.  The
    result is ``p`` when the beneficiary already lies on the path (no
    passthrough needed — the leader case is the paper's "cycle" clause),
    otherwise ``p`` plus the beneficiary's own extended deposits on every
    arc entering it.

    The recursion depends on the path only through its *member set* (the
    base case is a membership test and extensions only add members), so
    results are memoized per graph on ``(frozenset(path), beneficiary,
    p)`` — see the module docstring.
    """
    if not path:
        raise GraphError("empty premium path")
    if not graph.is_path(path):
        raise GraphError(f"{path} is not a simple forward path")
    return _memoized_amount(graph, frozenset(path), beneficiary, p)


def _memoized_amount(
    graph: SwapGraph, members: frozenset[str], beneficiary: str, p: int
) -> int:
    """Equation 1 on a path *member set*, through the graph's shared memo."""
    memo = _amount_memo(graph)

    def amount(members: frozenset[str], u: str) -> int:
        if u in members:
            return p
        key = (members, u, p)
        cached = memo.get(key)
        if cached is None:
            extended = members | {u}
            cached = p + sum(amount(extended, x) for x in graph.in_neighbors(u))
            memo[key] = cached
        return cached

    return amount(members, beneficiary)


def path_member_sets(
    graph: SwapGraph, source: str, target: str
) -> tuple[frozenset[str], ...]:
    """The vertex sets of all simple forward paths ``source`` → ``target``.

    Enumerated by a ``(member set, tip)`` state search — at most ``n·2^n``
    states — rather than by walking the paths themselves, of which a dense
    graph has factorially many (``complete:8`` holds 1957 simple paths per
    ordered pair, but only their distinct member sets matter to Equation
    1).  Results are cached on the graph instance per ``(source, target)``,
    deterministically ordered.
    """
    cache = graph.__dict__.setdefault("_path_member_sets_memo", {})
    key = (source, target)
    cached = cache.get(key)
    if cached is not None:
        return cached
    results: set[frozenset[str]] = set()
    start = (frozenset((source,)), source)
    seen = {start}
    stack = [start]
    while stack:
        members, tip = stack.pop()
        if tip == target:
            results.add(members)
            continue
        for w in graph.out_neighbors(tip):
            if w in members:
                continue
            state = (members | {w}, w)
            if state not in seen:
                seen.add(state)
                stack.append(state)
    ordered = tuple(
        sorted(results, key=lambda s: (len(s), tuple(sorted(s))))
    )
    cache[key] = ordered
    return ordered


def worst_case_redemption_amount(
    graph: SwapGraph, redeemer: str, beneficiary: str, leader: str, p: int
) -> int:
    """The largest Equation-1 deposit ``redeemer`` may owe ``beneficiary``.

    Maximizes :func:`redemption_premium_amount` over every simple path the
    redeemer could authenticate from itself to the leader — but since the
    amount depends on the path only through its member set, the maximum is
    taken over :func:`path_member_sets` instead of the (factorially more
    numerous) paths.  This is the quantity worst-case native funding needs
    per arc, and what made ``complete:7``/``complete:8`` builders feasible.
    Returns 0 when no path exists.
    """
    return max(
        (
            _memoized_amount(graph, members, beneficiary, p)
            for members in path_member_sets(graph, redeemer, leader)
        ),
        default=0,
    )


def leader_redemption_total(graph: SwapGraph, leader: str, p: int) -> int:
    """``R(L_i)``: the sum of the leader's own deposits on incoming arcs."""
    return sum(
        redemption_premium_amount(graph, (leader,), u, p)
        for u in graph.in_neighbors(leader)
    )


def escrow_premium_amounts(
    graph: SwapGraph, leaders: tuple[str, ...] | frozenset[str], p: int
) -> dict[Arc, int]:
    """Equation 2: the escrow premium ``E(u, v)`` for every arc.

    Each arc entering a leader carries that leader's redemption total; each
    arc entering a follower covers the sum of the follower's outgoing
    escrow premiums.
    """
    leader_set = frozenset(leaders)
    if not is_feedback_vertex_set(graph, leader_set):
        raise GraphError(f"{sorted(leader_set)} is not a feedback vertex set")

    @lru_cache(maxsize=None)
    def need(v: str) -> int:
        if v in leader_set:
            return leader_redemption_total(graph, v, p)
        return sum(need(w) for w in graph.out_neighbors(v))

    return {(u, v): need(v) for (u, v) in graph.arcs}


def redemption_premium_table(
    graph: SwapGraph, leader: str, p: int
) -> dict[Arc, dict[tuple[str, ...], int]]:
    """All possible (path → amount) deposits per arc for one leader.

    On arc ``(u, v)`` the depositor ``v`` may use any simple forward path
    from ``v`` to the leader that the beneficiary can verify; which one is
    used at runtime depends on where ``v`` first saw a premium.  This table
    (used by benchmarks and the Figure 3 reproduction) enumerates them all.
    """
    table: dict[Arc, dict[tuple[str, ...], int]] = {}
    for arc in graph.arcs:
        u, v = arc
        table[arc] = {
            q: redemption_premium_amount(graph, q, u, p)
            for q in graph.simple_paths(v, leader)
        }
    return table


def worst_case_leader_premium(graph: SwapGraph, leaders: tuple[str, ...], p: int) -> int:
    """The largest premium any single leader must front (for EXP-T3)."""
    return max(leader_redemption_total(graph, leader, p) for leader in leaders)


# ----------------------------------------------------------------------
# contract-aware (pruned) variant — footnote 7 of §8.2
# ----------------------------------------------------------------------
#
# When several arcs share one escrow contract (the broker's coin contract
# hosts both (C,A) and (A,B)), a hashkey presented for one arc is already on
# the contract for the other, so the forwarding step — and therefore the
# matching redemption premium — is unnecessary.  ``contract_of`` maps each
# arc to its hosting contract; passing ``None`` reduces every function below
# to the plain Equation 1/flow (each arc its own contract).


def pruned_redemption_premium_amount(
    graph: SwapGraph,
    path: tuple[str, ...],
    beneficiary: str,
    p: int,
    contract_of: dict[Arc, str] | None = None,
) -> int:
    """Equation 1 with footnote-7 pruning of same-contract forwarding.

    The beneficiary ``u`` of a deposit with path ``q`` (made on arc
    ``(u, q[0])``) only needs passthrough cover for incoming arcs hosted on
    a *different* contract than the arc it observes ``k_i`` on.
    """
    if contract_of is None:
        return redemption_premium_amount(graph, path, beneficiary, p)
    if not path:
        raise GraphError("empty premium path")
    if not graph.is_path(path):
        raise GraphError(f"{path} is not a simple forward path")

    @lru_cache(maxsize=None)
    def amount(q: tuple[str, ...], u: str) -> int:
        if u in q:
            return p
        observe_contract = contract_of[(u, q[0])]
        extended = (u,) + q
        total = p
        for x in graph.in_neighbors(u):
            if contract_of[(x, u)] == observe_contract:
                continue  # footnote 7: the key is already on that contract
            total += amount(extended, x)
        return total

    return amount(tuple(path), beneficiary)


@dataclass(frozen=True)
class PremiumDeposit:
    """One redemption-premium deposit in the compliant flow."""

    round: int
    arc: Arc
    leader: str
    path: tuple[str, ...]
    amount: int

    @property
    def depositor(self) -> str:
        return self.path[0]


def redemption_premium_flow(
    graph: SwapGraph,
    leaders: tuple[str, ...] | frozenset[str],
    p: int,
    contract_of: dict[Arc, str] | None = None,
) -> list[PremiumDeposit]:
    """Simulate the compliant phase-2 deposit flow.

    Round 0: each leader deposits on its incoming arcs (one per hosting
    contract when pruning).  Round t+1: a party that first saw a premium for
    ``k_i`` on one of its outgoing arcs at round t extends the path and
    deposits on its incoming arcs (skipping same-contract arcs when
    pruning).  Ties break lexicographically, matching the actors.
    """
    deposits: list[PremiumDeposit] = []
    for leader in sorted(leaders):
        per_arc: dict[Arc, PremiumDeposit] = {}
        done: set[str] = {leader}

        def place(rnd: int, arc: Arc, path: tuple[str, ...]) -> None:
            if arc in per_arc:
                return
            amount = pruned_redemption_premium_amount(graph, path, arc[0], p, contract_of)
            per_arc[arc] = PremiumDeposit(rnd, arc, leader, path, amount)

        origin_contracts: set[str] = set()
        for arc in sorted(graph.in_arcs(leader)):
            if contract_of is not None:
                host = contract_of[arc]
                if host in origin_contracts:
                    continue
                origin_contracts.add(host)
            place(0, arc, (leader,))

        for rnd in range(1, len(graph.parties) + 1):
            snapshot = dict(per_arc)
            for v in sorted(graph.parties):
                if v in done:
                    continue
                triggers = [
                    snapshot[arc]
                    for arc in sorted(graph.out_arcs(v))
                    if arc in snapshot and snapshot[arc].round < rnd
                ]
                if not triggers:
                    continue
                first = min(triggers, key=lambda d: (d.round, d.arc))
                done.add(v)
                if v in first.path:
                    continue
                extended = (v,) + first.path
                for arc in sorted(graph.in_arcs(v)):
                    if (
                        contract_of is not None
                        and contract_of[arc] == contract_of[first.arc]
                    ):
                        continue
                    place(rnd, arc, extended)
        deposits.extend(per_arc.values())
    return sorted(deposits, key=lambda d: (d.round, d.leader, d.arc))


def required_redemption_keys(
    graph: SwapGraph,
    leaders: tuple[str, ...] | frozenset[str],
    contract_of: dict[Arc, str] | None = None,
) -> dict[Arc, frozenset[str]]:
    """Which leaders' premiums each arc expects (its activation set)."""
    flow = redemption_premium_flow(graph, leaders, 1, contract_of)
    required: dict[Arc, set[str]] = {arc: set() for arc in graph.arcs}
    for deposit in flow:
        required[deposit.arc].add(deposit.leader)
    return {arc: frozenset(keys) for arc, keys in required.items()}
