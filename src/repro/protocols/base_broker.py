"""The base (unhedged) broker protocol — §8.1, Figure 4.

Alice brokers a deal: Bob sells tickets for 100 coins, Carol buys them for
101, Alice keeps the 1-coin markup.  Tickets and coins live on distinct
chains; Alice owns neither asset.  Steps:

- **escrow phase**: B1 — Bob escrows the tickets; C1 — Carol escrows 101
  coins,
- **trading phase**: A1/A2 — Alice commits both trades (tickets → Carol,
  100 coins → Bob + 1 → Alice),
- **redemption phase**: A3 — Alice releases her hashkey on both contracts;
  B2 — Bob releases his on the coin contract; C2 — Carol releases hers on
  the ticket contract; everyone forwards observed hashkeys to the contract
  missing them.  A contract pays out when escrowed, traded, and holding all
  three hashkeys in time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Transaction
from repro.contracts.broker import BaseBrokerContract, BrokerDeadlines
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import HashKey
from repro.graph.digraph import Arc, ArcSpec, SwapGraph
from repro.parties.base import Actor
from repro.protocols.instance import ProtocolInstance
from repro.sim.world import World, WorldView


@dataclass(frozen=True)
class BrokerSpec:
    """Parameters of the three-party deal (defaults are the paper's)."""

    broker: str = "Alice"
    seller: str = "Bob"
    buyer: str = "Carol"
    ticket_chain: str = "ticket-chain"
    coin_chain: str = "coin-chain"
    ticket_token: str = "ticket"
    coin_token: str = "coin"
    tickets: int = 1
    seller_price: int = 100  # coins Bob receives
    buyer_price: int = 101  # coins Carol escrows (markup goes to the broker)

    @property
    def markup(self) -> int:
        return self.buyer_price - self.seller_price

    def graph(self) -> SwapGraph:
        """The deal digraph: (B,A), (C,A) escrow arcs; (A,B), (A,C) trades."""
        a, b, c = self.broker, self.seller, self.buyer
        arcs = [(b, a), (c, a), (a, b), (a, c)]
        specs = {
            (b, a): ArcSpec(self.ticket_chain, self.ticket_token, self.tickets),
            (a, c): ArcSpec(self.ticket_chain, self.ticket_token, self.tickets),
            (c, a): ArcSpec(self.coin_chain, self.coin_token, self.buyer_price),
            (a, b): ArcSpec(self.coin_chain, self.coin_token, self.seller_price),
        }
        return SwapGraph((a, b, c), tuple(arcs), specs)

    def contract_of(self) -> dict[Arc, str]:
        """Which contract hosts each arc (footnote 7 sharing)."""
        a, b, c = self.broker, self.seller, self.buyer
        return {
            (b, a): "ticket",
            (a, c): "ticket",
            (c, a): "coin",
            (a, b): "coin",
        }


class BrokerActorBase(Actor):
    """Shared hashkey release/forwarding behaviour for broker parties."""

    def __init__(self, name, keypair, spec: BrokerSpec, secret: Secret, addrs):
        super().__init__(name, keypair)
        self.spec = spec
        self.secret = secret
        self.ticket_addr, self.coin_addr = addrs
        self.graph = spec.graph()
        self.released_own = False
        self.forwarded: set[tuple[str, str]] = set()  # (leader, target chain)

    def contracts(self, view: WorldView):
        ticket = view.chain(self.spec.ticket_chain).contract(self.ticket_addr)
        coin = view.chain(self.spec.coin_chain).contract(self.coin_addr)
        return ticket, coin

    def _present(self, chain_name: str, address: str, hashkey: HashKey) -> Transaction:
        return self.tx(chain_name, address, "present_hashkey", hashkey=hashkey)

    def _release_own(self, view: WorldView, targets: list[tuple[str, str]]) -> list[Transaction]:
        """Present my own hashkey on the given (chain, addr) contracts."""
        txs = []
        own = HashKey.originate(self.secret, self.keypair, self.name)
        for chain_name, address in targets:
            contract = view.chain(chain_name).contract(address)
            if self.name not in contract.accepted:
                txs.append(self._present(chain_name, address, own))
        self.released_own = True
        return txs

    def _forward_keys(self, view: WorldView) -> list[Transaction]:
        """Copy hashkeys present on one contract but missing on the other."""
        spec = self.spec
        ticket, coin = self.contracts(view)
        sides = [
            (ticket, coin, spec.coin_chain, self.coin_addr),
            (coin, ticket, spec.ticket_chain, self.ticket_addr),
        ]
        txs = []
        for source, target, target_chain, target_addr in sides:
            for leader, hashkey in sorted(source.accepted.items()):
                if leader in target.accepted:
                    continue
                if (leader, target_chain) in self.forwarded:
                    continue
                if self.name in hashkey.path:
                    continue
                extended_path = (self.name,) + hashkey.path
                if not self.graph.is_path(extended_path):
                    continue
                self.forwarded.add((leader, target_chain))
                txs.append(
                    self._present(target_chain, target_addr, hashkey.extend(self.keypair, self.name))
                )
        return txs


class BaseBrokerAlice(BrokerActorBase):
    """The broker: trade once both escrows are visible, then release."""

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        ticket, coin = self.contracts(view)
        both_escrowed = (
            ticket.escrow_state == "escrowed" and coin.escrow_state == "escrowed"
        )
        if both_escrowed and not ticket.traded:
            txs.append(self.tx(spec.ticket_chain, self.ticket_addr, "trade"))
        if both_escrowed and not coin.traded:
            txs.append(self.tx(spec.coin_chain, self.coin_addr, "trade"))
        if ticket.traded and coin.traded and not self.released_own:
            txs.extend(
                self._release_own(
                    view,
                    [(spec.ticket_chain, self.ticket_addr), (spec.coin_chain, self.coin_addr)],
                )
            )
        txs.extend(self._forward_keys(view))
        return txs


class BaseBrokerSeller(BrokerActorBase):
    """Bob: escrow tickets, release his key only when both trades landed."""

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        ticket, coin = self.contracts(view)
        if rnd == 0 and ticket.escrow_state == "absent":
            txs.append(self.tx(spec.ticket_chain, self.ticket_addr, "escrow_asset"))
        if ticket.traded and coin.traded and not self.released_own:
            txs.extend(self._release_own(view, [(spec.coin_chain, self.coin_addr)]))
        txs.extend(self._forward_keys(view))
        return txs


class BaseBrokerBuyer(BrokerActorBase):
    """Carol: escrow coins, release her key only when both trades landed."""

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        ticket, coin = self.contracts(view)
        if rnd == 0 and coin.escrow_state == "absent":
            txs.append(self.tx(spec.coin_chain, self.coin_addr, "escrow_asset"))
        if ticket.traded and coin.traded and not self.released_own:
            txs.extend(self._release_own(view, [(spec.ticket_chain, self.ticket_addr)]))
        txs.extend(self._forward_keys(view))
        return txs


class BaseBrokerDeal:
    """Builder for the base §8.1 broker protocol."""

    def __init__(self, spec: BrokerSpec | None = None, secrets: dict[str, Secret] | None = None):
        self.spec = spec or BrokerSpec()
        parties = (self.spec.broker, self.spec.seller, self.spec.buyer)
        self.secrets = secrets or {p: Secret.generate(f"{p}-secret") for p in parties}

    def build(self) -> ProtocolInstance:
        spec = self.spec
        graph = spec.graph()
        a, b, c = spec.broker, spec.seller, spec.buyer
        world = World([spec.ticket_chain, spec.coin_chain])
        keys = {p: world.register_party(p) for p in (a, b, c)}
        world.fund(spec.ticket_chain, b, spec.ticket_token, spec.tickets)
        world.fund(spec.coin_chain, c, spec.coin_token, spec.buyer_price)

        hashlocks = {p: self.secrets[p].hashlock for p in (a, b, c)}
        deadlines = BrokerDeadlines.base()
        ticket_host = world.chain(spec.ticket_chain)
        coin_host = world.chain(spec.coin_chain)

        ticket_addr = ticket_host.deploy(
            BaseBrokerContract(
                graph=graph,
                public_of=world.public_of,
                hashlocks=hashlocks,
                escrow_arc=(b, a),
                trading_arc=(a, c),
                asset=ticket_host.asset(spec.ticket_token),
                amount=spec.tickets,
                payouts=((c, spec.tickets),),
                deadlines=deadlines,
            )
        )
        coin_addr = coin_host.deploy(
            BaseBrokerContract(
                graph=graph,
                public_of=world.public_of,
                hashlocks=hashlocks,
                escrow_arc=(c, a),
                trading_arc=(a, b),
                asset=coin_host.asset(spec.coin_token),
                amount=spec.buyer_price,
                payouts=((b, spec.seller_price), (a, spec.markup)),
                deadlines=deadlines,
            )
        )

        addrs = (ticket_addr, coin_addr)
        actors = {
            a: BaseBrokerAlice(a, keys[a], spec, self.secrets[a], addrs),
            b: BaseBrokerSeller(b, keys[b], spec, self.secrets[b], addrs),
            c: BaseBrokerBuyer(c, keys[c], spec, self.secrets[c], addrs),
        }
        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=deadlines.horizon,
            contracts={
                "ticket": (spec.ticket_chain, ticket_addr),
                "coin": (spec.coin_chain, coin_addr),
            },
            meta={"spec": spec, "graph": graph, "deadlines": deadlines, "premium": 0},
        )
