"""The base multi-party swap (Herlihy PODC '18), summarized in §7.

Phase One: each leader escrows on every outgoing arc; each follower waits
until assets appear on all incoming arcs, then escrows on its outgoing
arcs.  Phase Two: each leader whose incoming arcs hold the expected assets
releases its hashkey on those arcs; every party that observes a new hashkey
on an outgoing arc extends the path and presents it on its incoming arcs
(Figure 3b).  An arc pays out to its redeemer once it holds a valid hashkey
from every leader.

Actors are reactive: they act as soon as the enabling condition is visible,
which reproduces the canonical schedule when everyone complies and degrades
safely under deviation (contract deadlines do the rest).
"""

from __future__ import annotations

from collections import defaultdict

from repro.chain.block import Transaction
from repro.contracts.swap_arc import BaseSwapArc
from repro.crypto.hashing import Secret
from repro.crypto.hashkeys import HashKey
from repro.errors import ProtocolError
from repro.graph.digraph import Arc, SwapGraph
from repro.graph.feedback import minimum_feedback_vertex_set
from repro.graph.schedule import MultiPartySchedule
from repro.parties.base import Actor
from repro.protocols.instance import ProtocolInstance
from repro.sim.world import World, WorldView

AddrMap = dict[Arc, tuple[str, str]]


class MultiPartyActorBase(Actor):
    """Shared observation helpers for base and hedged multi-party actors."""

    def __init__(
        self,
        name: str,
        keypair,
        graph: SwapGraph,
        schedule: MultiPartySchedule,
        addresses: AddrMap,
        secret: Secret | None,
    ) -> None:
        super().__init__(name, keypair)
        self.graph = graph
        self.schedule = schedule
        self.addresses = addresses
        self.secret = secret  # None for followers
        self.is_leader = secret is not None
        self.released: set[str] = set()
        self.escrowed_arcs: set[Arc] = set()
        self.escrow_done = False

    # -- observation -----------------------------------------------------
    def arc_contract(self, view: WorldView, arc: Arc):
        chain_name, address = self.addresses[arc]
        return view.chain(chain_name).contract(address)

    def my_in_arcs(self) -> tuple[Arc, ...]:
        return self.graph.in_arcs(self.name)

    def my_out_arcs(self) -> tuple[Arc, ...]:
        return self.graph.out_arcs(self.name)

    def all_incoming_escrowed(self, view: WorldView) -> bool:
        return all(
            self.arc_contract(view, arc).principal_state in ("escrowed", "redeemed")
            for arc in self.my_in_arcs()
        )

    # -- hashkey release / forwarding -------------------------------------
    def _originate_hashkey(self, view: WorldView) -> list[Transaction]:
        assert self.secret is not None
        hashkey = HashKey.originate(self.secret, self.keypair, self.name)
        self.released.add(self.name)
        return self._present_on_in_arcs(view, hashkey)

    def _forward_hashkeys(self, view: WorldView) -> list[Transaction]:
        """Extend any newly observed hashkey from outgoing arcs (Fig. 3b)."""
        txs: list[Transaction] = []
        for leader in sorted(self.schedule_leaders()):
            if leader in self.released:
                continue
            for arc in sorted(self.my_out_arcs()):
                accepted = self.arc_contract(view, arc).accepted
                if leader in accepted:
                    seen = accepted[leader]
                    if self.name in seen.chain.vertices:
                        self.released.add(leader)
                        break
                    extended = seen.extend(self.keypair, self.name)
                    self.released.add(leader)
                    txs.extend(self._present_on_in_arcs(view, extended, leader))
                    break
        return txs

    def _present_on_in_arcs(
        self, view: WorldView, hashkey: HashKey, leader: str | None = None
    ) -> list[Transaction]:
        leader = leader or hashkey.leader
        txs = []
        for arc in sorted(self.my_in_arcs()):
            contract = self.arc_contract(view, arc)
            if leader in contract.accepted:
                continue
            chain_name, address = self.addresses[arc]
            txs.append(self.tx(chain_name, address, "present_hashkey", hashkey=hashkey))
        return txs

    def schedule_leaders(self) -> tuple[str, ...]:
        return self.schedule.leaders


class BaseMultiPartyActor(MultiPartyActorBase):
    """Compliant actor for the unhedged Herlihy '18 protocol."""

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        txs: list[Transaction] = []

        # Phase One: escrow principals.
        if not self.escrow_done:
            ready = rnd == 0 if self.is_leader else self.all_incoming_escrowed(view)
            if ready:
                for arc in sorted(self.my_out_arcs()):
                    chain_name, address = self.addresses[arc]
                    txs.append(self.tx(chain_name, address, "escrow_principal"))
                    self.escrowed_arcs.add(arc)
                self.escrow_done = True

        # Phase Two: leaders release once their incoming arcs are full.
        if (
            self.is_leader
            and self.name not in self.released
            and self.escrow_done
            and self.all_incoming_escrowed(view)
        ):
            txs.extend(self._originate_hashkey(view))

        # Everyone: forward observed hashkeys.
        txs.extend(self._forward_hashkeys(view))
        return txs


class BaseMultiPartySwap:
    """Builder for the base multi-party swap on an arbitrary digraph."""

    def __init__(
        self,
        graph: SwapGraph | None = None,
        leaders: tuple[str, ...] | None = None,
        secrets: dict[str, Secret] | None = None,
    ) -> None:
        from repro.graph.digraph import figure3_graph

        self.graph = graph or figure3_graph()
        if not self.graph.is_strongly_connected():
            raise ProtocolError("swap digraph must be strongly connected")
        self.leaders = leaders or minimum_feedback_vertex_set(self.graph)
        self.secrets = secrets or {
            leader: Secret.generate(f"{leader}-secret") for leader in self.leaders
        }
        if set(self.secrets) != set(self.leaders):
            raise ProtocolError("need exactly one secret per leader")
        self.schedule = MultiPartySchedule(self.graph, tuple(self.leaders))

    def build(self) -> ProtocolInstance:
        graph, schedule = self.graph, self.schedule
        world = World(graph.chains)
        keys = {name: world.register_party(name) for name in graph.parties}

        hashlocks = {leader: self.secrets[leader].hashlock for leader in self.leaders}

        # Fund every escrower with the tokens its outgoing arcs move.
        need: dict[tuple[str, str, str], int] = defaultdict(int)
        for (u, v), spec in graph.specs.items():
            need[(spec.chain, u, spec.token)] += spec.amount
        for (chain_name, account, token), amount in need.items():
            world.fund(chain_name, account, token, amount)

        addresses: AddrMap = {}
        contracts: dict[str, tuple[str, str]] = {}
        for arc in sorted(graph.arcs):
            spec = graph.specs[arc]
            host = world.chain(spec.chain)
            address = host.deploy(
                BaseSwapArc(
                    graph=graph,
                    schedule=schedule,
                    public_of=world.public_of,
                    hashlocks=hashlocks,
                    arc=arc,
                    asset=host.asset(spec.token),
                    amount=spec.amount,
                )
            )
            addresses[arc] = (spec.chain, address)
            contracts[f"arc:{arc[0]}->{arc[1]}"] = (spec.chain, address)

        actors: dict[str, Actor] = {}
        for name in graph.parties:
            actors[name] = BaseMultiPartyActor(
                name,
                keys[name],
                graph,
                schedule,
                addresses,
                self.secrets.get(name),
            )

        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=schedule.base_horizon,
            contracts=contracts,
            meta={
                "graph": graph,
                "schedule": schedule,
                "leaders": tuple(self.leaders),
                "addresses": addresses,
                "premium": 0,
            },
        )
