"""Base (unhedged) protocols adapted from the literature.

Each module builds a ready-to-run protocol instance: it deploys the
contracts, funds the parties, and constructs compliant reactive actors.
These are the protocols the paper *transforms*; their hedged counterparts
live in `repro.core`.

- :mod:`repro.protocols.base_two_party` — HTLC atomic swap (§5.1),
- :mod:`repro.protocols.base_multi_party` — Herlihy '18 multi-party swap (§7),
- :mod:`repro.protocols.base_broker` — Herlihy-Liskov-Shrira broker (§8.1).

The base (unhedged) auction of §9.1 is the ``premium=0`` configuration of
:class:`repro.core.hedged_auction.HedgedAuction` — §9's protocol is already
the paper's own design, so base and hedged share one implementation.
"""

from repro.protocols.instance import ProtocolInstance, execute

__all__ = ["ProtocolInstance", "execute"]
