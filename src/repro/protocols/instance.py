"""Protocol instances: a uniform wrapper for every protocol in the library.

A builder (``BaseTwoPartySwap.build()``, ``HedgedMultiPartySwap.build()``,
...) returns a :class:`ProtocolInstance` holding the world, the compliant
actors, the run horizon, and a directory of deployed contracts.
:func:`execute` runs it, optionally replacing any actor with an adversarial
transform (see `repro.parties.strategies`), and returns the
:class:`repro.sim.runner.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ProtocolError
from repro.parties.base import Actor
from repro.sim.runner import RunResult, SyncRunner
from repro.sim.world import World

ActorTransform = Callable[[Actor], Actor]


@dataclass
class ProtocolInstance:
    """A fully wired, ready-to-run protocol."""

    world: World
    actors: dict[str, Actor]
    horizon: int
    contracts: dict[str, tuple[str, str]] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def parties(self) -> tuple[str, ...]:
        return tuple(self.actors)

    def contract(self, label: str):
        """Look up a deployed contract object by its instance label."""
        chain_name, address = self.contracts[label]
        return self.world.chain(chain_name).contract_at(address)


def execute(
    instance: ProtocolInstance,
    deviations: dict[str, ActorTransform] | None = None,
) -> RunResult:
    """Run the instance to its horizon, applying per-party deviations."""
    deviations = deviations or {}
    unknown = set(deviations) - set(instance.actors)
    if unknown:
        raise ProtocolError(f"deviations for unknown parties: {sorted(unknown)}")
    actors: list[Actor] = []
    for name, actor in instance.actors.items():
        transform = deviations.get(name)
        actors.append(transform(actor) if transform else actor)
    runner = SyncRunner(instance.world, actors)
    return runner.run(instance.horizon, parties=list(instance.actors))
