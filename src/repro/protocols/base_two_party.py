"""The base (unhedged) two-party HTLC atomic swap — §5.1.

Alice trades ``A`` apricot tokens for Bob's ``B`` banana tokens:

1. round 0 — Alice escrows her tokens on the apricot chain under
   hashlock ``h = H(s)`` with timelock ``t_A``,
2. round 1 — Bob sees the escrow and escrows his tokens on the banana
   chain under the same hashlock with timelock ``t_B < t_A``,
3. round 2 — Alice redeems Bob's tokens, revealing ``s`` on-chain,
4. round 3 — Bob forwards ``s`` to the apricot contract and redeems.

Discretization: the paper's timelocks are ``t_A = 3Δ, t_B = 2Δ`` with
Alice's first escrow at time 0; here every action lands one height after it
is submitted, so the deadlines shift by one to (1, 2, 3, 4) while all lockup
*durations* (§5.1: Alice exposed 3Δ, Bob exposed Δ) are unchanged — see
DESIGN.md "discretization note".

The protocol is deliberately vulnerable to sore loser attacks; the
benchmarks measure exactly the exposure the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Transaction
from repro.contracts.htlc import HTLC
from repro.crypto.hashing import Secret
from repro.parties.base import Actor
from repro.protocols.instance import ProtocolInstance
from repro.sim.world import World, WorldView


@dataclass(frozen=True)
class TwoPartySpec:
    """Parameters of a two-party swap (shared by base and hedged forms)."""

    alice: str = "Alice"
    bob: str = "Bob"
    chain_a: str = "apricot"
    chain_b: str = "banana"
    token_a: str = "apricot-token"
    token_b: str = "banana-token"
    amount_a: int = 100
    amount_b: int = 100

    # base-protocol deadlines (heights); see module docstring
    alice_escrow_deadline: int = 1
    bob_escrow_deadline: int = 2
    alice_redeem_deadline: int = 3  # t_B on the banana chain
    bob_redeem_deadline: int = 4  # t_A on the apricot chain


class BaseSwapAlice(Actor):
    """Compliant Alice: escrow, then redeem Bob's escrow with her secret."""

    def __init__(self, name, keypair, spec: TwoPartySpec, secret: Secret, addrs):
        super().__init__(name, keypair)
        self.spec = spec
        self.secret = secret
        self.apricot_htlc, self.banana_htlc = addrs

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        lands = view.height + 1
        mine = view.chain(spec.chain_a).contract(self.apricot_htlc)
        theirs = view.chain(spec.chain_b).contract(self.banana_htlc)
        if mine.state == HTLC.CREATED and lands <= spec.alice_escrow_deadline:
            txs.append(self.tx(spec.chain_a, self.apricot_htlc, "escrow"))
        if theirs.state == HTLC.ESCROWED and lands <= spec.alice_redeem_deadline:
            txs.append(
                self.tx(
                    spec.chain_b,
                    self.banana_htlc,
                    "redeem",
                    preimage=self.secret.preimage,
                )
            )
        return txs


class BaseSwapBob(Actor):
    """Compliant Bob: counter-escrow, then redeem with the revealed secret."""

    def __init__(self, name, keypair, spec: TwoPartySpec, addrs):
        super().__init__(name, keypair)
        self.spec = spec
        self.apricot_htlc, self.banana_htlc = addrs

    def on_round(self, rnd: int, view: WorldView) -> list[Transaction]:
        spec, txs = self.spec, []
        lands = view.height + 1
        alices = view.chain(spec.chain_a).contract(self.apricot_htlc)
        mine = view.chain(spec.chain_b).contract(self.banana_htlc)
        if (
            alices.state == HTLC.ESCROWED
            and mine.state == HTLC.CREATED
            and lands <= spec.bob_escrow_deadline
        ):
            txs.append(self.tx(spec.chain_b, self.banana_htlc, "escrow"))
        if (
            mine.revealed_preimage is not None
            and alices.state == HTLC.ESCROWED
            and lands <= spec.bob_redeem_deadline
        ):
            txs.append(
                self.tx(
                    spec.chain_a,
                    self.apricot_htlc,
                    "redeem",
                    preimage=mine.revealed_preimage,
                )
            )
        return txs


class BaseTwoPartySwap:
    """Builder for the base §5.1 swap."""

    def __init__(self, spec: TwoPartySpec | None = None, secret: Secret | None = None):
        self.spec = spec or TwoPartySpec()
        self.secret = secret or Secret.generate("alice-swap-secret")

    def build(self) -> ProtocolInstance:
        spec = self.spec
        world = World([spec.chain_a, spec.chain_b])
        alice_keys = world.register_party(spec.alice)
        bob_keys = world.register_party(spec.bob)
        world.fund(spec.chain_a, spec.alice, spec.token_a, spec.amount_a)
        world.fund(spec.chain_b, spec.bob, spec.token_b, spec.amount_b)

        hashlock = self.secret.hashlock
        apricot = world.chain(spec.chain_a)
        banana = world.chain(spec.chain_b)
        apricot_addr = apricot.deploy(
            HTLC(
                asset=apricot.asset(spec.token_a),
                amount=spec.amount_a,
                owner=spec.alice,
                counterparty=spec.bob,
                hashlock=hashlock,
                timelock=spec.bob_redeem_deadline,
                escrow_deadline=spec.alice_escrow_deadline,
            )
        )
        banana_addr = banana.deploy(
            HTLC(
                asset=banana.asset(spec.token_b),
                amount=spec.amount_b,
                owner=spec.bob,
                counterparty=spec.alice,
                hashlock=hashlock,
                timelock=spec.alice_redeem_deadline,
                escrow_deadline=spec.bob_escrow_deadline,
            )
        )

        addrs = (apricot_addr, banana_addr)
        actors = {
            spec.alice: BaseSwapAlice(spec.alice, alice_keys, spec, self.secret, addrs),
            spec.bob: BaseSwapBob(spec.bob, bob_keys, spec, addrs),
        }
        horizon = spec.bob_redeem_deadline + 2  # one extra for final settlement
        return ProtocolInstance(
            world=world,
            actors=actors,
            horizon=horizon,
            contracts={
                "apricot_htlc": (spec.chain_a, apricot_addr),
                "banana_htlc": (spec.chain_b, banana_addr),
            },
            meta={"spec": spec, "secret": self.secret},
        )
