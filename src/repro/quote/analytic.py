"""Analytic π* hints for graph-shaped deals.

The §5.2 families have exact closed forms (:func:`~repro.campaign.
ablation.grid.closed_form_pi_star`); arbitrary graphs do not get one for
free, but the same walk-or-comply inequality still pins the answer to a
narrow band: at the ``staked`` stage the pivot walks exactly when its
shock-side gain exceeds its total staked premium, and the staked premium
is *linear* in the integer premium ``p`` (Equations 1–2 are), so

    π* ≈ shock · notional / (slope · base)

where ``slope`` is the pivot's total stake per unit premium and
``notional`` is the amount delivered to the pivot in the shocked token.
The hint is analytic, not authoritative — integer premium rounding and
stage timing can shift the measured boundary by a grid step — so the
quote engine uses it only to center tier-3 bisection brackets (and the
parity tests use it to sanity-check tier-3 answers to within tolerance).
"""

from __future__ import annotations

from repro.campaign.ablation.grid import PRINCIPAL, parse_graph_family
from repro.core.premiums import (
    escrow_premium_amounts,
    redemption_premium_flow,
)
from repro.graph.digraph import SwapGraph


def graph_pivot(graph: SwapGraph, leaders: tuple[str, ...]) -> str:
    """The canonical sore-loser candidate: the least non-leader party."""
    return min(p for p in graph.parties if p not in leaders)


def graph_stake_slope(
    graph: SwapGraph, leaders: tuple[str, ...], pivot: str
) -> int:
    """The pivot's total staked premium per unit ``p``.

    Both recurrences are linear in ``p`` with zero intercept, so
    evaluating them at ``p = 1`` yields the slope exactly: the escrow
    premiums the pivot posts on its outgoing arcs plus every redemption
    premium the compliant flow has the pivot deposit.
    """
    escrow = escrow_premium_amounts(graph, leaders, 1)
    slope = sum(
        amount for arc, amount in escrow.items() if arc[0] == pivot
    )
    for deposit in redemption_premium_flow(graph, leaders, 1):
        if deposit.depositor == pivot:
            slope += deposit.amount
    return slope


def analytic_pi_star_hint(family: str, shock: float) -> float | None:
    """An analytic π* estimate for a graph family, or None if unknown.

    Centers the walk-or-comply boundary for the grid's canonical pivot:
    the gain side is ``shock`` times the notional the shocked in-neighbor
    owes the pivot; the stake side is ``slope(pivot) · π · PRINCIPAL``.
    """
    parsed = parse_graph_family(family)
    if parsed is None:
        return None
    graph, leaders = parsed
    pivot = graph_pivot(graph, leaders)
    shocked_neighbor = min(graph.in_neighbors(pivot))
    notional = sum(
        graph.specs[arc].amount
        for arc in graph.in_arcs(pivot)
        if arc[0] == shocked_neighbor
    )
    slope = graph_stake_slope(graph, leaders, pivot)
    if slope <= 0 or notional <= 0:
        return None
    return (shock * notional) / (slope * PRINCIPAL)
