"""Per-arc deposit schedules: Equations 1–2 rendered as ledger entries.

Given the deal shape and an integer premium, this module prices every
deposit the hedged protocol requires: escrow premiums (Equation 2,
forward from the leaders) and redemption premiums (Equation 1, backward
along leader-to-beneficiary paths, with the broker's contract-sharing
pruning where the deal defines it).  The output is a flat, sorted tuple
of :class:`~repro.quote.quote.ScheduleEntry` — the part of a quote a
counterparty actually signs.

Every family quotes through the same two recurrences; only the digraph
and leader set differ:

- ``two-party`` is the 2-ring with ``P0`` leading,
- ``multi-party`` is the 3-ring with ``P0`` leading (the §5.2 cell),
- graph-shaped deals (``ring:N``, ``complete:N``, ``figure3``) parse
  through the ablation grid's :func:`~repro.campaign.ablation.grid.
  parse_graph_family`,
- ``broker`` adds the trading-premium table and prunes per hosting
  contract (§8.1),
- ``auction`` is the degenerate case: the auctioneer deposits the flat
  premium into each bidder's contract (§9.2).
"""

from __future__ import annotations

from repro.campaign.ablation.grid import parse_graph_family
from repro.core.hedged_auction import AuctionSpec
from repro.core.hedged_broker import broker_premium_tables
from repro.core.premiums import (
    escrow_premium_amounts,
    redemption_premium_flow,
)
from repro.graph.digraph import SwapGraph, ring_graph
from repro.protocols.base_broker import BrokerSpec

from repro.quote.quote import ScheduleEntry
from repro.quote.request import QuoteError


def _graph_entries(
    graph: SwapGraph,
    leaders: tuple[str, ...],
    premium: int,
    contract_of=None,
) -> list[ScheduleEntry]:
    """Escrow + redemption entries for one digraph under Equations 1–2."""
    entries: list[ScheduleEntry] = []
    for arc, amount in sorted(
        escrow_premium_amounts(graph, leaders, premium).items()
    ):
        if amount == 0:
            continue
        entries.append(
            ScheduleEntry(
                kind="escrow",
                depositor=arc[0],
                arc=arc,
                round=0,
                amount=amount,
            )
        )
    flow = redemption_premium_flow(graph, leaders, premium, contract_of)
    for deposit in sorted(flow, key=lambda d: (d.round, d.leader, d.arc)):
        if deposit.amount == 0:
            continue
        entries.append(
            ScheduleEntry(
                kind="redemption",
                depositor=deposit.depositor,
                arc=deposit.arc,
                round=deposit.round,
                amount=deposit.amount,
                path=deposit.path,
            )
        )
    return entries


def _broker_entries(premium: int) -> list[ScheduleEntry]:
    """The three-party deal: trading + escrow tables, pruned redemptions."""
    spec = BrokerSpec()
    tables = broker_premium_tables(spec, premium)
    entries: list[ScheduleEntry] = []
    for kind in ("trading", "escrow"):
        for arc, amount in sorted(tables[kind].items()):
            if amount == 0:
                continue
            entries.append(
                ScheduleEntry(
                    kind=kind,
                    depositor=arc[0],
                    arc=arc,
                    round=0,
                    amount=amount,
                )
            )
    flow = redemption_premium_flow(
        spec.graph(),
        (spec.broker, spec.seller, spec.buyer),
        premium,
        tables["contract_of"],
    )
    for deposit in sorted(flow, key=lambda d: (d.round, d.leader, d.arc)):
        if deposit.amount == 0:
            continue
        entries.append(
            ScheduleEntry(
                kind="redemption",
                depositor=deposit.depositor,
                arc=deposit.arc,
                round=deposit.round,
                amount=deposit.amount,
                path=deposit.path,
            )
        )
    return entries


def _auction_entries(premium: int) -> list[ScheduleEntry]:
    """§9.2: the auctioneer posts the flat premium on every bid contract."""
    spec = AuctionSpec()
    return [
        ScheduleEntry(
            kind="escrow",
            depositor=spec.auctioneer,
            arc=(spec.auctioneer, bidder),
            round=0,
            amount=premium,
        )
        for bidder in sorted(spec.bidders)
    ]


def deposit_schedule(family: str, premium: int) -> tuple[ScheduleEntry, ...]:
    """The full deposit schedule for one deal at one integer premium.

    ``family`` is a resolved cell family — a named §5.2 family or a graph
    family string.  A zero premium prices the unhedged protocol: the
    schedule is empty (there is nothing to deposit and nothing deterring).
    """
    if premium < 0:
        raise QuoteError(f"premium must be non-negative, got {premium}")
    if premium == 0:
        return ()
    if family == "two-party":
        return tuple(_graph_entries(ring_graph(2), ("P0",), premium))
    if family == "multi-party":
        return tuple(_graph_entries(ring_graph(3), ("P0",), premium))
    if family == "broker":
        return tuple(_broker_entries(premium))
    if family == "auction":
        return tuple(_auction_entries(premium))
    parsed = parse_graph_family(family)
    if parsed is None:
        raise QuoteError(f"no deposit schedule for family {family!r}")
    graph, leaders = parsed
    return tuple(_graph_entries(graph, leaders, premium))
