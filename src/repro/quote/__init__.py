"""repro.quote — a premium-quoting service for cross-chain deals.

The question-shaped front door to the reproduction: ask "what premium
schedule makes this deal sore-loser-proof under these assumptions?" and
get back a :class:`~repro.quote.quote.Quote` — the deterring π*, the
smallest integer premium clearing it, and the full per-arc deposit
schedule Equations 1–2 imply — priced through a three-tier ladder
(closed forms, cached refined rows, narrow measurement fallback) behind
one :class:`~repro.quote.engine.QuoteEngine`.  Requests and quotes are
frozen, JSON-serializable, and digest-covered, with the same
traced-equals-untraced byte-identity discipline as every other artifact
in the tree.
"""

from repro.quote.analytic import (
    analytic_pi_star_hint,
    graph_pivot,
    graph_stake_slope,
)
from repro.quote.batch import batch_cells, batch_digest, quote_batch
from repro.quote.engine import ALL_TIERS, QuoteEngine
from repro.quote.quote import (
    Quote,
    ScheduleEntry,
    quote_for,
    schedule_entry_from_payload,
    schedule_entry_payload,
)
from repro.quote.request import DEFAULT_SHOCK, QuoteError, QuoteRequest
from repro.quote.schedule import deposit_schedule

__all__ = [
    "ALL_TIERS",
    "DEFAULT_SHOCK",
    "Quote",
    "QuoteEngine",
    "QuoteError",
    "QuoteRequest",
    "ScheduleEntry",
    "analytic_pi_star_hint",
    "batch_cells",
    "batch_digest",
    "deposit_schedule",
    "graph_pivot",
    "graph_stake_slope",
    "quote_batch",
    "quote_for",
    "schedule_entry_from_payload",
    "schedule_entry_payload",
]
