"""The three-tier quote engine.

One question-shaped entry point — :meth:`QuoteEngine.quote` — behind a
ladder of progressively more expensive answer paths:

- **tier 1, closed forms** (µs–ms): the §5.2 families at their named
  stages have exact analytic π* (:func:`~repro.campaign.ablation.grid.
  closed_form_pi_star` and its coalition variant); a ``pre-stake`` shock
  finds nothing staked, so no premium deters and the quote is the
  un-hedgeable verdict without measuring anything.
- **tier 2, row lookup** (ms): a content-addressed read of one refined
  frontier row from the shared :class:`~repro.campaign.cache.
  ResultCache` — warmed by any prior ``ablate-refine`` run (a CLI sweep
  or a tier-3 fallback), keyed by the same code-version discipline as
  the probe-block cache.
- **tier 3, measurement** (s): synthesize a narrow single-cell
  ``ablate-refine`` :class:`~repro.campaign.experiment.ExperimentSpec`
  (kernel engine, bisection bracket centered on the analytic hint) and
  run it through the experiment facade, which stores the refined rows
  back — so the *second* identical quote is a tier-2 hit.

Tiers 2 and 3 stamp the same ``refined|<row descriptor>`` provenance and
read byte-identical row payloads, so a cache hit and a fresh measurement
of one request produce the same quote digest.  ``tier`` and
``latency_ms`` record which rung answered and how fast; both live
outside the digest (see :meth:`~repro.quote.quote.Quote.digest`).
"""

from __future__ import annotations

import time

from repro.campaign.ablation.grid import (
    ABLATION_FAMILIES,
    closed_form_coalition_pi_star,
    closed_form_pi_star,
    premium_base,
)
from repro.campaign.ablation.refine import EXPAND_CEILING
from repro.campaign.ablation.rowstore import load_row, row_descriptor
from repro.campaign.cache import ResultCache
from repro.obs import maybe_inc, maybe_span

from repro.quote.analytic import analytic_pi_star_hint
from repro.quote.quote import Quote, quote_for
from repro.quote.request import QuoteError, QuoteRequest
from repro.quote.schedule import deposit_schedule

#: the tier ladder a quote descends by default: cheapest answer first.
ALL_TIERS = (1, 2, 3)

#: the tier-3 bracket's fallback upper probe when no analytic hint
#: exists: one lattice step above the default grid's densest band.
FALLBACK_HI = 0.08


class QuoteEngine:
    """Prices :class:`QuoteRequest` s through the tier ladder.

    ``cache`` is the shared result cache tier 2 reads and tier 3 writes
    through (without one, tier 2 always misses and tier 3 measurements
    are not remembered); ``tracer`` instruments per-tier spans and the
    ``quote.tier{n}`` counters; ``kernel`` is a caller-owned
    :class:`~repro.campaign.ablation.kernels.KernelEngine` reused across
    tier-3 runs so repeated fallbacks skip template recalibration.  All
    three are observability/performance knobs: quotes are byte-identical
    with or without them.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        tracer=None,
        kernel=None,
    ) -> None:
        self.cache = cache
        self.tracer = tracer
        self._kernel = kernel
        if cache is not None and tracer is not None and cache.tracer is None:
            # Same binding the campaign runner performs: the cache's
            # hit/miss counters belong to whichever run attached first.
            cache.tracer = tracer

    # ------------------------------------------------------------------
    # the ladder
    # ------------------------------------------------------------------
    def quote(
        self, request: QuoteRequest, tiers: tuple[int, ...] = ALL_TIERS
    ) -> Quote:
        """Price one request through the first tier that can answer.

        ``tiers`` restricts the ladder (e.g. ``(3,)`` forces a fresh
        measurement, ``(1, 2)`` forbids falling back to one); a request
        no permitted tier can answer raises :class:`QuoteError`.
        """
        unknown = sorted(set(tiers) - set(ALL_TIERS))
        if unknown:
            raise QuoteError(f"unknown quote tiers {unknown}; valid: 1, 2, 3")
        # perf_counter is observability-only: latency_ms never enters the
        # quote digest (see Quote.digest).
        start = time.perf_counter()
        with maybe_span(
            self.tracer,
            "quote",
            family=request.cell_family,
            coalition=request.coalition,
            stage=request.stage,
        ):
            for tier in (1, 2, 3):
                if tier not in tiers:
                    continue
                answer = getattr(self, f"_tier{tier}")(request)
                if answer is None:
                    continue
                pi_star, provenance = answer
                maybe_inc(self.tracer, f"quote.tier{tier}")
                return self._assemble(
                    request, pi_star, provenance, tier, start
                )
        raise QuoteError(
            f"no permitted tier {tuple(tiers)} could answer "
            f"(family={request.cell_family!r}, stage={request.stage!r}); "
            "tier 2 needs a warm cache, tier 3 answers anything"
        )

    def _assemble(
        self,
        request: QuoteRequest,
        pi_star: float | None,
        provenance: str,
        tier: int,
        start: float,
    ) -> Quote:
        quote = quote_for(
            request,
            pi_star=pi_star,
            base=premium_base(request.cell_family),
            provenance=provenance,
            tier=tier,
        )
        schedule = ()
        if quote.premium is not None:
            schedule = deposit_schedule(request.cell_family, quote.premium)
        latency_ms = (time.perf_counter() - start) * 1000.0
        return quote_for(
            request,
            pi_star=pi_star,
            base=quote.base,
            provenance=provenance,
            schedule=schedule,
            tier=tier,
            latency_ms=latency_ms,
        )

    def _descriptor(self, request: QuoteRequest) -> str:
        return row_descriptor(
            request.cell_family,
            request.coalition,
            request.stage,
            request.shock,
            request.tol,
            request.seed,
        )

    # ------------------------------------------------------------------
    # tier 1: closed forms
    # ------------------------------------------------------------------
    def _tier1(self, request: QuoteRequest):
        family = request.cell_family
        if family not in ABLATION_FAMILIES:
            return None
        with maybe_span(self.tracer, "quote.tier1", family=family):
            if request.stage == "pre-stake":
                # Nothing is staked yet, so walking forfeits nothing:
                # no premium deters, at any shock — the analytic
                # un-hedgeable verdict (measured by test_quote_parity).
                label = request.coalition or "pivot"
                return None, f"closed-form|{family}|{label}|pre-stake"
            if request.stage != "staked":
                # round:K stages sit between the closed forms' anchor
                # points; only measurement answers them.
                return None
            if request.coalition:
                pi_star = closed_form_coalition_pi_star(
                    family, request.coalition, request.shock
                )
                return pi_star, (
                    f"closed-form|{family}|{request.coalition}"
                )
            pi_star = closed_form_pi_star(family, request.shock)
            return pi_star, f"closed-form|{family}|pivot"

    # ------------------------------------------------------------------
    # tier 2: content-addressed row lookup
    # ------------------------------------------------------------------
    def _tier2(self, request: QuoteRequest):
        if self.cache is None:
            return None
        descriptor = self._descriptor(request)
        with maybe_span(self.tracer, "quote.tier2", family=request.cell_family):
            row = load_row(self.cache, descriptor)
        if row is None:
            return None
        return row.pi_star, f"refined|{descriptor}"

    # ------------------------------------------------------------------
    # tier 3: narrow measurement fallback
    # ------------------------------------------------------------------
    def _bracket_hi(self, request: QuoteRequest) -> float:
        """The upper lattice probe tier 3 brackets with.

        Centered on the best analytic estimate — the closed form for
        named families, the stake-slope hint for graphs — doubled so the
        true boundary lands inside the bracket even when quantization
        pushes it above the estimate.  Without a hint (round:K stages,
        coalitions), the default-grid ceiling; the refinement's upward
        doubling covers anything beyond either choice.
        """
        family = request.cell_family
        hint = None
        if family in ABLATION_FAMILIES:
            if request.coalition:
                hint = closed_form_coalition_pi_star(
                    family, request.coalition, request.shock
                )
            else:
                hint = closed_form_pi_star(family, request.shock)
        else:
            hint = analytic_pi_star_hint(family, request.shock)
        if hint is None or hint <= 0:
            return FALLBACK_HI
        return min(EXPAND_CEILING, max(0.04, 2.0 * hint))

    def _tier3(self, request: QuoteRequest):
        from repro.campaign.experiment import Experiment, refine_spec

        family = request.cell_family
        descriptor = self._descriptor(request)
        spec = refine_spec(
            families=(family,),
            premium_fractions=(0.0, self._bracket_hi(request)),
            shock_fractions=(request.shock,),
            stages=(request.stage,),
            coalitions=bool(request.coalition),
            seed=request.seed,
            tol=request.tol,
            engine="kernel",
        )
        with maybe_span(self.tracer, "quote.tier3", family=family):
            experiment = Experiment(
                spec,
                cache=self.cache,
                tracer=self.tracer,
                kernel=self._kernel,
            )
            result = experiment.run()
        row = result.refined.row(
            family, request.stage, request.shock, request.coalition
        )
        if not row.converged and row.pi_hi is not None:
            raise QuoteError(
                f"tier-3 bisection did not converge for {descriptor} "
                f"(bracket [{row.pi_lo}, {row.pi_hi}] after "
                f"{row.iterations} iterations); loosen tol"
            )
        return row.pi_star, f"refined|{descriptor}"
