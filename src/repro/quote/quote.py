"""The answer side of the quoting API: :class:`Quote`.

A quote is the priced deal: the deterring premium fraction π* (with the
smallest integer premium that clears it), the full per-arc deposit
schedule that premium implies under Equations 1–2, and the provenance of
the number — which tier answered, from what measurement.  Like the
request it is frozen, JSON-serializable, and digest-covered; the digest
hashes every *economic* field but deliberately not ``tier`` or
``latency_ms``, which describe how fast the service answered, not what
the answer is — a tier-1 closed form and a tier-3 measurement of the
same request must produce byte-identical digests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import sha256

from repro.campaign.canon import canon_float, canon_opt

from repro.quote.request import QuoteError, QuoteRequest


@dataclass(frozen=True)
class ScheduleEntry:
    """One deposit in a deal's premium schedule.

    ``kind`` names the contract class the deposit collateralizes
    (``escrow``, ``redemption``, ``trading``); ``depositor`` pays
    ``amount`` into the contract on ``arc`` at protocol round ``round``;
    for redemption premiums ``path`` is the leader-to-beneficiary path
    the Equation-1 recurrence priced (empty otherwise).
    """

    kind: str
    depositor: str
    arc: tuple[str, str]
    round: int
    amount: int
    path: tuple[str, ...] = ()


def schedule_entry_payload(entry: ScheduleEntry) -> dict:
    """The canonical JSON shape of one schedule entry."""
    return {
        "kind": entry.kind,
        "depositor": entry.depositor,
        "arc": list(entry.arc),
        "round": entry.round,
        "amount": entry.amount,
        "path": list(entry.path),
    }


def schedule_entry_from_payload(data: dict) -> ScheduleEntry:
    return ScheduleEntry(
        kind=data["kind"],
        depositor=data["depositor"],
        arc=tuple(data["arc"]),
        round=int(data["round"]),
        amount=int(data["amount"]),
        path=tuple(data.get("path", ())),
    )


@dataclass(frozen=True)
class Quote:
    """One priced deal: π*, the integer premium, the deposit schedule.

    ``pi_star`` is the deterring premium fraction (None when no premium
    up to the expansion ceiling deters — the deal is un-hedgeable for
    this coalition, the broker seller+buyer verdict); ``premium`` is the
    smallest integer premium ≥ π*·``base`` (None likewise); ``schedule``
    prices that premium arc by arc.  ``provenance`` names the source of
    the number — ``closed-form|...`` or ``refined|<row descriptor>`` —
    and is *tier-stable*: tiers 2 and 3 stamp the same descriptor, so
    cache hits and fresh measurements are byte-identical.  ``tier`` and
    ``latency_ms`` are service metadata, excluded from the digest.
    """

    request_digest: str
    family: str
    coalition: str
    stage: str
    shock: float
    tol: float
    pi_star: float | None
    premium: int | None
    base: int
    provenance: str
    schedule: tuple[ScheduleEntry, ...] = ()
    tier: int = 0
    latency_ms: float = 0.0

    @property
    def hedgeable(self) -> bool:
        """Whether any premium up to the ceiling deters the sore loser."""
        return self.pi_star is not None

    def _economic_payload(self) -> dict:
        """Every digest-covered field, canonical floats, sorted entries."""
        return {
            "request_digest": self.request_digest,
            "family": self.family,
            "coalition": self.coalition,
            "stage": self.stage,
            "shock": canon_float(self.shock),
            "tol": canon_float(self.tol),
            "pi_star": canon_opt(self.pi_star),
            "premium": self.premium,
            "base": self.base,
            "provenance": self.provenance,
            "schedule": [schedule_entry_payload(e) for e in self.schedule],
        }

    def digest(self) -> str:
        """The quote's identity: a hash of the economic answer only.

        ``tier`` and ``latency_ms`` are deliberately outside the hash —
        the digest asserts *what* the deal costs, not how quickly the
        service looked it up, so a closed form, a cache hit, and a fresh
        measurement of the same request can attest to one another.
        """
        text = json.dumps(
            self._economic_payload(), sort_keys=True, separators=(",", ":")
        )
        return sha256(f"quote|{text}".encode()).hexdigest()

    def to_json(self) -> str:
        return json.dumps(
            {
                **self._economic_payload(),
                "tier": self.tier,
                "latency_ms": canon_float(self.latency_ms),
                "digest": self.digest(),
            },
            indent=2,
            sort_keys=False,
        )

    @classmethod
    def from_json(cls, text: str) -> "Quote":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise QuoteError(f"not a JSON quote: {err}")
        try:
            quote = cls(
                request_digest=data["request_digest"],
                family=data["family"],
                coalition=data.get("coalition", ""),
                stage=data["stage"],
                shock=data["shock"],
                tol=data["tol"],
                pi_star=data.get("pi_star"),
                premium=data.get("premium"),
                base=data["base"],
                provenance=data["provenance"],
                schedule=tuple(
                    schedule_entry_from_payload(e)
                    for e in data.get("schedule", ())
                ),
                tier=data.get("tier", 0),
                latency_ms=data.get("latency_ms", 0.0),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise QuoteError(f"malformed quote: {err}")
        stamped = data.get("digest")
        if stamped is not None and stamped != quote.digest():
            raise QuoteError(
                "quote digest mismatch after deserialization: "
                f"{quote.digest()[:16]} != {stamped[:16]} — the quote was "
                "edited without re-stamping"
            )
        return quote


def quote_for(
    request: QuoteRequest,
    *,
    pi_star: float | None,
    base: int,
    provenance: str,
    schedule: tuple[ScheduleEntry, ...] = (),
    tier: int = 0,
    latency_ms: float = 0.0,
) -> Quote:
    """Assemble a :class:`Quote` answering ``request``.

    Centralizes the two derivations every tier shares: the request-digest
    stamp that binds answer to question, and the smallest integer premium
    clearing π* (``ceil(pi_star * base)``, the deposit a contract can
    actually hold — premiums are integer token amounts throughout the
    protocol layer).
    """
    premium: int | None = None
    if pi_star is not None:
        pi_star = canon_float(pi_star)
        scaled = pi_star * base
        premium = int(scaled)
        if premium < scaled:
            premium += 1
    return Quote(
        request_digest=request.digest(),
        family=request.cell_family,
        coalition=request.coalition,
        stage=request.stage,
        shock=request.shock,
        tol=request.tol,
        pi_star=pi_star,
        premium=premium,
        base=base,
        provenance=provenance,
        schedule=schedule,
        tier=tier,
        latency_ms=latency_ms,
    )
