"""The question side of the quoting API: :class:`QuoteRequest`.

A request names one deal cell — a §5.2 family or an arbitrary deal graph
— plus the economic assumptions the premium schedule must deter under:
the relative price shock, the protocol stage the shock lands at, the
premium-fraction tolerance the answer must meet, and (optionally) a named
pivot coalition.  Like :class:`~repro.campaign.experiment.ExperimentSpec`
it is frozen, JSON-serializable, and digest-covered: the digest hashes
every result-determining field, two requests share a digest exactly when
they ask the same question, and ``from_json`` re-verifies a stamped
digest so an edited request can never masquerade as the original.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import sha256

from repro.campaign.ablation.grid import (
    ABLATION_COALITIONS,
    ABLATION_FAMILIES,
    STAGE_ALL,
    is_graph_family,
    valid_stage,
)
from repro.campaign.ablation.refine import DEFAULT_TOL
from repro.campaign.canon import canon_float
from repro.errors import ReproError

#: the default shock assumption a deal is priced against: the 0.045
#: relative drop sits mid-grid (deterred by the default sweep's upper
#: premiums, walked at its lower ones) so a default quote is informative.
DEFAULT_SHOCK = 0.045


class QuoteError(ReproError):
    """A quote request could not be honored (bad fields, digest miss)."""


@dataclass(frozen=True)
class QuoteRequest:
    """One deal-pricing question, fully specified and digest-covered.

    Exactly one of ``family`` (a named §5.2 family) and ``graph`` (a
    graph-shaped deal: ``ring:N``, ``complete:N``, ``figure3``) must be
    set.  ``coalition`` selects a named joint-pivot cell (named families
    only); ``stage`` is a concrete shock stage (named or ``round:K`` —
    the ``all`` pseudo-stage is a sweep, not a question); ``tol`` is the
    premium-fraction tolerance the answered π* must meet; ``seed`` is the
    matrix identity seed threaded into any measurement run.
    """

    family: str = ""
    graph: str = ""
    coalition: str = ""
    shock: float = DEFAULT_SHOCK
    stage: str = "staked"
    tol: float = DEFAULT_TOL
    seed: int = 0

    def __post_init__(self) -> None:
        if bool(self.family) == bool(self.graph):
            raise QuoteError(
                "a quote request names exactly one of family= "
                f"(one of {list(ABLATION_FAMILIES)}) and graph= "
                "(ring:N, complete:N, figure3); got "
                f"family={self.family!r}, graph={self.graph!r}"
            )
        if self.family and self.family not in ABLATION_FAMILIES:
            raise QuoteError(
                f"unknown family {self.family!r}; known: "
                f"{list(ABLATION_FAMILIES)} (graph-shaped deals go "
                "through graph=)"
            )
        if self.graph and not is_graph_family(self.graph):
            raise QuoteError(
                f"unknown graph {self.graph!r}: use ring:N, complete:N, "
                "or figure3"
            )
        if self.coalition:
            if not self.family:
                raise QuoteError(
                    "coalitions are named per family; graph-shaped deals "
                    "have no named coalitions"
                )
            known = ABLATION_COALITIONS.get(self.family, ())
            if self.coalition not in known:
                raise QuoteError(
                    f"unknown coalition {self.coalition!r} for family "
                    f"{self.family!r}; known: {sorted(known)}"
                )
        if not valid_stage(self.stage) or self.stage == STAGE_ALL:
            raise QuoteError(
                f"a quote needs one concrete stage, got {self.stage!r} "
                "(named stage or round:K)"
            )
        if not 0.0 < self.shock < 1.0:
            raise QuoteError(
                f"shock must be a relative drop in (0, 1), got {self.shock}"
            )
        if self.tol <= 0:
            raise QuoteError(f"tol must be positive, got {self.tol}")
        object.__setattr__(self, "shock", canon_float(self.shock))
        object.__setattr__(self, "tol", canon_float(self.tol))

    @property
    def cell_family(self) -> str:
        """The ablation cell family this request resolves to.

        ``graph="ring:3"`` *is* the named multi-party cell (same digraph,
        same canonical leader), so it normalizes to ``multi-party`` and
        rides the closed-form tier; every other graph names itself.
        """
        if self.family:
            return self.family
        if self.graph == "ring:3":
            return "multi-party"
        return self.graph

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    def _payload(self) -> dict:
        return {
            "family": self.family,
            "graph": self.graph,
            "coalition": self.coalition,
            "shock": canon_float(self.shock),
            "stage": self.stage,
            "tol": canon_float(self.tol),
            "seed": self.seed,
        }

    def digest(self) -> str:
        """The request's identity: a hash of every field (all of them
        determine the answer)."""
        text = json.dumps(self._payload(), sort_keys=True, separators=(",", ":"))
        return sha256(f"quote-request|{text}".encode()).hexdigest()

    def to_json(self) -> str:
        return json.dumps(
            {**self._payload(), "digest": self.digest()},
            indent=2,
            sort_keys=False,
        )

    @classmethod
    def from_json(cls, text: str) -> "QuoteRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise QuoteError(f"not a JSON quote request: {err}")
        try:
            request = cls(
                family=data.get("family", ""),
                graph=data.get("graph", ""),
                coalition=data.get("coalition", ""),
                shock=data.get("shock", DEFAULT_SHOCK),
                stage=data.get("stage", "staked"),
                tol=data.get("tol", DEFAULT_TOL),
                seed=data.get("seed", 0),
            )
        except QuoteError:
            raise
        except (KeyError, TypeError, ValueError) as err:
            raise QuoteError(f"malformed quote request: {err}")
        stamped = data.get("digest")
        if stamped is not None and stamped != request.digest():
            raise QuoteError(
                "quote-request digest mismatch after deserialization: "
                f"{request.digest()[:16]} != {stamped[:16]} — the request "
                "was edited without re-stamping"
            )
        return request
