"""Batch quoting: many deals, one warm pass.

``quote_batch`` prices a sequence of requests through one
:class:`~repro.quote.engine.QuoteEngine`, grouped by (family, coalition)
cell so expensive state stays hot: tier-3 fallbacks for one cell run
back-to-back (reusing the engine's calibrated kernel templates), and the
first measurement of a repeated request turns every later duplicate into
a tier-2 hit within the same batch.  Results come back in *input* order
— grouping is an execution detail, invisible in the output — and the
batch digest hashes the member quote digests in that order, so a batch
is reproducible exactly when its members are.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Iterable, Sequence

from repro.obs import ProgressMeter, maybe_span

from repro.quote.engine import ALL_TIERS, QuoteEngine
from repro.quote.quote import Quote
from repro.quote.request import QuoteRequest


def batch_cells(
    requests: Sequence[QuoteRequest],
) -> list[tuple[tuple[str, str], list[int]]]:
    """Input indices grouped by (cell family, coalition), sorted by cell.

    The grouping key is the pair that determines which kernel templates
    and cache neighborhoods a quote touches; index lists preserve input
    order within each cell.
    """
    cells: dict[tuple[str, str], list[int]] = {}
    for index, request in enumerate(requests):
        cells.setdefault(
            (request.cell_family, request.coalition), []
        ).append(index)
    return sorted(cells.items())


def quote_batch(
    engine: QuoteEngine,
    requests: Iterable[QuoteRequest],
    tiers: tuple[int, ...] = ALL_TIERS,
    progress=None,
) -> tuple[Quote, ...]:
    """Price every request; results in input order.

    ``progress`` is an optional :class:`~repro.obs.ProgressUpdate`
    callback — the meter advances once per quote and (like all telemetry)
    never influences the quotes themselves.
    """
    ordered = list(requests)
    results: list[Quote | None] = [None] * len(ordered)
    meter = ProgressMeter(
        total=len(ordered), callback=progress, tracer=engine.tracer
    )
    with maybe_span(engine.tracer, "quote.batch", n=len(ordered)):
        for (family, coalition), indices in batch_cells(ordered):
            with maybe_span(
                engine.tracer,
                "quote.batch.cell",
                family=family,
                coalition=coalition,
                n=len(indices),
            ):
                for index in indices:
                    results[index] = engine.quote(ordered[index], tiers)
                    meter.advance()
    meter.finish()
    return tuple(results)


def batch_digest(quotes: Iterable[Quote]) -> str:
    """One digest over a batch: the member digests, input order, hashed.

    Stable across traced/untraced and cold/warm runs for the same
    requests — the member digests already exclude tier and latency.
    """
    joined = "\n".join(quote.digest() for quote in quotes)
    return sha256(f"quote-batch|{joined}".encode()).hexdigest()
