"""Transactions and receipts.

A :class:`Transaction` is a signed intent to call one contract method.  The
simulator collects transactions during a round and the chain executes them
at the next height in deterministic order (submission order, which the
runner derives from a fixed party ordering — real chains order by miner
policy; any deterministic order satisfies the paper's model, which only
relies on inclusion within Δ).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_tx_counter = itertools.count()


@dataclass
class Receipt:
    """Execution outcome of a transaction."""

    status: str = "pending"  # pending | ok | reverted
    error: str = ""
    height: int = -1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class Transaction:
    """A contract call: who calls what, with which arguments."""

    chain: str
    sender: str
    contract: str
    method: str
    args: dict[str, Any] = field(default_factory=dict)
    nonce: int = field(default_factory=lambda: next(_tx_counter))
    receipt: Receipt = field(default_factory=Receipt)

    def __str__(self) -> str:
        return (
            f"tx#{self.nonce} {self.sender} -> "
            f"{self.chain}/{self.contract}.{self.method}"
        )
