"""A journaled single-chain ledger.

The ledger tracks integer balances per (asset, account).  All mutation goes
through :meth:`Ledger.transfer` / :meth:`Ledger.mint`, which append undo
records to the active journal frame; :class:`repro.chain.blockchain.Blockchain`
opens a frame per transaction and rolls back on contract revert.  Total
supply per asset is conserved by every operation except ``mint``/``burn``,
which only test fixtures and genesis allocation use.
"""

from __future__ import annotations

from collections import defaultdict

from repro.chain.assets import Asset
from repro.errors import InsufficientFunds, LedgerError


class Ledger:
    """Integer balances for one chain, with nested-journal rollback."""

    def __init__(self, chain: str) -> None:
        self.chain = chain
        self._balances: dict[tuple[Asset, str], int] = defaultdict(int)
        self._journal: list[list[tuple[tuple[Asset, str], int]]] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def balance(self, asset: Asset, account: str) -> int:
        """Current balance of ``account`` in ``asset``."""
        return self._balances[(asset, account)]

    def total_supply(self, asset: Asset) -> int:
        """Sum of all balances of ``asset`` (conserved by transfers)."""
        return sum(v for (a, _), v in self._balances.items() if a == asset)

    def accounts_holding(self, asset: Asset) -> dict[str, int]:
        """Non-zero holders of ``asset`` mapped to their balances."""
        return {
            account: amount
            for (a, account), amount in self._balances.items()
            if a == asset and amount != 0
        }

    def snapshot(self) -> dict[tuple[Asset, str], int]:
        """A copy of all non-zero balances (for payoff accounting)."""
        return {k: v for k, v in self._balances.items() if v != 0}

    # ------------------------------------------------------------------
    # journaled mutation
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Open a journal frame (one per transaction)."""
        self._journal.append([])

    def commit(self) -> None:
        """Discard the innermost journal frame, keeping its effects."""
        if not self._journal:
            raise LedgerError("commit without begin")
        frame = self._journal.pop()
        if self._journal:
            # merge into the enclosing frame so an outer rollback still works
            self._journal[-1].extend(frame)

    def rollback(self) -> None:
        """Undo every write of the innermost journal frame."""
        if not self._journal:
            raise LedgerError("rollback without begin")
        frame = self._journal.pop()
        for key, old_value in reversed(frame):
            self._balances[key] = old_value

    def _write(self, key: tuple[Asset, str], value: int) -> None:
        if self._journal:
            self._journal[-1].append((key, self._balances[key]))
        self._balances[key] = value

    def mint(self, asset: Asset, account: str, amount: int) -> None:
        """Create ``amount`` of ``asset`` in ``account`` (genesis/fixtures)."""
        self._require_local(asset)
        if amount < 0:
            raise LedgerError(f"cannot mint negative amount {amount}")
        key = (asset, account)
        self._write(key, self._balances[key] + amount)

    def burn(self, asset: Asset, account: str, amount: int) -> None:
        """Destroy ``amount`` of ``asset`` held by ``account``."""
        self._require_local(asset)
        self._require_funds(asset, account, amount)
        key = (asset, account)
        self._write(key, self._balances[key] - amount)

    def transfer(self, asset: Asset, source: str, dest: str, amount: int) -> None:
        """Move ``amount`` of ``asset`` from ``source`` to ``dest``."""
        self._require_local(asset)
        if amount < 0:
            raise LedgerError(f"cannot transfer negative amount {amount}")
        if source == dest:
            return
        self._require_funds(asset, source, amount)
        src_key, dst_key = (asset, source), (asset, dest)
        self._write(src_key, self._balances[src_key] - amount)
        self._write(dst_key, self._balances[dst_key] + amount)

    # ------------------------------------------------------------------
    # guards
    # ------------------------------------------------------------------
    def _require_local(self, asset: Asset) -> None:
        if asset.chain != self.chain:
            raise LedgerError(
                f"asset {asset} is managed by chain {asset.chain!r}, "
                f"not {self.chain!r} — chains are isolated"
            )

    def _require_funds(self, asset: Asset, account: str, amount: int) -> None:
        held = self._balances[(asset, account)]
        if amount > held:
            raise InsufficientFunds(
                f"{account} holds {held} {asset}, needs {amount}"
            )
