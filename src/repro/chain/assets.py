"""Asset identifiers.

An :class:`Asset` names a fungible token managed by exactly one chain.
Amounts everywhere in the library are integers (base units), which keeps
premium arithmetic exact — Equations 1 and 2 of the paper are closed under
integer ``p``.  Each chain has a *native* asset used to pay premiums on that
chain (§4: "We assume each blockchain has a native currency that can be used
to pay premiums on that chain").
"""

from __future__ import annotations

from dataclasses import dataclass

NATIVE_SYMBOL = "native"


@dataclass(frozen=True, order=True)
class Asset:
    """A fungible asset: ``chain`` that manages it and a ``symbol``."""

    chain: str
    symbol: str

    @property
    def is_native(self) -> bool:
        """True for the chain's native (premium) currency."""
        return self.symbol == NATIVE_SYMBOL

    def __str__(self) -> str:
        return f"{self.symbol}@{self.chain}"


def native_asset(chain: str) -> Asset:
    """The native premium currency of ``chain``."""
    return Asset(chain, NATIVE_SYMBOL)
