"""A single simulated blockchain.

Height is the clock: one height unit is one Δ of the synchronous model.
The simulation runner advances all chains in lockstep; transactions
submitted during round ``r`` execute at height ``r + 1`` and are visible to
every party at the start of round ``r + 1`` — exactly the paper's "valid
transactions ... will be included in a block and visible to participants
within a known, bounded time Δ".

Contracts are deployed onto a chain and may only touch that chain's ledger
(enforced by :class:`repro.chain.ledger.Ledger`).  Contract calls run inside
a journal frame; a :class:`repro.errors.ContractError` reverts the
transaction, leaving the ledger untouched and recording the failure in the
transaction receipt.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.chain.assets import Asset, native_asset
from repro.chain.block import Transaction
from repro.chain.events import Event
from repro.chain.ledger import Ledger
from repro.errors import ChainError, ContractError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.contracts.base import Contract
    from repro.crypto.keys import KeyRegistry


@dataclass(frozen=True)
class CallContext:
    """Per-call environment handed to contract methods."""

    sender: str
    height: int


class Blockchain:
    """One chain: ledger + contracts + event log + height."""

    def __init__(self, name: str, registry: "KeyRegistry") -> None:
        self.name = name
        self.registry = registry
        self.ledger = Ledger(name)
        self.height = 0
        self.events: list[Event] = []
        self.contracts: dict[str, "Contract"] = {}
        self._addr_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # assets
    # ------------------------------------------------------------------
    @property
    def native(self) -> Asset:
        """The chain's native currency (used for premiums)."""
        return native_asset(self.name)

    def asset(self, symbol: str) -> Asset:
        """An asset managed by this chain."""
        return Asset(self.name, symbol)

    # ------------------------------------------------------------------
    # contracts
    # ------------------------------------------------------------------
    def deploy(self, contract: "Contract") -> str:
        """Install ``contract`` and return its address."""
        address = f"{contract.kind}-{next(self._addr_counter)}"
        contract.install(self, address)
        self.contracts[address] = contract
        self.emit(address, "deployed", {})
        return address

    def contract_at(self, address: str) -> "Contract":
        """Look up a deployed contract."""
        try:
            return self.contracts[address]
        except KeyError:
            raise ChainError(f"no contract {address!r} on chain {self.name!r}") from None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, tx: Transaction) -> Transaction:
        """Run ``tx`` at the current height with revert semantics."""
        if tx.chain != self.name:
            raise ChainError(f"{tx} routed to wrong chain {self.name!r}")
        ctx = CallContext(sender=tx.sender, height=self.height)
        self.ledger.begin()
        events_mark = len(self.events)
        try:
            contract = self.contract_at(tx.contract)
            method: Callable[..., Any] = getattr(contract, tx.method, None)
            # Non-callable attributes (state fields, properties) are not an
            # ABI: calling one must read as "no such method", not as the
            # malformed-calldata TypeError the call below would raise.
            if not callable(method) or tx.method.startswith("_"):
                raise ContractError(f"no public method {tx.method!r}")
            try:
                method(ctx, **tx.args)
            except TypeError as err:
                # the ABI-decode failure of a real chain: bad calldata
                raise ContractError(f"malformed arguments: {err}") from err
        except (ContractError, ChainError) as err:
            self.ledger.rollback()
            del self.events[events_mark:]
            tx.receipt.status = "reverted"
            tx.receipt.error = str(err)
        else:
            self.ledger.commit()
            tx.receipt.status = "ok"
        tx.receipt.height = self.height
        return tx

    def advance(self, transactions: Iterable[Transaction] = ()) -> list[Transaction]:
        """Mine one block: bump height, apply ``transactions``, settle.

        Settlement (`on_tick`) runs after user transactions at the same
        height, so an action with deadline ``k`` can still land at height
        ``k`` while refunds for the deadline trigger at height ``k + 1``.
        """
        self.height += 1
        executed = [self.execute(tx) for tx in transactions]
        for contract in list(self.contracts.values()):
            contract.on_tick(self.height)
        return executed

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def emit(self, contract: str, name: str, data: dict[str, Any]) -> None:
        """Record an event at the current height."""
        self.events.append(Event(self.name, contract, name, self.height, dict(data)))

    def events_named(self, name: str) -> list[Event]:
        """All events with the given name, in order."""
        return [e for e in self.events if e.name == name]


class ChainView:
    """Read-only facade over a chain, handed to parties each round.

    Parties must treat everything reachable from a view as immutable; the
    facade exposes only query methods.  The view's height is the height at
    which the observation is taken (start of the party's round).
    """

    def __init__(self, chain: Blockchain) -> None:
        self._chain = chain

    @property
    def name(self) -> str:
        return self._chain.name

    @property
    def height(self) -> int:
        return self._chain.height

    @property
    def native(self) -> Asset:
        return self._chain.native

    def asset(self, symbol: str) -> Asset:
        return self._chain.asset(symbol)

    def balance(self, asset: Asset, account: str) -> int:
        return self._chain.ledger.balance(asset, account)

    def contract(self, address: str) -> "Contract":
        """The deployed contract object — read-only by convention."""
        return self._chain.contract_at(address)

    def events(self) -> tuple[Event, ...]:
        return tuple(self._chain.events)

    def events_named(self, name: str) -> list[Event]:
        return self._chain.events_named(name)
