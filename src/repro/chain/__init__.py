"""Blockchain substrate: assets, journaled ledgers, chains, and events.

This package models the minimum a cross-chain protocol needs from a
blockchain: tamper-proof per-chain ledgers, block height as synchronized
time (1 height = Δ), deterministic transaction execution with revert
semantics, and event logs.  Chains are mutually isolated — a contract can
only touch the ledger of the chain it lives on.
"""

from repro.chain.assets import Asset, NATIVE_SYMBOL, native_asset
from repro.chain.ledger import Ledger
from repro.chain.block import Transaction, Receipt
from repro.chain.events import Event
from repro.chain.blockchain import Blockchain, ChainView

__all__ = [
    "Asset",
    "NATIVE_SYMBOL",
    "native_asset",
    "Ledger",
    "Transaction",
    "Receipt",
    "Event",
    "Blockchain",
    "ChainView",
]
