"""Contract event logs.

Contracts emit :class:`Event` records; the chain timestamps them with the
height at which the emitting transaction (or settlement tick) executed.
Traces, tests, and the benchmark harness all read protocol progress from
these logs rather than poking at contract internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Event:
    """One log record emitted by a contract."""

    chain: str
    contract: str
    name: str
    height: int
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"[h={self.height} {self.chain}/{self.contract}] {self.name}({pairs})"
