"""repro — hedged cross-chain transactions.

A production-quality reproduction of Yingjie Xue and Maurice Herlihy,
*"Hedging Against Sore Loser Attacks in Cross-Chain Transactions"*
(PODC 2021, arXiv:2105.06322): a multi-chain simulator with contract-level
escrow, the base protocols the paper transforms (HTLC swaps, Herlihy '18
multi-party swaps, brokered deals, auctions), their hedged counterparts
with the paper's premium structures, a model-checking analog, and the
economic analysis layer (CRR premium pricing, rational-deviation games).

Quickstart::

    from repro.core import HedgedTwoPartySwap, extract_two_party_outcome
    from repro.protocols.instance import execute

    instance = HedgedTwoPartySwap().build()
    result = execute(instance)
    outcome = extract_two_party_outcome(instance, result)
    assert outcome.swapped and outcome.alice_premium_net == 0

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the paper-versus-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
