"""Hashkeys and signed path chains (Herlihy '18 / Xue-Herlihy '21).

A *hashkey* for hashlock ``h`` on arc ``(u, v)`` is a triple ``(s, q, σ)``
where ``s`` is the secret with ``H(s) = h``, ``q = (u_0, ..., u_k)`` is a
path in the swap digraph with ``u_0 = v`` (the redeemer on that arc) and
``u_k`` the leader who generated ``s``, and ``σ`` is a chain of signatures
authenticating the path.  A hashkey with path length ``|q|`` times out
``|q|·Δ`` after the start of its phase, which is what makes "extend the path,
present one hop further" always feasible for compliant parties.

The same signed-path machinery authenticates redemption-premium deposits
(§7.1), which carry a path but no secret, so the chain binds the *hashlock
digest* rather than the preimage.  :class:`SignedPath` stores vertices in
build order — leader first — while the paper writes paths redeemer-first;
:attr:`SignedPath.path` returns the paper's order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import Hashlock, Secret
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, sign, verify
from repro.errors import CryptoError


def _link_message(payload: str, vertices: tuple[str, ...], prev_tag: str) -> bytes:
    return f"{payload}|{','.join(vertices)}|{prev_tag}".encode("utf-8")


@dataclass(frozen=True)
class SignedPath:
    """An authenticated path chain.

    ``vertices`` is in build order (leader / originator first); each element
    of ``sigs`` is the signature of the corresponding vertex over the payload,
    the path prefix up to that vertex, and the previous signature tag.
    """

    payload: str
    vertices: tuple[str, ...]
    sigs: tuple[Signature, ...]

    @staticmethod
    def create(payload: str, keypair: KeyPair, vertex: str) -> "SignedPath":
        """Originate a chain at ``vertex`` (typically a leader)."""
        vertices = (vertex,)
        signature = sign(keypair, _link_message(payload, vertices, ""))
        return SignedPath(payload, vertices, (signature,))

    def extend(self, keypair: KeyPair, vertex: str) -> "SignedPath":
        """Append ``vertex`` to the chain, signing the extension."""
        vertices = self.vertices + (vertex,)
        prev_tag = self.sigs[-1].tag
        signature = sign(keypair, _link_message(self.payload, vertices, prev_tag))
        return SignedPath(self.payload, vertices, self.sigs + (signature,))

    @property
    def path(self) -> tuple[str, ...]:
        """The path in the paper's order: redeemer first, leader last."""
        return tuple(reversed(self.vertices))

    @property
    def length(self) -> int:
        """``|q|`` — the number of vertices on the path."""
        return len(self.vertices)

    @property
    def originator(self) -> str:
        """The vertex that originated the chain (the leader)."""
        return self.vertices[0]

    @property
    def head(self) -> str:
        """The most recent extender (the redeemer on the presented arc)."""
        return self.vertices[-1]

    def is_simple(self) -> bool:
        """Return True iff no vertex repeats."""
        return len(set(self.vertices)) == len(self.vertices)

    def verify(self, registry: KeyRegistry, public_of: dict[str, str]) -> bool:
        """Check every link of the chain.

        ``public_of`` maps party names to their registered public keys (this
        mapping is part of the public protocol agreement every contract is
        initialized with).  Returns False on any mismatch — wrong signer,
        broken chain, unknown vertex.
        """
        if len(self.vertices) != len(self.sigs) or not self.vertices:
            return False
        prev_tag = ""
        for i, vertex in enumerate(self.vertices):
            expected_public = public_of.get(vertex)
            if expected_public is None:
                return False
            signature = self.sigs[i]
            if signature.signer != expected_public:
                return False
            message = _link_message(self.payload, self.vertices[: i + 1], prev_tag)
            if not verify(registry, signature, message):
                return False
            prev_tag = signature.tag
        return True


@dataclass(frozen=True)
class HashKey:
    """A hashkey ``(s, q, σ)``: a secret plus an authenticated path."""

    secret: Secret
    chain: SignedPath = field(repr=False)

    @staticmethod
    def originate(secret: Secret, keypair: KeyPair, leader: str) -> "HashKey":
        """Create the leader's initial hashkey with trivial path ``(leader)``."""
        payload = f"hashkey:{secret.hashlock.digest}"
        return HashKey(secret, SignedPath.create(payload, keypair, leader))

    def extend(self, keypair: KeyPair, vertex: str) -> "HashKey":
        """Extend the hashkey's path by ``vertex`` (signing the extension)."""
        return HashKey(self.secret, self.chain.extend(keypair, vertex))

    @property
    def hashlock(self) -> Hashlock:
        """The lock this hashkey opens."""
        return self.secret.hashlock

    @property
    def path(self) -> tuple[str, ...]:
        """Path in paper order (redeemer first, leader last)."""
        return self.chain.path

    @property
    def length(self) -> int:
        """``|q|`` — determines the hashkey's timeout."""
        return self.chain.length

    @property
    def leader(self) -> str:
        """The leader who generated the secret."""
        return self.chain.originator

    @property
    def redeemer(self) -> str:
        """The party entitled to present this hashkey (head of the path)."""
        return self.chain.head

    def verify(
        self,
        registry: KeyRegistry,
        public_of: dict[str, str],
        hashlock: Hashlock,
        arcs: frozenset[tuple[str, str]] | None = None,
    ) -> bool:
        """Full contract-side validation of a presented hashkey.

        Checks the preimage against ``hashlock``, that the payload binds that
        same hashlock (so chains cannot be replayed across locks), that the
        path is simple, that consecutive vertices follow arcs of the swap
        digraph when ``arcs`` is given (``(q_i, q_{i+1})`` must be an arc,
        reading the path redeemer-first, per Figure 3b), and the signature
        chain.
        """
        if not hashlock.matches(self.secret.preimage):
            return False
        if self.chain.payload != f"hashkey:{hashlock.digest}":
            return False
        if not self.chain.is_simple():
            return False
        if arcs is not None:
            q = self.path
            for i in range(len(q) - 1):
                if (q[i], q[i + 1]) not in arcs:
                    return False
        return self.chain.verify(registry, public_of)


def require_valid_hashkey(
    hashkey: HashKey,
    registry: KeyRegistry,
    public_of: dict[str, str],
    hashlock: Hashlock,
    arcs: frozenset[tuple[str, str]] | None = None,
) -> None:
    """Raise :class:`CryptoError` unless the hashkey validates."""
    if not hashkey.verify(registry, public_of, hashlock, arcs):
        raise CryptoError("invalid hashkey")
