"""HMAC-based signatures over protocol messages.

``sign(keypair, message)`` produces a :class:`Signature`;
``verify(registry, signature, message)`` checks it.  Messages are byte
strings; helpers canonicalize structured data before signing.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import CryptoError


@dataclass(frozen=True)
class Signature:
    """A signature: the signer's public key and an HMAC-SHA256 tag."""

    signer: str
    tag: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sig({self.signer[:8]}…:{self.tag[:8]}…)"


def _mac(private: bytes, message: bytes) -> str:
    return hmac.new(private, message, hashlib.sha256).hexdigest()


def sign(keypair: KeyPair, message: bytes) -> Signature:
    """Sign ``message`` with ``keypair``; only the key holder can do this."""
    return Signature(signer=keypair.public, tag=_mac(keypair.private, message))


def verify(registry: KeyRegistry, signature: Signature, message: bytes) -> bool:
    """Return True iff ``signature`` is a valid signature of ``message``.

    Unknown signers verify as False rather than raising, so contracts can
    treat malformed hashkeys as simply invalid.
    """
    if not registry.knows(signature.signer):
        return False
    private = registry.private_for(signature.signer)
    expected = _mac(private, message)
    return hmac.compare_digest(expected, signature.tag)


def require_valid(registry: KeyRegistry, signature: Signature, message: bytes) -> None:
    """Raise :class:`CryptoError` unless the signature verifies."""
    if not verify(registry, signature, message):
        raise CryptoError(f"invalid signature by {signature.signer[:12]}…")
