"""Key pairs and the verification registry.

The simulation replaces asymmetric signatures with HMAC-SHA256.  Each
:class:`KeyPair` holds 32 private bytes; the public key is the SHA-256 of
the private key.  A :class:`KeyRegistry` (one per simulated world) maps
public keys to private keys so that ``verify`` can recompute MACs.  Parties
hold only their own :class:`KeyPair`; contracts hold only the registry.
Within the simulation this gives the standard signature guarantees: nobody
can produce a signature for a public key whose private bytes they do not
hold (see DESIGN.md substitution table).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto.hashing import sha256_hex
from repro.errors import CryptoError


@dataclass(frozen=True)
class KeyPair:
    """A signing key pair: 32 private bytes and the derived public key."""

    private: bytes
    owner: str = ""

    @staticmethod
    def generate(owner: str = "") -> "KeyPair":
        """Create a fresh random key pair."""
        # OS entropy is this API's whole point (live keys); campaign
        # scenarios use the deterministic from_seed path instead.
        return KeyPair(os.urandom(32), owner=owner)  # lint: disable=DET001

    @staticmethod
    def from_seed(seed: str, owner: str = "") -> "KeyPair":
        """Create a deterministic key pair from a text seed (tests only)."""
        return KeyPair(seed.encode("utf-8"), owner=owner)

    @property
    def public(self) -> str:
        """The public key: hex SHA-256 of the private bytes."""
        return sha256_hex(self.private)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyPair({self.owner or self.public[:8]})"


class KeyRegistry:
    """Maps public keys to private keys for signature verification.

    One registry is shared by all chains of a simulated world.  It plays the
    role mathematics plays for ECDSA: it lets anyone *verify* a signature
    without being able to *produce* one (parties never query the registry;
    only `repro.crypto.signatures.verify` does).
    """

    def __init__(self) -> None:
        self._by_public: dict[str, KeyPair] = {}
        self._owner_by_public: dict[str, str] = {}

    def register(self, keypair: KeyPair) -> None:
        """Add ``keypair`` so signatures by it can be verified."""
        self._by_public[keypair.public] = keypair
        if keypair.owner:
            self._owner_by_public[keypair.public] = keypair.owner

    def private_for(self, public: str) -> bytes:
        """Return the private bytes behind ``public`` (verification only)."""
        try:
            return self._by_public[public].private
        except KeyError:
            raise CryptoError(f"unknown public key {public[:12]}…") from None

    def owner_of(self, public: str) -> str:
        """Return the registered owner name for ``public`` (may be '')."""
        return self._owner_by_public.get(public, "")

    def knows(self, public: str) -> bool:
        """Return True if ``public`` is registered."""
        return public in self._by_public

    def __len__(self) -> int:
        return len(self._by_public)
