"""Cryptographic primitives for the simulated cross-chain protocols.

Hashlocks use real SHA-256.  Signatures use HMAC-SHA256 keyed by the
signer's private key; a process-local registry maps public keys to private
keys so that *verification* can recompute the MAC.  Parties never see each
other's private keys, so within the simulation a signature can only be
produced by its legitimate signer — the same guarantee ECDSA provides on a
real chain (see DESIGN.md, substitution table).
"""

from repro.crypto.hashing import Hashlock, Secret, sha256_hex
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, sign, verify
from repro.crypto.hashkeys import HashKey, SignedPath

__all__ = [
    "Hashlock",
    "Secret",
    "sha256_hex",
    "KeyPair",
    "KeyRegistry",
    "Signature",
    "sign",
    "verify",
    "HashKey",
    "SignedPath",
]
