"""Secrets and hashlocks (SHA-256).

A :class:`Secret` is the preimage ``s`` a leader generates; a
:class:`Hashlock` is ``h = H(s)``.  Contracts store hashlocks and accept any
byte string whose SHA-256 digest matches, exactly as an HTLC does.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a hex string."""
    # Hashing OS entropy is this primitive's whole point: hashlocks and
    # public keys digest live secrets (Secret.generate / KeyPair.generate),
    # which is HTLC protocol behavior, not reproducibility-digest material.
    # Campaign scenarios use the deterministic from_text/from_seed paths.
    return hashlib.sha256(data).hexdigest()  # lint: disable=FLOW001


@dataclass(frozen=True)
class Hashlock:
    """A SHA-256 hashlock ``h = H(s)``.

    Equality and hashing are by digest, so hashlocks can key dictionaries in
    contracts (e.g. the hashlock vector of a multi-party swap).
    """

    digest: str

    def matches(self, preimage: bytes) -> bool:
        """Return ``True`` iff ``preimage`` hashes to this lock."""
        return sha256_hex(preimage) == self.digest

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hashlock({self.digest[:10]}…)"


@dataclass(frozen=True)
class Secret:
    """A hashlock preimage.

    ``Secret.generate()`` draws 32 random bytes; deterministic tests can pass
    explicit bytes.  The corresponding lock is cached on first use.
    """

    preimage: bytes
    label: str = field(default="", compare=False)

    @staticmethod
    def generate(label: str = "") -> "Secret":
        """Create a fresh random secret (32 bytes of OS entropy)."""
        # OS entropy is this API's whole point (live secrets); campaign
        # scenarios use the deterministic from_text path instead.
        return Secret(os.urandom(32), label=label)  # lint: disable=DET001

    @staticmethod
    def from_text(text: str, label: str = "") -> "Secret":
        """Create a deterministic secret from a text seed (tests only)."""
        return Secret(text.encode("utf-8"), label=label)

    @property
    def hashlock(self) -> Hashlock:
        """The hashlock ``H(preimage)`` guarding this secret."""
        return Hashlock(sha256_hex(self.preimage))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = self.label or self.hashlock.digest[:8]
        return f"Secret({tag})"
