"""Actor base class.

Each round the runner calls :meth:`Actor.on_round` with the round index and
a :class:`repro.sim.world.WorldView`; the actor returns the transactions it
wants included at the next height.  Compliant protocol actors are written
reactively: they inspect public chain state and perform the next enabled
protocol step, which makes them automatically robust to counterparty
deviations (they simply never see the enabling condition).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.chain.block import Transaction
from repro.crypto.keys import KeyPair

if TYPE_CHECKING:  # pragma: no cover - avoids a package-level import cycle
    from repro.sim.world import WorldView


class Actor:
    """A protocol participant with a name and a signing key."""

    def __init__(self, name: str, keypair: KeyPair) -> None:
        self.name = name
        self.keypair = keypair

    # ------------------------------------------------------------------
    # runner interface
    # ------------------------------------------------------------------
    def on_round(self, rnd: int, view: "WorldView") -> list[Transaction]:
        """Return the transactions to submit this round (override)."""
        return []

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def tx(self, chain: str, contract: str, method: str, **args: Any) -> Transaction:
        """Build a transaction from this actor."""
        return Transaction(
            chain=chain, sender=self.name, contract=contract, method=method, args=args
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"
