"""Parties: actors driven by the synchronous runner, plus deviations.

An :class:`Actor` is an active, autonomous participant.  Compliant protocol
actors (in `repro.protocols` and `repro.core`) subclass it; adversarial
behaviour is expressed by wrapping any actor in a
:class:`repro.parties.strategies.Deviant`, which drops some or all of the
wrapped actor's transactions — the contract-constrained adversary of the
paper's threat model (§3.2: contracts enforce ordering, timing and
well-formedness, so Byzantine parties are limited to choosing which legal
actions to perform and when).
"""

from repro.parties.base import Actor
from repro.parties.strategies import Deviant, Laggard, halt_at, lag_by, skip_methods

__all__ = ["Actor", "Deviant", "Laggard", "halt_at", "lag_by", "skip_methods"]
