"""Deviation strategies: the contract-constrained adversary.

The paper's threat model (§3.2) restricts Byzantine parties to transactions
that individual contracts accept, so the adversary's whole power is choosing
which protocol actions to *omit* (a sore loser halts partway) or which
extra legal actions to attempt.  :class:`Deviant` wraps any compliant actor
and filters its output:

- ``halt_round`` — submit nothing from that round on (the classic sore
  loser: "one party decides to halt participation partway through"),
- ``skip`` — drop transactions matching method-name / chain / contract
  patterns (selective deviation, e.g. "never escrow on arc (C,A)"),
- ``extra`` — inject additional transactions at given rounds (e.g. a
  cheating auctioneer publishing the losing bidder's hashkey).

The model checker enumerates these wrappers exhaustively for small
protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.chain.block import Transaction
from repro.parties.base import Actor

if TYPE_CHECKING:  # pragma: no cover - avoids a package-level import cycle
    from repro.sim.world import WorldView

SkipPredicate = Callable[[Transaction], bool]


@dataclass(frozen=True)
class SkipRule:
    """Matches transactions to drop; ``None`` fields match anything."""

    method: str | None = None
    chain: str | None = None
    contract: str | None = None

    def matches(self, tx: Transaction) -> bool:
        return (
            (self.method is None or tx.method == self.method)
            and (self.chain is None or tx.chain == self.chain)
            and (self.contract is None or tx.contract == self.contract)
        )


class Deviant(Actor):
    """An adversarial wrapper around a compliant actor."""

    def __init__(
        self,
        inner: Actor,
        halt_round: int | None = None,
        skip_rules: tuple[SkipRule, ...] = (),
        skip_predicate: SkipPredicate | None = None,
        extra: dict[int, list[Transaction]] | None = None,
    ) -> None:
        super().__init__(inner.name, inner.keypair)
        self.inner = inner
        self.halt_round = halt_round
        self.skip_rules = skip_rules
        self.skip_predicate = skip_predicate
        self.extra = extra or {}

    def on_round(self, rnd: int, view: "WorldView") -> list[Transaction]:
        injected = list(self.extra.get(rnd, ()))
        if self.halt_round is not None and rnd >= self.halt_round:
            return injected
        planned = self.inner.on_round(rnd, view)
        kept = [tx for tx in planned if not self._drops(tx)]
        return kept + injected

    def _drops(self, tx: Transaction) -> bool:
        if any(rule.matches(tx) for rule in self.skip_rules):
            return True
        return bool(self.skip_predicate and self.skip_predicate(tx))

    def describe(self) -> str:
        """Human-readable summary for traces and checker reports."""
        parts = []
        if self.halt_round is not None:
            parts.append(f"halts at round {self.halt_round}")
        if self.skip_rules:
            parts.append(
                "skips " + ", ".join(r.method or "<any>" for r in self.skip_rules)
            )
        if self.skip_predicate:
            parts.append("skips by predicate")
        if self.extra:
            parts.append(f"injects at rounds {sorted(self.extra)}")
        return f"{self.name}: " + ("; ".join(parts) or "compliant")


def halt_at(inner: Actor, rnd: int) -> Deviant:
    """A sore loser who stops participating from round ``rnd`` on."""
    return Deviant(inner, halt_round=rnd)


def skip_methods(inner: Actor, *methods: str) -> Deviant:
    """Drop every transaction calling one of ``methods``."""
    return Deviant(inner, skip_rules=tuple(SkipRule(method=m) for m in methods))


class Laggard(Actor):
    """Delays every action by ``lag`` rounds (§1: "parties may even have an
    incentive to run the protocol as slowly as possible").

    The paper's timeouts are tight — each step gets exactly Δ — so any
    positive lag makes a party miss its deadlines, and the contracts treat
    it exactly like a sore loser: its late transactions revert and the
    premium machinery compensates the counterparties.  This wrapper lets
    tests and the checker verify that going slow is never profitable.

    The inner actor still observes fresh views each round (it decides with
    current information); only its *submissions* are postponed.
    """

    def __init__(self, inner: Actor, lag: int) -> None:
        super().__init__(inner.name, inner.keypair)
        self.inner = inner
        self.lag = max(0, lag)
        self._queue: dict[int, list[Transaction]] = {}

    def on_round(self, rnd: int, view: "WorldView") -> list[Transaction]:
        produced = self.inner.on_round(rnd, view)
        if produced:
            self._queue.setdefault(rnd + self.lag, []).extend(produced)
        return self._queue.pop(rnd, [])


def lag_by(inner: Actor, lag: int) -> Laggard:
    """Convenience constructor mirroring :func:`halt_at`."""
    return Laggard(inner, lag)
