"""Rational (opportunistic) actors: deviate only when it pays.

§1: "a sudden decrease in an asset's value may motivate a party to abandon
a swap midway ... if either asset diminishes significantly in relative
value to the other, then one party has an incentive to quit at the other's
expense."

:class:`Opportunist` wraps a compliant actor with a *decision function*
evaluated each round: while it returns True the inner actor runs; the first
False halts participation permanently (a rational sore loser does not come
back).

The decision calculus is packaged as a :class:`UtilityModel` — two
view-functions, the *marginal* value of completing the protocol and the
cost of walking away right now — so one rational wrapper serves every
protocol family.  Both sides are read *live* from contract state through
two generic inspectors:

- :func:`pending_completion_gain` — the flows still in play: principal
  the party has yet to receive counts for completing, principal it has
  yet to lock counts against, and *sunk* flows count zero (an escrowed
  swap principal the counterparties can redeem without the walker, a
  payment already collected).  Marginal accounting is what keeps the
  actor rational over the whole run: once only its own redemption is
  left, completing dominates at any shock — a naive whole-protocol
  valuation would walk out of collecting its own money,
- :func:`held_premium_stake` — the premiums a party currently has at risk
  (its hedged-escrow premium, its swap-arc escrow/redemption premiums, its
  broker E/T/R deposits, an auctioneer's per-bid endowment exposure), which
  walking forfeits to the counterparties.

:func:`rational_bob` — the §1 Bob for the two-party swaps — is now a thin
instance of the framework: he compares the value of completing the swap
against the premium he forfeits by walking, under an exogenous price path
for Alice's asset.  :func:`swap_party_model` generalizes the same calculus
to any party of any hedged swap/deal protocol (two-party, multi-party,
broker), :func:`auction_model` to the §9 auctioneer, and
:func:`coalition_model` to *joint* pivots — a colluding pair whose
internal transfers and member-to-member premium forfeits net to zero, so
only externally-forfeited premiums deter the collusive walk.

With a zero premium (the base protocols) any price drop makes walking
optimal; a hedged premium stake of S makes walking irrational for all
value drops smaller than S — the paper's deterrence claim, which
`benchmarks/bench_rational.py` measures on live two-party runs and
`repro.campaign.ablation` maps across the premium × shock grid for every
family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.chain.block import Transaction
from repro.parties.base import Actor

DecisionFn = Callable[[int, "WorldView"], bool]
PricePath = Callable[[int], float]
#: per-unit asset price under an exogenous path: (asset, height) -> value.
AssetPriceFn = Callable[[object, int], float]
#: (chain, address) pairs of the contracts a model may inspect.
ContractRefs = Iterable[tuple[str, str]]


class Opportunist(Actor):
    """Runs the inner actor while ``decide(rnd, view)`` stays True."""

    def __init__(self, inner: Actor, decide: DecisionFn) -> None:
        super().__init__(inner.name, inner.keypair)
        self.inner = inner
        self.decide = decide
        self.walked_at: int | None = None

    def on_round(self, rnd: int, view) -> list[Transaction]:
        if self.walked_at is not None:
            return []
        if not self.decide(rnd, view):
            self.walked_at = rnd
            return []
        return self.inner.on_round(rnd, view)


def price_shock(base: float, shock_fraction: float, at_height: int) -> PricePath:
    """A price path that drops ``base`` by ``shock_fraction`` at a height."""

    def price(height: int) -> float:
        return base * (1.0 - shock_fraction) if height >= at_height else base

    return price


@dataclass(frozen=True)
class TokenPrices:
    """Exogenous per-unit prices with one optional shocked token.

    Native (premium) assets are the numeraire at 1.0; every other token
    takes its value from ``base`` (default 1.0), and the ``shocked`` token
    drops by ``fraction`` from ``at_height`` on.  Instances are callables
    with the :data:`AssetPriceFn` signature, usable both inside a
    :class:`UtilityModel` and to value final payoffs
    (:meth:`repro.sim.payoff.PayoffSheet.realized_utility`).
    """

    base: tuple[tuple[str, float], ...] = ()
    shocked: str | None = None
    fraction: float = 0.0
    at_height: int = 0

    def __call__(self, asset, height: int) -> float:
        if getattr(asset, "is_native", False):
            return 1.0
        symbol = getattr(asset, "symbol", str(asset))
        # Hot path (every per-round decision and utility term): cache the
        # base dict in the frozen instance's __dict__, like cached_property.
        base = self.__dict__.get("_base_map")
        if base is None:
            base = dict(self.base)
            self.__dict__["_base_map"] = base
        value = base.get(symbol, 1.0)
        if self.shocked == symbol and height >= self.at_height:
            value *= 1.0 - self.fraction
        return value


@dataclass(frozen=True)
class UtilityModel:
    """One party's rational-deviation calculus, evaluated per round.

    ``completion_gain(view)`` is the value of seeing the protocol through
    (what the party receives minus what it gives, at current prices);
    ``walk_cost(view)`` is what walking away *right now* destroys (premium
    stakes forfeited plus own escrowed principals abandoned).  The rational
    rule — continue iff ``completion_gain >= -walk_cost`` — walks exactly
    when quitting at the counterparties' expense beats finishing; ties
    complete (walking has no strict advantage).
    """

    party: str
    completion_gain: Callable[[object], float] = field(repr=False)
    walk_cost: Callable[[object], float] = field(repr=False)

    def decide(self, rnd: int, view) -> bool:
        return self.completion_gain(view) >= -self.walk_cost(view)


def rational_party(inner: Actor, model: UtilityModel) -> Opportunist:
    """Wrap a compliant actor with a utility model's walk rule."""
    return Opportunist(inner, model.decide)


# ----------------------------------------------------------------------
# generic contract-state inspectors
# ----------------------------------------------------------------------
def held_premium_stake(
    party: str,
    view,
    contracts: ContractRefs,
    exclude_beneficiaries: frozenset[str] = frozenset(),
) -> float:
    """Premiums ``party`` currently has at risk across the given contracts.

    A held deposit refunds when its depositor completes its role and is
    awarded to the counterparties when it walks — so the held total is
    exactly the walk-forfeit the paper's premiums are sized to create.
    Contract kinds are matched structurally, so one inspector covers every
    hedged protocol in the library.

    ``exclude_beneficiaries`` drops deposits whose forfeit would flow to
    one of the named parties.  A coalition pricing a *joint* walk passes
    its own member set: a premium forfeited member-to-member stays inside
    the coalition, so it deters nothing — which is exactly why collusive
    walks need larger premiums than single-pivot ones.
    """
    total = 0.0
    for chain_name, address in contracts:
        contract = view.chain(chain_name).contract(address)
        kind = getattr(contract, "kind", "")
        if kind == "hedged-escrow":
            # The redeemer's premium compensates the principal's owner.
            if (
                contract.redeemer == party
                and contract.premium_state == "held"
                and contract.principal_owner not in exclude_beneficiaries
            ):
                total += contract.premium_amount
        elif kind == "hedged-swap-arc":
            # u's escrow premium compensates v; v's redemption deposits
            # compensate u for its locked asset.
            if (
                contract.u == party
                and contract.escrow_premium_state == "held"
                and contract.v not in exclude_beneficiaries
            ):
                total += contract.escrow_premium_amount
            if contract.v == party and contract.u not in exclude_beneficiaries:
                total += sum(
                    deposit.amount
                    for deposit in contract.redemption_deposits.values()
                    if deposit.state == "held"
                )
        elif kind == "hedged-broker":
            # An escrower's E deposit reimburses the broker's passthrough;
            # the broker's T deposit compensates the asset's owner; an
            # rdeposit on arc (x, y) compensates x for its locked asset.
            if (
                contract.owner == party
                and contract.escrow_premium_state == "held"
                and contract.broker not in exclude_beneficiaries
            ):
                total += contract.escrow_premium_amount
            if (
                contract.broker == party
                and contract.trading_premium_state == "held"
                and contract.owner not in exclude_beneficiaries
            ):
                total += contract.trading_premium_amount
            total += sum(
                deposit.amount
                for (arc, _), deposit in contract.rdeposits.items()
                if arc[1] == party
                and deposit.state == "held"
                and arc[0] not in exclude_beneficiaries
            )
        elif kind == "auction-coin":
            # The auctioneer's endowment pays each actual bidder p if she
            # wrecks the auction; until settlement that exposure is p per
            # bid already placed (a bidder who never bid is owed nothing).
            if (
                contract.auctioneer == party
                and contract.endowment
                and not contract.settled
            ):
                total += contract.premium * sum(
                    1
                    for bidder in contract.bids
                    if bidder not in exclude_beneficiaries
                )
    return total


def completion_gain_terms(
    party: str,
    view,
    contracts: ContractRefs,
    coalition: frozenset[str] = frozenset(),
):
    """The pending completion flows as ``(sign, amount, asset)`` terms.

    This is the symbolic form of :func:`pending_completion_gain`: each
    yielded term contributes ``sign · amount · price_of(asset, height)``
    to the marginal completion gain, in contract-directory order.  Keeping
    the term enumeration separate from the price fold gives the vectorized
    ablation kernel (`repro.campaign.ablation.kernels`) the *same* flow
    list the live simulator folds — one source of truth, so replaying the
    fold under a grid of price paths is bit-identical by construction.
    """
    for chain_name, address in contracts:
        contract = view.chain(chain_name).contract(address)
        kind = getattr(contract, "kind", "")
        if kind == "hedged-escrow":
            if contract.redeemer == party and contract.principal_state in (
                "absent",
                "escrowed",
            ):
                if not (
                    contract.principal_state == "escrowed"
                    and contract.principal_owner in coalition
                ):
                    yield (
                        1,
                        contract.principal_amount,
                        contract.principal_asset,
                    )
            if (
                contract.principal_owner == party
                and contract.principal_state == "absent"
            ):
                yield (-1, contract.principal_amount, contract.principal_asset)
        elif kind == "hedged-swap-arc":
            if contract.v == party and contract.principal_state in (
                "absent",
                "escrowed",
            ):
                if not (
                    contract.principal_state == "escrowed"
                    and contract.u in coalition
                ):
                    yield (1, contract.amount, contract.asset)
            if contract.u == party and contract.principal_state == "absent":
                yield (-1, contract.amount, contract.asset)
        elif kind == "hedged-broker":
            if contract.escrow_state in ("absent", "escrowed"):
                for recipient, amount in contract.payouts:
                    if recipient == party:
                        yield (1, amount, contract.asset)
            if (
                contract.owner == party
                and contract.escrow_state in ("absent", "escrowed")
                and party not in contract.accepted
            ):
                yield (-1, contract.amount, contract.asset)


def pending_completion_gain(
    party: str,
    view,
    contracts: ContractRefs,
    price_of: AssetPriceFn,
    coalition: frozenset[str] = frozenset(),
) -> float:
    """The marginal value of completing, from here: pending in minus out.

    Only unresolved flows count.  Principal the party has yet to receive
    is a gain of completing; principal it has yet to *lock* is a cost
    (walking keeps it); principal already escrowed in a swap is sunk — the
    counterparties can redeem it whether the party continues or not — and
    contributes nothing either way.  The broker deal differs on that last
    point: redemption there needs every party's hashkey, so an escrowed
    deal asset stays recoverable (and hence a completion cost) until the
    owner's own key is out.

    ``coalition`` adjusts the sunk-escrow rule for joint valuations: an
    asset a coalition member escrowed toward *another member* is not sunk
    for the coalition (a joint walk refunds it inside the member set, a
    completion merely moves it inside the member set), so the receiving
    member's pending-in term is dropped — summing members' gains then
    nets every internal transfer to zero.  Arcs whose escrow is still
    absent already cancel in the sum (+value for the redeemer, −value for
    the owner), and broker flows cancel through the owner's recoverable
    cost term, so this is the only internal case needing a rule.

    The flow enumeration lives in :func:`completion_gain_terms`; this is
    the price fold over it, term order preserved.
    """
    total = 0.0
    for sign, amount, asset in completion_gain_terms(
        party, view, contracts, coalition
    ):
        value = amount * price_of(asset, view.height)
        if sign > 0:
            total += value
        else:
            total -= value
    return total


# ----------------------------------------------------------------------
# role models
# ----------------------------------------------------------------------
def swap_party_model(
    party: str, prices: AssetPriceFn, contracts: ContractRefs
) -> UtilityModel:
    """Rational actor for one party of any hedged swap/deal protocol.

    Fully generic: the marginal completion gain and the walk-forfeit are
    both read live from the given contracts, so the same model serves a
    two-party escrow pair, a multi-party arc set, and a broker deal —
    zero stake before anything is deposited, the full escrow + redemption
    exposure mid-protocol, pure collection (never walk) once only the
    party's own redemptions remain.
    """

    def gain(view) -> float:
        return pending_completion_gain(party, view, contracts, prices)

    def walk_cost(view) -> float:
        return held_premium_stake(party, view, contracts)

    return UtilityModel(party, gain, walk_cost)


def two_party_model(
    spec, prices: AssetPriceFn, contracts: ContractRefs
) -> UtilityModel:
    """Rational Bob for a two-party swap spec (a :func:`swap_party_model`)."""
    return swap_party_model(spec.bob, prices, contracts)


def coalition_model(
    parties: Iterable[str], prices: AssetPriceFn, contracts: ContractRefs
) -> UtilityModel:
    """One joint rational calculus for a colluding pivot set.

    The coalition walks (every member halts in the same round) exactly
    when the *joint* completion gain falls below the joint walk cost —
    both summed over members with internal flows netted out:

    - transfers between members contribute nothing to the joint gain
      (see :func:`pending_completion_gain`'s ``coalition`` rule), and
    - premiums that would forfeit member-to-member deter nothing (see
      :func:`held_premium_stake`'s ``exclude_beneficiaries``).

    Only externally-forfeited premiums remain as the deterrent, so a
    coalition's deterrence threshold π* is at least the single-pivot one —
    the collusive frontier the ablation refine engine prices.  Wrap each
    member with :func:`rational_party` around the *same* model instance so
    the decisions stay synchronized.
    """
    members = frozenset(parties)

    def gain(view) -> float:
        return sum(
            pending_completion_gain(p, view, contracts, prices, coalition=members)
            for p in sorted(members)
        )

    def walk_cost(view) -> float:
        return sum(
            held_premium_stake(p, view, contracts, exclude_beneficiaries=members)
            for p in sorted(members)
        )

    return UtilityModel("+".join(sorted(members)), gain, walk_cost)


def auction_model(spec, prices: AssetPriceFn, contracts: ContractRefs) -> UtilityModel:
    """Rational auctioneer for the §9 ticket auction.

    Completing trades the escrowed tickets for the best bid; walking
    (never declaring a winner) wrecks the auction, which refunds the
    tickets and bids but pays each bidder ``p`` from her endowment — the
    held-stake inspector's ``auction-coin`` rule.
    """
    best_bid = max(spec.bids.values(), default=0)

    def gain(view) -> float:
        coin = view.chain(spec.coin_chain).asset(spec.coin_token)
        ticket = view.chain(spec.ticket_chain).asset(spec.ticket_token)
        return best_bid * prices(coin, view.height) - spec.tickets * prices(
            ticket, view.height
        )

    def walk_cost(view) -> float:
        return held_premium_stake(spec.auctioneer, view, contracts)

    return UtilityModel(spec.auctioneer, gain, walk_cost)


def rational_bob(
    inner: Actor,
    spec,
    price_of_a: PricePath,
    price_of_b: float = 1.0,
    premium_contract: tuple[str, str] | None = None,
) -> Opportunist:
    """The §1 rational Bob for a two-party swap (legacy interface).

    Each round Bob values completing the swap at
    ``amount_a · price_of_a(height) − amount_b · price_of_b`` (what he
    receives minus what he gives).  Walking away costs him the premium he
    stands to forfeit — ``p_b`` once his deposit is held by the hedged
    protocol's apricot contract (pass its ``(chain, address)`` as
    ``premium_contract``), nothing in the base protocol (pass ``None``).
    He continues iff completing is at least as good as walking.

    This is :func:`two_party_model` with scalar price paths and the stake
    restricted to the one premium contract.
    """

    def gain(view) -> float:
        return spec.amount_a * price_of_a(view.height) - spec.amount_b * price_of_b

    def walk_cost(view) -> float:
        if premium_contract is None:
            return 0.0
        return held_premium_stake(inner.name, view, (premium_contract,))

    return rational_party(inner, UtilityModel(inner.name, gain, walk_cost))
