"""Rational (opportunistic) actors: deviate only when it pays.

§1: "a sudden decrease in an asset's value may motivate a party to abandon
a swap midway ... if either asset diminishes significantly in relative
value to the other, then one party has an incentive to quit at the other's
expense."

:class:`Opportunist` wraps a compliant actor with a *decision function*
evaluated each round: while it returns True the inner actor runs; the first
False halts participation permanently (a rational sore loser does not come
back).  :func:`rational_bob` builds the §1 Bob for the two-party swaps: he
compares the value of completing the swap against the premium he forfeits
by walking, under an exogenous price path for Alice's asset.

With a zero premium (the base protocol) any price drop makes walking
optimal; a hedged premium of fraction π makes walking irrational for all
drops smaller than π — which is exactly the paper's deterrence claim, and
`benchmarks/bench_rational.py` measures it on live protocol runs.
"""

from __future__ import annotations

from typing import Callable

from repro.chain.block import Transaction
from repro.parties.base import Actor

DecisionFn = Callable[[int, "WorldView"], bool]
PricePath = Callable[[int], float]


class Opportunist(Actor):
    """Runs the inner actor while ``decide(rnd, view)`` stays True."""

    def __init__(self, inner: Actor, decide: DecisionFn) -> None:
        super().__init__(inner.name, inner.keypair)
        self.inner = inner
        self.decide = decide
        self.walked_at: int | None = None

    def on_round(self, rnd: int, view) -> list[Transaction]:
        if self.walked_at is not None:
            return []
        if not self.decide(rnd, view):
            self.walked_at = rnd
            return []
        return self.inner.on_round(rnd, view)


def price_shock(base: float, shock_fraction: float, at_height: int) -> PricePath:
    """A price path that drops ``base`` by ``shock_fraction`` at a height."""

    def price(height: int) -> float:
        return base * (1.0 - shock_fraction) if height >= at_height else base

    return price


def rational_bob(
    inner: Actor,
    spec,
    price_of_a: PricePath,
    price_of_b: float = 1.0,
    premium_contract: tuple[str, str] | None = None,
) -> Opportunist:
    """The §1 rational Bob for a two-party swap.

    Each round Bob values completing the swap at
    ``amount_a · price_of_a(height) − amount_b · price_of_b`` (what he
    receives minus what he gives).  Walking away costs him the premium he
    stands to forfeit — ``p_b`` once his deposit is held by the hedged
    protocol's apricot contract (pass its ``(chain, address)`` as
    ``premium_contract``), nothing in the base protocol (pass ``None``).
    He continues iff completing is at least as good as walking.
    """

    def decide(rnd: int, view) -> bool:
        gain = spec.amount_a * price_of_a(view.height) - spec.amount_b * price_of_b
        walk_cost = 0.0
        if premium_contract is not None:
            chain_name, address = premium_contract
            contract = view.chain(chain_name).contract(address)
            if contract.premium_state == "held":
                walk_cost = float(spec.premium_b)
        return gain >= -walk_cost

    return Opportunist(inner, decide)
