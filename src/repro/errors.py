"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Contract execution errors derive
from :class:`ContractError`; raising one inside a contract call aborts the
transaction and rolls back all ledger effects, mirroring EVM ``revert``
semantics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class LedgerError(ReproError):
    """A ledger operation could not be performed (e.g. insufficient funds)."""


class InsufficientFunds(LedgerError):
    """An account tried to move more of an asset than it holds."""


class UnknownAsset(LedgerError):
    """An asset identifier is not registered on this chain."""


class ChainError(ReproError):
    """A blockchain-level operation failed (bad height, unknown contract...)."""


class ContractError(ReproError):
    """Raised inside contract code to revert the enclosing transaction.

    Analogous to ``revert`` on Ethereum: all state changes performed by the
    transaction are rolled back and the error message is recorded in the
    transaction receipt.
    """


class AuthError(ContractError):
    """The caller is not authorized to perform a contract action."""


class TimeoutViolation(ContractError):
    """An action arrived after its deadline (or before it becomes legal)."""


class StateError(ContractError):
    """A contract method was called in an incompatible contract state."""


class CryptoError(ReproError):
    """Signature or hashlock verification failed."""


class ProtocolError(ReproError):
    """A protocol harness was configured inconsistently."""


class GraphError(ReproError):
    """A swap digraph does not satisfy a structural requirement."""


class CheckerError(ReproError):
    """The model-checking explorer detected a property violation."""
