"""Adversary strategy generators for the model checker.

A *strategy* is a named transform turning a compliant actor into a
deviant one.  The generators below enumerate the contract-constrained
adversary (§3.2): halting at every round, skipping every subset of action
types, and their combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable

from repro.parties.base import Actor
from repro.parties.strategies import Deviant, Laggard, SkipRule

Transform = Callable[[Actor], Actor]


@dataclass(frozen=True)
class NamedStrategy:
    """A labelled actor transform (label shows up in reports)."""

    label: str
    transform: Transform


def halt_strategies(horizon: int, step: int = 1) -> list[NamedStrategy]:
    """Sore-loser halts at every round of the protocol."""
    out = []
    for rnd in range(0, horizon, step):
        out.append(
            NamedStrategy(
                label=f"halt@{rnd}",
                transform=lambda actor, r=rnd: Deviant(actor, halt_round=r),
            )
        )
    return out


def skip_strategies(methods: tuple[str, ...], max_subset: int = 2) -> list[NamedStrategy]:
    """Skip every non-empty subset of the given action types (≤ max_subset)."""
    out = []
    for size in range(1, min(max_subset, len(methods)) + 1):
        for subset in combinations(methods, size):
            rules = tuple(SkipRule(method=m) for m in subset)
            out.append(
                NamedStrategy(
                    label="skip:" + "+".join(subset),
                    transform=lambda actor, rr=rules: Deviant(actor, skip_rules=rr),
                )
            )
    return out


def lag_strategies(max_lag: int = 3) -> list[NamedStrategy]:
    """Timing adversaries: delay every action by 1..max_lag rounds (§1's
    "run the protocol as slowly as possible" incentive)."""
    return [
        NamedStrategy(
            label=f"lag+{lag}",
            transform=lambda actor, rounds=lag: Laggard(actor, rounds),
        )
        for lag in range(1, max_lag + 1)
    ]


def full_strategy_space(
    horizon: int,
    methods: tuple[str, ...],
    halt_step: int = 1,
    max_skip_subset: int = 2,
    max_lag: int = 2,
) -> list[NamedStrategy]:
    """Halts, action-subset skips, and lags (the checker's default space)."""
    return (
        halt_strategies(horizon, halt_step)
        + skip_strategies(methods, max_skip_subset)
        + lag_strategies(max_lag)
    )
