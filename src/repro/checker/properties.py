"""Property predicates asserted on every explored scenario.

Each property is a callable ``(instance, result, adversaries) -> list[str]``
returning human-readable violation messages (empty = holds).  They encode
the paper's lemmas:

- :func:`no_stuck_escrow` — liveness: "no asset is escrowed forever":
  after the final settlement tick no contract still holds any balance,
- :func:`two_party_hedged` — Definition 1 / §5.2 payoff claims for every
  compliant party,
- :func:`multi_party_lemmas` — Lemmas 1–6: safety (no compliant party
  gives an asset without receiving its incoming ones) and the hedged bound
  (net premium ≥ p per escrowed-but-unredeemed asset; ≥ 0 otherwise),
- :func:`broker_bounds` — the §8.2 compensation claims,
- :func:`auction_lemmas` — Lemmas 7 and 8 plus the §9.2 premium payout.
"""

from __future__ import annotations

from repro.core.hedged_multi_party import extract_multi_party_outcome
from repro.core.outcomes import extract_two_party_outcome
from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult


def no_stuck_escrow(
    instance: ProtocolInstance, result: RunResult, adversaries: frozenset[str]
) -> list[str]:
    """Every contract must end empty: escrows resolve to redeem or refund."""
    violations = []
    for chain in instance.world.chains.values():
        for (asset, account), balance in chain.ledger.snapshot().items():
            if account in chain.contracts and balance != 0:
                violations.append(
                    f"{chain.name}/{account} still holds {balance} {asset}"
                )
    return violations


def compliant_txs_never_revert(
    instance: ProtocolInstance, result: RunResult, adversaries: frozenset[str]
) -> list[str]:
    """Compliant actors must never have a transaction rejected."""
    return [
        f"compliant tx reverted: {tx} ({tx.receipt.error})"
        for tx in result.reverted()
        if tx.sender not in adversaries
    ]


def two_party_hedged(
    instance: ProtocolInstance, result: RunResult, adversaries: frozenset[str]
) -> list[str]:
    """Definition 1 for the hedged two-party swap."""
    from repro.core.outcomes import compliant_payoff_acceptable

    spec = instance.meta["spec"]
    outcome = extract_two_party_outcome(instance, result)
    violations = []
    for party in (spec.alice, spec.bob):
        if party in adversaries:
            continue
        if not compliant_payoff_acceptable(outcome, party, spec):
            violations.append(
                f"{party}: unacceptable payoff (premium_net="
                f"{outcome.alice_premium_net if party == spec.alice else outcome.bob_premium_net}, "
                f"swapped={outcome.swapped})"
            )
    if not adversaries and not outcome.swapped:
        violations.append("liveness: compliant run did not swap")
    return violations


def multi_party_lemmas(
    instance: ProtocolInstance, result: RunResult, adversaries: frozenset[str]
) -> list[str]:
    """Lemmas 1–6 for the hedged multi-party swap."""
    outcome = extract_multi_party_outcome(instance, result)
    violations = []
    for party in outcome.parties:
        if party in adversaries:
            continue
        if not outcome.safety_holds(party):
            violations.append(f"{party}: safety violated (gave without receiving)")
        if not outcome.hedged_holds(party):
            violations.append(
                f"{party}: hedged bound violated (net={outcome.premium_net[party]}, "
                f"unredeemed={outcome.unredeemed_escrow_count(party)}, p={outcome.premium})"
            )
    if not adversaries:
        if not outcome.all_redeemed:
            violations.append("liveness: compliant run left arcs unredeemed")
        if any(net != 0 for net in outcome.premium_net.values()):
            violations.append(f"Lemma 1: premiums not all refunded: {outcome.premium_net}")
    return violations


def broker_bounds(
    instance: ProtocolInstance, result: RunResult, adversaries: frozenset[str]
) -> list[str]:
    """§8.2 compensation bounds for the hedged broker."""
    from repro.core.hedged_broker import extract_broker_outcome

    spec = instance.meta["spec"]
    out = extract_broker_outcome(instance, result)
    violations = []

    def check_escrower(party: str, state: str) -> None:
        if party in adversaries:
            return
        # locked-but-unpaid escrowers are owed at least p
        need = out.premium if (state == "refunded" and not out.completed) else 0
        if out.premium_net[party] < need:
            violations.append(
                f"{party}: net {out.premium_net[party]} < required {need}"
            )

    check_escrower(spec.seller, out.ticket_state)
    check_escrower(spec.buyer, out.coin_state)
    if spec.broker not in adversaries and out.premium_net[spec.broker] < 0:
        violations.append(f"{spec.broker}: net {out.premium_net[spec.broker]} < 0")
    # principal safety
    if not out.completed:
        if spec.seller not in adversaries and out.tickets_delta[spec.seller] != 0:
            violations.append(f"{spec.seller} lost tickets in a failed deal")
        if spec.buyer not in adversaries and out.coins_delta[spec.buyer] != 0:
            violations.append(f"{spec.buyer} lost coins in a failed deal")
    if not adversaries and not out.completed:
        violations.append("liveness: compliant deal did not complete")
    return violations


def bootstrap_hedged(
    instance: ProtocolInstance, result: RunResult, adversaries: frozenset[str]
) -> list[str]:
    """§6 claims: a renege costs only the deviator, at any stage.

    Premium/deposit flows are zero-sum, a compliant party never ends with a
    negative native flow (compensation covers any lockup it suffered), and
    an all-compliant ladder completes every stage and swaps.
    """
    from repro.core.bootstrap import extract_bootstrap_outcome

    spec = instance.meta["spec"]
    out = extract_bootstrap_outcome(instance, result)
    payoffs = result.payoffs
    token_a = instance.world.chain(spec.chain_a).asset(spec.token_a)
    token_b = instance.world.chain(spec.chain_b).asset(spec.token_b)
    own = {spec.alice: (token_a, spec.amount_b, token_b),
           spec.bob: (token_b, spec.amount_a, token_a)}
    violations = []
    if sum(out.premium_net.values()) != 0:
        violations.append(f"premium flows not zero-sum: {out.premium_net}")
    for party in (spec.alice, spec.bob):
        if party in adversaries:
            continue
        if out.premium_net[party] < 0:
            violations.append(
                f"{party}: compliant party paid {out.premium_net[party]} net"
            )
        # Principal safety: keep (or recover) the own token, or be paid the
        # counter-principal — never out both.
        own_token, counter_amount, counter_token = own[party]
        delta = payoffs.delta(party)
        if delta.get(own_token, 0) < 0 and delta.get(counter_token, 0) < counter_amount:
            violations.append(f"{party}: lost principal without counter-payment")
    if not adversaries:
        if not out.swapped:
            violations.append("liveness: compliant ladder did not swap")
        if out.stages_completed != out.total_stages:
            violations.append(
                f"liveness: {out.stages_completed}/{out.total_stages} stages completed"
            )
    return violations


def auction_lemmas(
    instance: ProtocolInstance, result: RunResult, adversaries: frozenset[str]
) -> list[str]:
    """Lemmas 7 and 8 plus the §9.2 bidder compensation."""
    from repro.core.hedged_auction import extract_auction_outcome

    spec = instance.meta["spec"]
    out = extract_auction_outcome(instance, result)
    violations = []
    compliant_bidders = [b for b in spec.bidders if b not in adversaries]

    # Lemma 8: no compliant bidder's bid can be stolen.
    for bidder in compliant_bidders:
        if out.bid_stolen(bidder):
            violations.append(f"{bidder}: bid stolen")

    # Lemma 7 (needs a compliant bidder to do the forwarding).
    if compliant_bidders:
        ticket = instance.contract("ticket")
        coin = instance.contract("coin")
        if set(ticket.accepted) != set(coin.accepted):
            violations.append(
                f"Lemma 7: accepted sets differ "
                f"({sorted(ticket.accepted)} vs {sorted(coin.accepted)})"
            )

    # §9.2: a wrecked hedged auction compensates every compliant bidder.
    if spec.premium and out.coin_outcome == "refunded":
        for bidder in compliant_bidders:
            if out.bids.get(bidder) and out.premium_net[bidder] < spec.premium:
                violations.append(
                    f"{bidder}: wrecked auction paid {out.premium_net[bidder]} < p"
                )
    return violations
