"""Exhaustive deviation-space exploration (the paper's §10 model checking).

The paper verified the two-party and some three-party hedged swaps with
TLA+.  Because smart contracts "severely constrain the behavior of
Byzantine participants by enforcing ordering, timing, and well-formedness
restrictions", the adversary's entire strategy space for a synchronous
protocol collapses to: *which legal actions to omit, from when* (plus, for
the auction, which declaration to publish).  This package enumerates that
space over the real implementation — every combination of deviating
parties, halt rounds, and action-type skips — runs the full simulation for
each profile, and asserts the lemma properties on every outcome.
"""

from repro.checker.explorer import ModelChecker, CheckReport, Violation
from repro.checker.strategies import halt_strategies, skip_strategies, full_strategy_space
from repro.checker import properties

__all__ = [
    "ModelChecker",
    "CheckReport",
    "Violation",
    "halt_strategies",
    "skip_strategies",
    "full_strategy_space",
    "properties",
]
