"""The model-checking driver.

``ModelChecker`` enumerates adversary profiles — every subset of parties up
to ``max_adversaries``, each assigned every strategy from the per-party
strategy space — executes the protocol for each profile, and evaluates all
property predicates on the outcome.  Scenarios are independent full
simulations, so exploration is embarrassingly deterministic: the same
profile always yields the same trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Callable, Iterable

from repro.checker.strategies import NamedStrategy
from repro.protocols.instance import ProtocolInstance, execute
from repro.sim.runner import RunResult

Property = Callable[[ProtocolInstance, RunResult, frozenset[str]], list[str]]
Builder = Callable[[], ProtocolInstance]


@dataclass(frozen=True)
class Violation:
    """One property violation in one scenario."""

    scenario: str
    message: str


@dataclass
class CheckReport:
    """Everything the checker observed."""

    scenarios: int = 0
    transactions: int = 0
    violations: list[Violation] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.scenarios} scenarios, {self.transactions} transactions, "
            f"{self.elapsed_seconds:.2f}s: {status}"
        )


class ModelChecker:
    """Exhaustive exploration of deviation profiles for one protocol."""

    def __init__(
        self,
        builder: Builder,
        properties: Iterable[Property],
        strategies: dict[str, list[NamedStrategy]],
        max_adversaries: int = 1,
        include_compliant: bool = True,
    ) -> None:
        self.builder = builder
        self.properties = list(properties)
        self.strategies = strategies
        self.max_adversaries = max_adversaries
        self.include_compliant = include_compliant

    def profiles(self) -> Iterable[dict[str, NamedStrategy]]:
        """All adversary profiles in deterministic order."""
        if self.include_compliant:
            yield {}
        parties = sorted(self.strategies)
        for size in range(1, self.max_adversaries + 1):
            for subset in combinations(parties, size):
                spaces = [self.strategies[p] for p in subset]
                for combo in product(*spaces):
                    yield dict(zip(subset, combo))

    def run(self) -> CheckReport:
        """Execute every profile and evaluate every property."""
        report = CheckReport()
        start = time.perf_counter()
        for profile in self.profiles():
            label = (
                "; ".join(f"{p}:{s.label}" for p, s in sorted(profile.items()))
                or "all-compliant"
            )
            instance = self.builder()
            deviations = {p: s.transform for p, s in profile.items()}
            result = execute(instance, deviations)
            report.scenarios += 1
            report.transactions += len(result.transactions)
            adversaries = frozenset(profile)
            for prop in self.properties:
                for message in prop(instance, result, adversaries):
                    report.violations.append(Violation(label, message))
        report.elapsed_seconds = time.perf_counter() - start
        return report
