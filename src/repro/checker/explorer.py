"""The model-checking driver — a thin client of the campaign engine.

``ModelChecker`` keeps its historical interface (builder + properties +
per-party strategy spaces, ``profiles()``, ``run()`` → :class:`CheckReport`)
but profile enumeration, execution, and property evaluation all live in
:mod:`repro.campaign` now: the checker wraps its configuration in a
single-block :class:`repro.campaign.ScenarioMatrix` and hands it to a
:class:`repro.campaign.CampaignRunner`.  That also gives every checker the
campaign backends for free — pass ``backend="process"`` to explore a large
deviation space across worker processes.

Scenarios are independent full simulations, so exploration is
embarrassingly deterministic: the same profile always yields the same
trace, and the same matrix always yields the same run digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.campaign.matrix import ScenarioMatrix, enumerate_profiles
from repro.campaign.runner import CampaignRunner
from repro.checker.strategies import NamedStrategy
from repro.protocols.instance import ProtocolInstance
from repro.sim.runner import RunResult

Property = Callable[[ProtocolInstance, RunResult, frozenset[str]], list[str]]
Builder = Callable[[], ProtocolInstance]


@dataclass(frozen=True)
class Violation:
    """One property violation in one scenario."""

    scenario: str
    message: str


@dataclass
class CheckReport:
    """Everything the checker observed."""

    scenarios: int = 0
    transactions: int = 0
    violations: list[Violation] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: the backend that actually ran (a requested "process" backend falls
    #: back to "serial" on platforms without fork, and for selections too
    #: small to amortize the pool fork cost).
    backend: str = "serial"

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.scenarios} scenarios, {self.transactions} transactions, "
            f"{self.elapsed_seconds:.2f}s: {status}"
        )


class ModelChecker:
    """Exhaustive exploration of deviation profiles for one protocol."""

    def __init__(
        self,
        builder: Builder,
        properties: Iterable[Property],
        strategies: dict[str, list[NamedStrategy]],
        max_adversaries: int = 1,
        include_compliant: bool = True,
        backend: str = "serial",
        workers: int | None = None,
    ) -> None:
        self.builder = builder
        self.properties = list(properties)
        self.strategies = strategies
        self.max_adversaries = max_adversaries
        self.include_compliant = include_compliant
        self.backend = backend
        self.workers = workers

    def profiles(self) -> Iterable[dict[str, NamedStrategy]]:
        """All adversary profiles in deterministic order."""
        return enumerate_profiles(
            self.strategies, self.max_adversaries, self.include_compliant
        )

    def matrix(self) -> ScenarioMatrix:
        """This checker's configuration as a one-block scenario matrix."""
        matrix = ScenarioMatrix()
        matrix.add_block(
            family="",  # no prefix: scenario labels stay profile labels
            schedule="",
            builder=self.builder,
            properties=self.properties,
            strategies=self.strategies,
            max_adversaries=self.max_adversaries,
            include_compliant=self.include_compliant,
        )
        return matrix

    def run(self) -> CheckReport:
        """Execute every profile and evaluate every property."""
        campaign = CampaignRunner(
            self.matrix(), backend=self.backend, workers=self.workers
        ).run()
        return CheckReport(
            scenarios=campaign.scenarios,
            transactions=campaign.transactions,
            violations=[
                Violation(v.scenario, v.message) for v in campaign.violations
            ],
            elapsed_seconds=campaign.elapsed_seconds,
            backend=campaign.backend,
        )
