"""Digest-inert observability for the campaign stack.

``repro.obs`` watches the engines from the outside: nested spans around
runner phases, counters inside the cache and kernel engine, per-worker
samples carried back across the fork boundary, and a throttled progress
meter — all timed with the blessed monotonic ``time.perf_counter`` and
provably inert to every scenario/run/frontier digest (traced and
untraced runs are byte-identical; the determinism linter's DET003 rule
polices the boundary from the other side).

Entry points: ``Tracer``/``TraceWriter`` for instrumented runs,
``--trace``/``--progress`` on the CLI, and
``python -m repro.obs summarize TRACE.jsonl`` for the offline report.
"""

from .tracer import (
    TRACE_FORMAT_VERSION,
    MetricsRegistry,
    MetricsSnapshot,
    ProgressMeter,
    ProgressUpdate,
    TimingStat,
    TraceWriter,
    Tracer,
    maybe_inc,
    maybe_span,
    phase_fragments,
    worker_sample,
)
from .schema import validate_trace_event, validate_trace_file
from .summarize import TraceSummary, summarize_trace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ProgressMeter",
    "ProgressUpdate",
    "TimingStat",
    "TraceWriter",
    "Tracer",
    "TraceSummary",
    "maybe_inc",
    "maybe_span",
    "phase_fragments",
    "summarize_trace",
    "validate_trace_event",
    "validate_trace_file",
    "worker_sample",
]
