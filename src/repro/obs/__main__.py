"""CLI for trace files: ``python -m repro.obs {summarize,validate}``."""

from __future__ import annotations

import argparse
import os
import sys

from .schema import TraceSchemaError, validate_trace_file
from .summarize import summarize_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect JSONL trace files emitted by --trace runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize",
        help="phase breakdown, slowest blocks, cache hit-rate, worker skew",
    )
    p_sum.add_argument("trace", help="path to a TRACE.jsonl file")
    p_sum.add_argument(
        "--top-blocks",
        type=int,
        default=5,
        help="how many of the slowest block spans to list (default 5)",
    )

    p_val = sub.add_parser(
        "validate",
        help="check every event against the committed trace-schema.json",
    )
    p_val.add_argument("trace", help="path to a TRACE.jsonl file")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "validate":
        try:
            count = validate_trace_file(args.trace)
        except (TraceSchemaError, OSError) as exc:
            print(f"invalid trace: {exc}", file=sys.stderr)
            return 1
        print(f"{args.trace}: {count} events ok")
        return 0
    try:
        summary = summarize_trace(args.trace)
    except (TraceSchemaError, OSError) as exc:
        print(f"cannot summarize: {exc}", file=sys.stderr)
        return 1
    try:
        print(summary.render(top_blocks=args.top_blocks))
    except BrokenPipeError:
        # Output piped into head/less that closed early — not an error.
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise a second time (the pattern from the python docs).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
