"""Offline trace reports: ``python -m repro.obs summarize TRACE.jsonl``.

Reads a JSONL trace produced by :class:`repro.obs.Tracer` and condenses
it into the questions an operator actually asks of a campaign run:

- **phase breakdown** — where did the wall-clock go (expand, cache
  consult, dispatch, fold, reduce), and what fraction of the root span
  is accounted for by named child spans (the ≥95% coverage contract);
- **slowest blocks** — the per-block spans that dominated dispatch;
- **cache behaviour** — hit-rate with the miss taxonomy (absent,
  corrupt, violating) and store counts;
- **kernel engine** — template calibrations vs. vectorized replays and
  cell-cache hits;
- **worker skew** — per-worker scenario counts and busy time carried
  back over the fork boundary, condensed to a max/mean imbalance ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .schema import iter_trace_events


@dataclass(frozen=True)
class PhaseRow:
    name: str
    count: int
    total: float
    share: float  # fraction of root wall-clock


@dataclass(frozen=True)
class BlockRow:
    label: str
    duration: float
    scenarios: int


@dataclass(frozen=True)
class WorkerRow:
    pid: int
    scenarios: int
    busy_seconds: float


@dataclass
class TraceSummary:
    """Everything ``summarize`` reports, parsed once from the JSONL."""

    wall_seconds: float = 0.0
    root_name: str = ""
    phases: list[PhaseRow] = field(default_factory=list)
    coverage: float = 0.0
    blocks: list[BlockRow] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    workers: list[WorkerRow] = field(default_factory=list)
    progress_done: int = 0
    progress_total: int = 0

    # -- cache ---------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return int(self.counters.get("cache.hit", 0))

    @property
    def cache_misses(self) -> int:
        return int(
            sum(
                value
                for name, value in self.counters.items()
                if name.startswith("cache.miss")
            )
        )

    @property
    def cache_hit_rate(self) -> float:
        consulted = self.cache_hits + self.cache_misses
        return self.cache_hits / consulted if consulted else 0.0

    # -- workers -------------------------------------------------------
    @property
    def worker_skew(self) -> float:
        """max/mean scenarios per worker; 1.0 = perfectly balanced."""
        counts = [row.scenarios for row in self.workers]
        if not counts or sum(counts) == 0:
            return 0.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def render(self, top_blocks: int = 5) -> str:
        lines = []
        root = self.root_name or "(no root span)"
        lines.append(
            f"trace: {root} — {self.wall_seconds:.3f}s wall, "
            f"{self.coverage:.1%} covered by named phases"
        )
        if self.progress_total:
            lines.append(
                f"progress: {self.progress_done}/{self.progress_total} scenarios"
            )
        if self.phases:
            lines.append("phases:")
            for row in self.phases:
                lines.append(
                    f"  {row.name:<28} {row.total:>9.3f}s  "
                    f"{row.share:>6.1%}  x{row.count}"
                )
        if self.blocks:
            lines.append(f"slowest blocks (top {min(top_blocks, len(self.blocks))}):")
            for row in self.blocks[:top_blocks]:
                lines.append(
                    f"  {row.label:<40} {row.duration:>9.3f}s  "
                    f"{row.scenarios} scenarios"
                )
        consulted = self.cache_hits + self.cache_misses
        if consulted:
            miss_parts = ", ".join(
                f"{name.split('cache.miss.', 1)[1]}={int(value)}"
                for name, value in sorted(self.counters.items())
                if name.startswith("cache.miss.") and value
            )
            detail = f" (miss: {miss_parts})" if miss_parts else ""
            lines.append(
                f"cache: {self.cache_hits}/{consulted} hits "
                f"({self.cache_hit_rate:.1%}), "
                f"{int(self.counters.get('cache.store', 0))} stores{detail}"
            )
        if any(name.startswith("kernel.") for name in self.counters):
            lines.append(
                "kernel: "
                f"{int(self.counters.get('kernel.calibrations', 0))} calibrations, "
                f"{int(self.counters.get('kernel.replays', 0))} vectorized replays, "
                f"{int(self.counters.get('kernel.cell_hits', 0))} cell-cache hits, "
                f"{int(self.counters.get('kernel.scenarios', 0))} scenarios"
            )
        if self.workers:
            lines.append(
                f"workers: {len(self.workers)} "
                f"(skew max/mean = {self.worker_skew:.2f})"
            )
            for row in sorted(self.workers, key=lambda r: r.pid):
                lines.append(
                    f"  pid {row.pid:<8} {row.scenarios:>6} scenarios  "
                    f"{row.busy_seconds:>9.3f}s busy"
                )
        return "\n".join(lines)


def summarize_trace(path: str | Path) -> TraceSummary:
    """Parse one trace file into a :class:`TraceSummary`."""
    spans: list[dict] = []
    counters: dict[str, float] = {}
    timings: dict[str, dict] = {}
    progress_done = 0
    progress_total = 0
    for event in iter_trace_events(path):
        kind = event.get("type")
        if kind == "span":
            spans.append(event)
        elif kind == "counter":
            counters[event["name"]] = event["value"]
        elif kind == "timing":
            timings[event["name"]] = event
        elif kind == "progress":
            # Keep the largest-scope progress stream: nested probe runs
            # (refinement cells) emit their own tiny done/total marks.
            if event["total"] >= progress_total:
                progress_done = event["done"]
                progress_total = event["total"]

    summary = TraceSummary(counters=counters)
    summary.progress_done = progress_done
    summary.progress_total = progress_total

    roots = [span for span in spans if span["depth"] == 0]
    if roots:
        # A trace normally has one root (the outermost instrumented call);
        # if several appear (e.g. sequential runs into one file), treat
        # their concatenation as the wall-clock budget.
        summary.wall_seconds = sum(span["dur"] for span in roots)
        summary.root_name = roots[-1]["name"]

    root_names = {span["name"] for span in roots}
    children = [
        span
        for span in spans
        if span["depth"] == 1 and span["parent"] in root_names
    ]
    by_name: dict[str, list[float]] = {}
    for span in children:
        by_name.setdefault(span["name"], []).append(span["dur"])
    phases = [
        PhaseRow(
            name=name,
            count=len(durs),
            total=sum(durs),
            share=(sum(durs) / summary.wall_seconds) if summary.wall_seconds else 0.0,
        )
        for name, durs in by_name.items()
    ]
    summary.phases = sorted(phases, key=lambda row: (-row.total, row.name))
    if summary.wall_seconds:
        summary.coverage = sum(span["dur"] for span in children) / summary.wall_seconds

    block_spans = [span for span in spans if span["name"] == "block"]
    blocks = [
        BlockRow(
            label=str(span.get("attrs", {}).get("label", "?")),
            duration=span["dur"],
            scenarios=int(span.get("attrs", {}).get("scenarios", 0)),
        )
        for span in block_spans
    ]
    summary.blocks = sorted(blocks, key=lambda row: -row.duration)

    workers: dict[int, WorkerRow] = {}
    for name, value in counters.items():
        if name.startswith("worker.") and name.endswith(".scenarios"):
            pid = int(name.split(".")[1])
            busy = timings.get(f"worker.{pid}.busy_seconds", {}).get("total", 0.0)
            workers[pid] = WorkerRow(
                pid=pid, scenarios=int(value), busy_seconds=busy
            )
    summary.workers = sorted(workers.values(), key=lambda row: row.pid)
    return summary
