"""The tracer core: nested spans, a metrics registry, a JSONL sink.

Everything in this module is **digest-inert by construction**: spans and
counters observe the campaign engines from the outside, timing comes from
the blessed monotonic ``time.perf_counter`` (see the DET001 rule notes in
:mod:`repro.lint.rules.determinism`), and nothing a :class:`Tracer`
records is ever read back by digest-producing code — the determinism
linter's DET003 rule flags any telemetry call that strays into a
``digest()``/``to_json()``/``describe()`` scope.  Traced and untraced
runs of the same experiment therefore produce byte-identical scenario,
run, and frontier digests; ``tests/test_obs.py`` proves it across the
serial, pooled, and kernel backends.

Three layers:

- :class:`MetricsSnapshot` — an immutable, picklable bag of counters and
  timing aggregates.  ``merge`` is associative and order-independent
  (key-wise integer/float sums, min/max folds), which is what lets
  forked workers ship per-worker samples back across the process
  boundary and the parent fold them in any arrival order.
- :class:`MetricsRegistry` — the mutable in-process accumulator behind a
  tracer: ``inc`` for counters, ``observe`` for timing distributions,
  ``merge_snapshot`` to absorb worker samples.
- :class:`Tracer` — nested spans via the :meth:`Tracer.span` context
  manager (monotonic ``perf_counter`` timing, depth and parent tracked),
  point :meth:`Tracer.event` marks, and an optional :class:`TraceWriter`
  JSONL sink.  Span times are *offsets from the tracer's epoch*, never
  wall-clock timestamps, so a trace file is reproducible-shaped even
  though its durations are not.

``maybe_span(tracer, name)`` is the no-op guard instrumented code uses so
that ``tracer=None`` (the default everywhere) costs one ``if``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, TextIO

#: stamped into the leading ``meta`` event of every trace file; bump when
#: the event shapes in ``trace-schema.json`` change incompatibly.
TRACE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# metrics: snapshots (immutable, picklable) and the registry (mutable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimingStat:
    """One timing distribution, condensed to mergeable aggregates."""

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    @classmethod
    def single(cls, value: float) -> "TimingStat":
        return cls(count=1, total=value, min=value, max=value)

    def merge(self, other: "TimingStat") -> "TimingStat":
        """Associative, commutative fold of two aggregates."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return TimingStat(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable bag of counters and timing aggregates.

    Keys are sorted, so two snapshots built from the same observations —
    in any order — compare equal, and ``merge`` is associative and
    order-independent: ``a.merge(b).merge(c) == c.merge(a.merge(b))``
    for integer-valued counters (float counters merge commutatively up
    to IEEE-754 addition).  That is the contract that makes per-worker
    samples safe to fold into the parent tracer in arrival order.
    """

    counters: tuple[tuple[str, float], ...] = ()
    timings: tuple[tuple[str, TimingStat], ...] = ()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters:
            counters[name] = counters.get(name, 0) + value
        timings = dict(self.timings)
        for name, stat in other.timings:
            timings[name] = timings[name].merge(stat) if name in timings else stat
        return MetricsSnapshot(
            counters=tuple(sorted(counters.items())),
            timings=tuple(sorted(timings.items())),
        )

    @classmethod
    def merge_all(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        merged = cls()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def counter(self, name: str, default: float = 0) -> float:
        for key, value in self.counters:
            if key == name:
                return value
        return default

    def timing(self, name: str) -> TimingStat:
        for key, stat in self.timings:
            if key == name:
                return stat
        return TimingStat()


def worker_sample(scenarios: int, busy_seconds: float) -> MetricsSnapshot:
    """One worker-side sample: scenario count + busy time, keyed by pid.

    Returned from metered pool tasks and merged into the parent tracer;
    the pid keys telemetry aggregation only — it never reaches a digest,
    a label, or a report payload.
    """
    pid = os.getpid()
    return MetricsSnapshot(
        counters=((f"worker.{pid}.scenarios", scenarios),),
        timings=((f"worker.{pid}.busy_seconds", TimingStat.single(busy_seconds)),),
    )


class MetricsRegistry:
    """The mutable in-process accumulator behind a :class:`Tracer`."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._timings: dict[str, TimingStat] = {}

    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        stat = self._timings.get(name)
        single = TimingStat.single(value)
        self._timings[name] = single if stat is None else stat.merge(single)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        for name, value in snapshot.counters:
            self.inc(name, value)
        for name, stat in snapshot.timings:
            existing = self._timings.get(name)
            self._timings[name] = stat if existing is None else existing.merge(stat)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=tuple(sorted(self._counters.items())),
            timings=tuple(sorted(self._timings.items())),
        )

    def counter(self, name: str, default: float = 0) -> float:
        return self._counters.get(name, default)


def phase_fragments(snapshot: MetricsSnapshot) -> dict[str, dict[str, float]]:
    """Span timings as a JSON-ready ``{phase: {count, total_seconds}}``.

    The fragment :func:`benchmarks.tables.write_bench_json` embeds into
    ``BENCH_*.json`` so committed baselines carry phase-level breakdowns
    next to their headline throughput numbers.
    """
    fragments: dict[str, dict[str, float]] = {}
    for name, stat in snapshot.timings:
        if not name.startswith("span."):
            continue
        fragments[name[len("span."):]] = {
            "count": stat.count,
            "total_seconds": stat.total,
        }
    return fragments


# ----------------------------------------------------------------------
# the JSONL sink
# ----------------------------------------------------------------------
class TraceWriter:
    """Append trace events to a JSONL file, one object per line.

    Every line validates against the committed ``trace-schema.json``
    (see :mod:`repro.obs.schema`); the first line is always the ``meta``
    event naming the format version.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = path
        self._handle: TextIO | None = open(path, "w", encoding="utf-8")
        self.write(
            {
                "type": "meta",
                "name": "repro-trace",
                "version": TRACE_FORMAT_VERSION,
            }
        )

    def write(self, event: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None


def _attr_value(value: object) -> object:
    """Coerce a span/event attribute to a JSON-primitive value."""
    if isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------
class Tracer:
    """Nested spans + counters + an optional JSONL event sink.

    A tracer without a sink still accumulates metrics (the benchmarks
    use this to collect phase fragments without writing a trace file).
    All timing uses the monotonic ``time.perf_counter`` — the blessed
    elapsed-time clock — and span starts are recorded as offsets from
    the tracer's construction epoch, so no wall-clock value ever enters
    a trace event.
    """

    def __init__(self, sink: TraceWriter | None = None) -> None:
        self.metrics = MetricsRegistry()
        self._sink = sink
        self._epoch = time.perf_counter()
        self._stack: list[str] = []
        self._closed = False

    # -- spans and events ----------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Time a named phase; nests, and emits one ``span`` event."""
        start = time.perf_counter()
        depth = len(self._stack)
        parent = self._stack[-1] if self._stack else ""
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()
            duration = time.perf_counter() - start
            self.metrics.observe(f"span.{name}", duration)
            if self._sink is not None:
                event = {
                    "type": "span",
                    "name": name,
                    "start": start - self._epoch,
                    "dur": duration,
                    "depth": depth,
                    "parent": parent,
                }
                if attrs:
                    event["attrs"] = {
                        key: _attr_value(value) for key, value in attrs.items()
                    }
                self._sink.write(event)

    def event(self, name: str, **attrs: object) -> None:
        """Emit one point-in-time mark (offset from the tracer epoch)."""
        if self._sink is None:
            return
        event = {
            "type": "event",
            "name": name,
            "at": time.perf_counter() - self._epoch,
        }
        if attrs:
            event["attrs"] = {key: _attr_value(value) for key, value in attrs.items()}
        self._sink.write(event)

    def progress(self, done: int, total: int, eta: float | None = None) -> None:
        """Emit one throttled progress mark (the meter calls this)."""
        if self._sink is None:
            return
        event = {
            "type": "progress",
            "done": done,
            "total": total,
            "at": time.perf_counter() - self._epoch,
        }
        if eta is not None:
            event["eta"] = eta
        self._sink.write(event)

    # -- counters ------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        self.metrics.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker-side sample into this tracer's registry."""
        self.metrics.merge_snapshot(snapshot)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Dump final counter/timing values to the sink and close it."""
        if self._closed:
            return
        self._closed = True
        if self._sink is None:
            return
        snapshot = self.metrics.snapshot()
        for name, value in snapshot.counters:
            self._sink.write({"type": "counter", "name": name, "value": value})
        for name, stat in snapshot.timings:
            event = {
                "type": "timing",
                "name": name,
                "count": stat.count,
                "total": stat.total,
            }
            if stat.min is not None:
                event["min"] = stat.min
                event["max"] = stat.max
            self._sink.write(event)
        self._sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextmanager
def _null_span() -> Iterator[None]:
    yield


def maybe_span(tracer: Tracer | None, name: str, **attrs: object):
    """``tracer.span(...)`` when tracing, a no-op context otherwise.

    The one-``if`` guard that keeps every instrumented hot path free when
    ``tracer=None`` (the default throughout the campaign stack).
    """
    if tracer is None:
        return _null_span()
    return tracer.span(name, **attrs)


def maybe_inc(tracer: Tracer | None, name: str, amount: float = 1) -> None:
    """Counter increment that tolerates ``tracer=None``."""
    if tracer is not None:
        tracer.metrics.inc(name, amount)


Callback = Callable[["ProgressUpdate"], None]


@dataclass(frozen=True)
class ProgressUpdate:
    """One throttled progress emission: coverage, rate, and an ETA."""

    done: int
    total: int
    elapsed: float

    @property
    def rate(self) -> float:
        return self.done / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def eta(self) -> float | None:
        if self.done <= 0 or self.total <= self.done:
            return None
        return self.elapsed * (self.total - self.done) / self.done

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0


@dataclass
class ProgressMeter:
    """Throttled scenarios-done/total progress over a run.

    ``advance`` is cheap enough to call per scenario: emissions (to the
    callback and the tracer's progress events) are rate-limited to one
    per ``min_interval`` seconds, plus a guaranteed first and final
    emission.  Timing is monotonic ``perf_counter``; nothing here can
    reach a digest.
    """

    total: int
    callback: Callback | None = None
    tracer: Tracer | None = None
    min_interval: float = 0.2
    done: int = 0
    _start: float = field(default=0.0, repr=False)
    _last_emit: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._start = time.perf_counter()

    def _emit(self, now: float) -> None:
        self._last_emit = now
        update = ProgressUpdate(
            done=self.done, total=self.total, elapsed=now - self._start
        )
        if self.callback is not None:
            self.callback(update)
        if self.tracer is not None:
            self.tracer.progress(update.done, update.total, eta=update.eta)

    def advance(self, count: int = 1) -> None:
        self.done += count
        now = time.perf_counter()
        if self._last_emit is None or now - self._last_emit >= self.min_interval:
            self._emit(now)

    def finish(self) -> None:
        """Force the final emission (done may be short on early exit)."""
        self._emit(time.perf_counter())
