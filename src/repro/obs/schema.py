"""Validate trace JSONL files against the committed event schema.

CI's ``trace-smoke`` job runs ``python -m repro.obs validate`` over every
trace it produces; the schema itself lives in ``trace-schema.json`` next
to this module so external consumers can read the same contract.  The
validator is deliberately dependency-free (the CI image installs only
numpy/pytest): the schema's type vocabulary is the five JSON primitives
the trace format actually uses, not full JSON Schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

SCHEMA_PATH = Path(__file__).with_name("trace-schema.json")

#: schema type name -> accepted python types.  ``bool`` is a subclass of
#: ``int`` in python, so integer/number checks must exclude it explicitly.
_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
}


class TraceSchemaError(ValueError):
    """A trace event (or file) that violates the committed schema."""


def load_schema() -> dict:
    return json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))


def validate_trace_event(event: object, schema: dict | None = None) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` matches a shape."""
    if schema is None:
        schema = load_schema()
    if not isinstance(event, dict):
        raise TraceSchemaError(f"trace event must be an object, got {type(event).__name__}")
    kind = event.get("type")
    shapes = schema["events"]
    if kind not in shapes:
        raise TraceSchemaError(f"unknown trace event type {kind!r}")
    shape = shapes[kind]
    required = shape["required"]
    optional = shape["optional"]
    for name, type_name in required.items():
        if name not in event:
            raise TraceSchemaError(f"{kind} event missing required field {name!r}")
        if not _TYPE_CHECKS[type_name](event[name]):
            raise TraceSchemaError(
                f"{kind} event field {name!r} must be {type_name}, "
                f"got {type(event[name]).__name__}"
            )
    for name, value in event.items():
        if name in required:
            continue
        if name not in optional:
            raise TraceSchemaError(f"{kind} event has unknown field {name!r}")
        type_name = optional[name]
        if not _TYPE_CHECKS[type_name](value):
            raise TraceSchemaError(
                f"{kind} event field {name!r} must be {type_name}, "
                f"got {type(value).__name__}"
            )


def iter_trace_events(path: str | Path) -> Iterator[dict]:
    """Yield parsed events from a JSONL trace file (no validation)."""
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"line {lineno}: invalid JSON: {exc}") from exc


def validate_trace_file(path: str | Path) -> int:
    """Validate every line of a trace file; return the event count.

    Beyond per-event shapes, enforces the file-level contract: the first
    event is the ``meta`` header with a known format version.
    """
    schema = load_schema()
    count = 0
    for event in iter_trace_events(path):
        if count == 0:
            if event.get("type") != "meta":
                raise TraceSchemaError("first trace event must be the meta header")
            if event.get("version") != schema["version"]:
                raise TraceSchemaError(
                    f"trace format version {event.get('version')!r} does not match "
                    f"schema version {schema['version']}"
                )
        try:
            validate_trace_event(event, schema)
        except TraceSchemaError as exc:
            raise TraceSchemaError(f"event {count + 1}: {exc}") from None
        count += 1
    if count == 0:
        raise TraceSchemaError("trace file is empty")
    return count
