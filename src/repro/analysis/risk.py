"""Sore-loser exposure measured from actual protocol runs (EXP-T1).

§5.1's claims, measured rather than asserted: in the base swap, if Bob
walks after Alice escrows, her principal is locked for 3Δ and Bob pays
nothing; if Alice walks after Bob escrows, his principal is locked for Δ.
In the hedged swap the same walk-aways trigger the premium transfers of
§5.2.  :func:`sore_loser_exposure` runs every halt-round deviation of both
protocols and tabulates victim, lockup duration, and compensation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hedged_two_party import HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.parties.strategies import Deviant
from repro.protocols.base_two_party import BaseTwoPartySwap
from repro.protocols.instance import execute


@dataclass(frozen=True)
class ExposureRow:
    """One deviation scenario's measured exposure."""

    protocol: str  # "base" | "hedged"
    deviator: str
    halt_round: int
    victim: str
    victim_lockup: int  # heights the victim's principal sat in escrow
    victim_compensation: int  # premium units received by the victim
    deviator_penalty: int  # premium units paid by the deviator


def _lockups(outcome) -> dict[str, int]:
    return {k: v for k, v in outcome.principal_lockups.items() if v is not None}


def sore_loser_exposure(premium_a: int = 2, premium_b: int = 1) -> list[ExposureRow]:
    """Measure every halt-round deviation of the base and hedged swaps."""
    rows: list[ExposureRow] = []

    def run(protocol: str, builder, horizon: int) -> None:
        for deviator in ("Alice", "Bob"):
            for rnd in range(horizon):
                instance = builder()
                result = execute(
                    instance,
                    {deviator: lambda a, r=rnd: Deviant(a, halt_round=r)},
                )
                outcome = extract_two_party_outcome(instance, result)
                if outcome.swapped:
                    continue  # the halt came too late to matter
                victim = "Bob" if deviator == "Alice" else "Alice"
                victim_contract = (
                    "banana_escrow" if victim == "Bob" else "apricot_escrow"
                )
                if protocol == "base":
                    victim_contract = (
                        "banana_htlc" if victim == "Bob" else "apricot_htlc"
                    )
                lockup = outcome.principal_lockups.get(victim_contract) or 0
                comp = (
                    outcome.bob_premium_net
                    if victim == "Bob"
                    else outcome.alice_premium_net
                )
                penalty = -(
                    outcome.alice_premium_net
                    if deviator == "Alice"
                    else outcome.bob_premium_net
                )
                rows.append(
                    ExposureRow(
                        protocol=protocol,
                        deviator=deviator,
                        halt_round=rnd,
                        victim=victim,
                        victim_lockup=lockup,
                        victim_compensation=max(comp, 0),
                        deviator_penalty=max(penalty, 0),
                    )
                )

    base_inst = BaseTwoPartySwap().build()
    run("base", lambda: BaseTwoPartySwap().build(), base_inst.horizon)

    def hedged_builder():
        from repro.core.hedged_two_party import HedgedTwoPartySpec

        spec = HedgedTwoPartySpec(premium_a=premium_a, premium_b=premium_b)
        return HedgedTwoPartySwap(spec).build()

    hedged_inst = hedged_builder()
    run("hedged", hedged_builder, hedged_inst.horizon)
    return rows


def worst_uncompensated_lockup(rows: list[ExposureRow], protocol: str) -> int:
    """The longest lockup any victim suffered with zero compensation."""
    return max(
        (r.victim_lockup for r in rows if r.protocol == protocol and r.victim_compensation == 0),
        default=0,
    )
