"""Cox-Ross-Rubinstein binomial option pricing (§4, reference [3]).

The paper: "The premiums can be estimated using formulas such as the
Cox-Ross-Rubinstein option pricing model."  A party who may renege holds,
in effect, an American option on the swap (footnote 1: Bob's choice after
Alice escrows "is called an 'American call option'"); a fair premium is
the value of that optionality over the lockup window.

:func:`crr_price` is the standard recombining binomial tree;
:func:`suggest_premium` maps a swap's parameters onto it: the option to
walk away from receiving the counterparty's asset at par is an at-the-money
American option with maturity equal to the victim's lockup duration.
"""

from __future__ import annotations

import math

from repro.errors import ProtocolError


def crr_price(
    spot: float,
    strike: float,
    sigma: float,
    maturity: float,
    rate: float = 0.0,
    steps: int = 200,
    kind: str = "call",
    american: bool = False,
) -> float:
    """Price an option on a CRR binomial tree.

    ``sigma`` is annualized volatility, ``maturity`` in years, ``rate`` the
    continuously compounded risk-free rate.  ``kind`` is ``"call"`` or
    ``"put"``; ``american=True`` allows early exercise.
    """
    if spot <= 0 or strike <= 0:
        raise ProtocolError("spot and strike must be positive")
    if sigma <= 0 or maturity <= 0:
        return max(0.0, (spot - strike) if kind == "call" else (strike - spot))
    if steps < 1:
        raise ProtocolError("steps must be >= 1")
    if kind not in ("call", "put"):
        raise ProtocolError(f"unknown option kind {kind!r}")

    dt = maturity / steps
    up = math.exp(sigma * math.sqrt(dt))
    down = 1.0 / up
    growth = math.exp(rate * dt)
    q = (growth - down) / (up - down)
    if not 0.0 < q < 1.0:
        raise ProtocolError("arbitrage in tree parameters (rate too large?)")
    discount = math.exp(-rate * dt)

    def payoff(price: float) -> float:
        return max(0.0, price - strike) if kind == "call" else max(0.0, strike - price)

    values = [payoff(spot * up**j * down ** (steps - j)) for j in range(steps + 1)]
    for step in range(steps - 1, -1, -1):
        for j in range(step + 1):
            cont = discount * (q * values[j + 1] + (1 - q) * values[j])
            if american:
                exercise = payoff(spot * up**j * down ** (step - j))
                cont = max(cont, exercise)
            values[j] = cont
    return values[0]


def suggest_premium(
    asset_value: float,
    sigma_annual: float,
    lockup_deltas: int,
    delta_hours: float = 12.0,
    rate: float = 0.0,
    steps: int = 200,
) -> float:
    """A fair sore-loser premium for an escrow of ``asset_value``.

    The counterparty's ability to renege is an at-the-money American put
    on the victim's asset (they walk exactly when its value has dropped)
    over the lockup window of ``lockup_deltas`` periods of ``delta_hours``
    each.  The put's value is what the victim should demand as a premium.
    """
    years = lockup_deltas * delta_hours / (24.0 * 365.0)
    return crr_price(
        spot=asset_value,
        strike=asset_value,
        sigma=sigma_annual,
        maturity=years,
        rate=rate,
        steps=steps,
        kind="put",
        american=True,
    )
