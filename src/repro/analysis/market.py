"""Geometric Brownian motion price paths.

Supplies the volatile-market substrate for the game-theoretic experiments
(DESIGN.md substitution table: the paper motivates sore-loser attacks with
"a volatile market where asset values may fluctuate"; we generate that
market synthetically and deterministically).
"""

from __future__ import annotations

import numpy as np


def gbm_paths(
    s0: float,
    mu: float,
    sigma: float,
    steps: int,
    dt: float,
    n_paths: int,
    seed: int = 7,
) -> np.ndarray:
    """Simulate ``n_paths`` GBM paths; shape ``(n_paths, steps + 1)``.

    ``dt`` is the step size in years; column 0 is ``s0``.
    """
    rng = np.random.default_rng(seed)
    shocks = rng.standard_normal((n_paths, steps))
    drift = (mu - 0.5 * sigma**2) * dt
    diffusion = sigma * np.sqrt(dt) * shocks
    log_paths = np.cumsum(drift + diffusion, axis=1)
    paths = np.empty((n_paths, steps + 1))
    paths[:, 0] = s0
    paths[:, 1:] = s0 * np.exp(log_paths)
    return paths


def gbm_terminal(
    s0: float, mu: float, sigma: float, horizon: float, n_paths: int, seed: int = 7
) -> np.ndarray:
    """Terminal values only (exact sampling, no path discretization)."""
    rng = np.random.default_rng(seed)
    shocks = rng.standard_normal(n_paths)
    return s0 * np.exp((mu - 0.5 * sigma**2) * horizon + sigma * np.sqrt(horizon) * shocks)
