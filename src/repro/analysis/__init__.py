"""Economic analysis: premium sizing and rational-deviation modelling.

The paper prices premiums "using formulas such as the Cox-Ross-Rubinstein
option pricing model" (§4) and motivates the whole construction with the
observation that an unhedged swap hands both parties a free American option
(§1, footnote 1).  This package supplies:

- :mod:`repro.analysis.options` — a CRR binomial pricer (European and
  American calls/puts) and :func:`suggest_premium`,
- :mod:`repro.analysis.market` — geometric-Brownian-motion price paths,
- :mod:`repro.analysis.game` — a rational-deviation model of the two-party
  swap in the spirit of Xu et al. [17]: success rate and defection
  incentives versus volatility, base versus hedged,
- :mod:`repro.analysis.risk` — sore-loser exposure tables measured from
  actual protocol runs (EXP-T1).

.. note:: **Not to be confused with** :mod:`repro.lint`, the *static*
   analysis package (the AST-based determinism linter guarding the digest
   invariant).  This package analyzes *market/price data* for the paper's
   economics; that one analyzes *source code*.  New price-path or
   premium-sizing work belongs here; new lint rules belong there.
"""

from repro.analysis.options import crr_price, suggest_premium
from repro.analysis.market import gbm_paths, gbm_terminal
from repro.analysis.game import SwapGame, GameResult
from repro.analysis.risk import sore_loser_exposure

__all__ = [
    "crr_price",
    "suggest_premium",
    "gbm_paths",
    "gbm_terminal",
    "SwapGame",
    "GameResult",
    "sore_loser_exposure",
]
