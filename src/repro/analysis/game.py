"""Rational-deviation model of the two-party swap (EXP-G1).

Xu, Ackerer and Dubovitskaya [17] analyze HTLC swaps game-theoretically and
show both parties may rationally abandon the protocol; the paper's premium
mechanism is designed to remove exactly that incentive.  This module builds
the corresponding model on our protocol timeline:

- Alice trades ``A`` apricot tokens for Bob's ``B`` banana tokens at an
  agreed par ratio; let ``r_t`` be the market price of the apricot leg in
  units of the banana leg, ``r_0 = 1``, following GBM with volatility σ,
- Bob's decision point is when he must counter-escrow (height 2 of the
  base swap): he continues only if the swap still profits him, i.e.
  ``r_t ≥ 1 - π_b`` where ``π_b`` is *his* premium at stake as a fraction
  of his principal (0 in the base protocol),
- Alice's decision point is when she must reveal her secret (height 3):
  she continues only if ``r_t ≤ 1 + π_a``,
- a swap *succeeds* if neither party defects at its decision point.

With π = 0 any adverse move triggers a defection, so the success rate
collapses as σ grows; premiums of a few percent restore it — the paper's
"if either asset diminishes significantly in relative value to the other,
then one party has an incentive to quit at the other's expense".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.market import gbm_paths


@dataclass(frozen=True)
class GameResult:
    """Monte-Carlo outcome of the deviation game."""

    sigma_annual: float
    premium_fraction: float
    success_rate: float
    bob_defection_rate: float
    alice_defection_rate: float
    mean_compliant_loss: float  # mean premium-compensated loss of the victim

    def row(self) -> tuple[float, float, float, float, float]:
        return (
            self.sigma_annual,
            self.premium_fraction,
            self.success_rate,
            self.bob_defection_rate,
            self.alice_defection_rate,
        )


@dataclass(frozen=True)
class SwapGame:
    """The two-party swap as a stopping game on a GBM ratio."""

    sigma_annual: float
    premium_fraction: float = 0.0
    delta_hours: float = 12.0
    bob_decision_height: int = 2
    alice_decision_height: int = 3
    n_paths: int = 20_000
    seed: int = 7

    def play(self) -> GameResult:
        """Run the Monte-Carlo game and tabulate outcomes."""
        dt = self.delta_hours / (24.0 * 365.0)
        steps = max(self.bob_decision_height, self.alice_decision_height)
        paths = gbm_paths(
            s0=1.0,
            mu=0.0,
            sigma=self.sigma_annual,
            steps=steps,
            dt=dt,
            n_paths=self.n_paths,
            seed=self.seed,
        )
        pi = self.premium_fraction
        r_bob = paths[:, self.bob_decision_height]
        r_alice = paths[:, self.alice_decision_height]

        bob_defects = r_bob < 1.0 - pi
        alice_defects = (~bob_defects) & (r_alice > 1.0 + pi)
        success = ~(bob_defects | alice_defects)

        # Victim loss after compensation: adverse move minus premium, floored
        # at zero (the premium makes small defections unprofitable, so the
        # victim's uncompensated exposure is the tail beyond the premium).
        bob_move = np.where(bob_defects, (1.0 - pi) - r_bob, 0.0)
        alice_move = np.where(alice_defects, r_alice - (1.0 + pi), 0.0)
        residual = bob_move + alice_move

        return GameResult(
            sigma_annual=self.sigma_annual,
            premium_fraction=pi,
            success_rate=float(success.mean()),
            bob_defection_rate=float(bob_defects.mean()),
            alice_defection_rate=float(alice_defects.mean()),
            mean_compliant_loss=float(residual.mean()),
        )


def success_table(
    sigmas: list[float],
    premium_fractions: list[float],
    n_paths: int = 20_000,
    seed: int = 7,
) -> list[GameResult]:
    """Sweep volatility × premium for the EXP-G1 table."""
    out = []
    for sigma in sigmas:
        for pi in premium_fractions:
            out.append(
                SwapGame(
                    sigma_annual=sigma,
                    premium_fraction=pi,
                    n_paths=n_paths,
                    seed=seed,
                ).play()
            )
    return out
