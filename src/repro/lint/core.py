"""Lint framework core: findings, parsed sources, the rule registry.

The framework is deliberately self-hosted-friendly: it is itself part of
``src/repro``, so every rule it ships runs over this file too.  Three
pieces live here:

- :class:`Finding` — one diagnostic, with a stable *fingerprint* (code +
  path + the stripped source line) so baselines survive unrelated edits
  that only shift line numbers,
- :class:`SourceFile` — a parsed module: AST with parent back-links,
  import alias resolution (``import numpy as np`` makes
  ``np.random.default_rng`` resolve to ``numpy.random.default_rng``),
  and per-line ``# lint: disable=CODE`` suppressions collected via
  :mod:`tokenize` (so a disable comment inside a string literal is not a
  suppression),
- :class:`Rule` + the registry — rules self-register by code via
  :func:`register_rule`; the engine instantiates them all unless a
  selection is given.

Shared helpers for the digest-aware rules (:func:`qualified_name`,
:func:`is_digest_function`, :func:`enclosing_function`) also live here so
every rule agrees on what "digest-producing code" means.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


class LintError(Exception):
    """A misconfiguration of the linter itself (not a code finding)."""


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule code anchored to a source location."""

    path: str  # posix-style, relative to the lint root when possible
    line: int
    col: int
    code: str
    message: str
    #: the stripped source line, for fingerprinting and display.
    line_text: str = field(default="", compare=False)
    #: inclusive line span an inline suppression may sit on.  Defaults to
    #: the finding line alone; :meth:`SourceFile.finding` widens it to the
    #: enclosing statement (decorators included), so a ``# lint: disable``
    #: on any line of a decorated or multi-line statement suppresses.
    span: tuple[int, int] | None = field(default=None, compare=False)
    #: source→sink call chain for flow findings (function labels in
    #: traversal order); empty for single-site rules.
    chain: tuple[str, ...] = field(default=(), compare=False)
    #: (path, line) of the taint *source* for flow findings — the audit
    #: uses it to match heuristic findings against flow confirmations.
    source_ref: tuple[str, int] | None = field(default=None, compare=False)

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: stable across pure line-number churn."""
        return (self.code, self.path, self.line_text)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# ----------------------------------------------------------------------
# parsed source files
# ----------------------------------------------------------------------
_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


class SourceFile:
    """One parsed module plus the metadata every rule needs."""

    def __init__(self, path: Path, display_path: str, text: str) -> None:
        self.path = path
        self.display_path = display_path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self._link_parents()
        self.aliases = _collect_aliases(self.tree)
        self.suppressions = _collect_suppressions(text)

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "SourceFile":
        try:
            display = path.relative_to(root).as_posix() if root else path.as_posix()
        except ValueError:
            display = path.as_posix()
        return cls(path, display, path.read_text(encoding="utf-8"))

    # -- construction helpers ------------------------------------------
    def _link_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._lint_parent = parent  # type: ignore[attr-defined]

    # -- queries -------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, "_lint_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, code: str, lineno: int) -> bool:
        return code in self.suppressions.get(lineno, frozenset())

    def is_suppressed_span(self, code: str, span: tuple[int, int]) -> bool:
        """Whether a disable marker for ``code`` sits anywhere in ``span``."""
        start, end = span
        return any(
            self.is_suppressed(code, lineno) for lineno in range(start, end + 1)
        )

    def suppression_span(self, node: ast.AST) -> tuple[int, int]:
        """Lines an inline suppression for ``node``'s finding may occupy.

        The flagged construct's own lines, widened to its nearest enclosing
        *statement*: every line of a simple statement (so the marker can sit
        on any physical line of a multi-line call), or just the header of a
        compound statement — decorators through the line before the body —
        so a marker inside a function body never mutes a finding on the
        ``def`` itself.
        """
        lineno = getattr(node, "lineno", 1)
        end = getattr(node, "end_lineno", None) or lineno
        stmt: ast.stmt | None = node if isinstance(node, ast.stmt) else None
        if stmt is None:
            for ancestor in self.ancestors(node):
                if isinstance(ancestor, ast.stmt):
                    stmt = ancestor
                    break
        if stmt is None:
            return (lineno, end)
        start = stmt.lineno
        decorators = getattr(stmt, "decorator_list", None)
        if decorators:
            start = min([start, *(deco.lineno for deco in decorators)])
        body = getattr(stmt, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            # Compound statement: the span is its header only.
            stmt_end = max(stmt.lineno, body[0].lineno - 1)
        else:
            stmt_end = stmt.end_lineno or start
        return (min(start, lineno), max(stmt_end, lineno))

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.display_path,
            line=lineno,
            col=col + 1,
            code=code,
            message=message,
            line_text=self.line_at(lineno),
            span=self.suppression_span(node),
        )


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module/attribute they import.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``from os import
    urandom as ur`` → ``{"ur": "os.urandom"}``.  Later bindings win, like
    Python's own semantics; scope nuances (a function-local re-import) are
    deliberately ignored — aliasing is per-module, which is how this
    codebase imports.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def _collect_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Per-line ``# lint: disable=CODE[,CODE...]`` markers.

    Collected from real COMMENT tokens, so the marker text appearing in a
    string literal (e.g. in this linter's own tests) suppresses nothing.
    A marker applies to the physical line it sits on — for a multi-line
    statement, put it on the line of the flagged construct.
    """
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(tok.string)
            if match:
                codes = frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
                out[tok.start[0]] = out.get(tok.start[0], frozenset()) | codes
    except tokenize.TokenError:
        pass
    return out


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def qualified_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve a ``Name``/``Attribute`` chain to a dotted name.

    The chain's head is mapped through the module's import aliases, so
    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    and a bare builtin like ``sorted`` resolves to ``"sorted"``.  Returns
    ``None`` for anything that is not a plain dotted chain (subscripts,
    calls in the middle, etc.).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    head = aliases.get(current.id, current.id)
    parts.append(head)
    return ".".join(reversed(parts))


def call_name(node: ast.Call, aliases: dict[str, str]) -> str | None:
    return qualified_name(node.func, aliases)


def enclosing_function(src: SourceFile, node: ast.AST) -> FuncDef | None:
    """The nearest enclosing function definition, if any."""
    for ancestor in src.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


#: function names that produce digests, canonical labels, or transport
#: payloads — the scopes where ordering and float-canon hazards matter.
_DIGEST_NAME_RE = re.compile(
    r"digest|to_json|payload|describe|fingerprint|code_version|canonical"
)

#: calls that make any function digest-relevant regardless of its name.
_HASH_SINKS = frozenset(
    {
        "hashlib.sha256",
        "hashlib.sha1",
        "hashlib.sha512",
        "hashlib.md5",
        "hashlib.blake2b",
        "hashlib.blake2s",
        "json.dump",
        "json.dumps",
    }
)


def is_digest_function(func: FuncDef, aliases: dict[str, str]) -> bool:
    """Whether a function produces digest/JSON/label material.

    True when its name matches the digest-name pattern (``digest``,
    ``to_json``, ``describe``, ``code_version``, ...) or its body calls a
    hashing constructor / ``json.dumps`` directly.  This is the shared
    definition of "digest-producing code" used by the ORD and CANON
    rules: deliberately name-driven, because this codebase's convention
    is that everything feeding a digest lives in such a function.
    """
    if _DIGEST_NAME_RE.search(func.name):
        return True
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = call_name(node, aliases)
            if name in _HASH_SINKS:
                return True
    return False


# ----------------------------------------------------------------------
# rules + registry
# ----------------------------------------------------------------------
class Rule:
    """Base class for one lint rule (one code)."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, src: SourceFile) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProgramRule(Rule):
    """A rule that needs the *whole program*, not one file at a time.

    The engine calls :meth:`check_program` once, after every file has
    been parsed, with the full list of sources — the flow rules build
    their call graph from it, and the digest-exclusion staleness check
    cross-references allowlist entries against every seen dataclass.
    Findings still anchor to one (path, line) each, so suppressions and
    the baseline work unchanged.
    """

    def check(self, src: SourceFile) -> Iterable[Finding]:
        return ()

    def check_program(
        self, sources: "list[SourceFile]"
    ) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the registry, keyed by its code."""
    if not cls.code:
        raise LintError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise LintError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def rule_codes() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate every registered rule (or the selected codes)."""
    if select is None:
        return [_REGISTRY[code]() for code in sorted(_REGISTRY)]
    rules = []
    for code in select:
        if code not in _REGISTRY:
            raise LintError(
                f"unknown rule code {code!r}; known: {', '.join(rule_codes())}"
            )
        rules.append(_REGISTRY[code]())
    return rules
