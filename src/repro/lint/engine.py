"""The lint engine: discover files, run rules, fold suppressions/baseline.

File discovery is itself held to the determinism bar the linter
enforces: files are collected per argument and sorted by posix-style
path, so the finding list — and therefore the CLI output and any
baseline written from it — is byte-identical regardless of filesystem
enumeration order or argument shuffling within a directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.core import (
    Finding,
    LintError,
    ProgramRule,
    Rule,
    SourceFile,
    all_rules,
)


@dataclass
class LintResult:
    """Everything one lint run observed."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed inline")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.stale_baseline:
            extras.append(f"{len(self.stale_baseline)} stale baseline entries")
        detail = f" ({', '.join(extras)})" if extras else ""
        return f"{status} across {self.files} file(s){detail}"


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under the arguments, deterministically ordered.

    Sorted by posix path per argument, so finding order (and any baseline
    written from it) is independent of filesystem enumeration order.
    Display paths are anchored to the working directory when possible, so
    a baseline written by ``python -m repro.lint src/repro`` from the
    repo root matches every later invocation from the same place.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                sorted(path.rglob("*.py"), key=lambda p: p.as_posix())
            )
        elif path.is_file():
            out.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return out


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
    audit: bool = False,
) -> LintResult:
    """Run rules over the trees/files given; fold in suppressions/baseline.

    With ``audit=True``, every heuristic digest-scope finding (ORD001 /
    CANON001) left after suppression is cross-checked against the flow
    analysis: a finding the interprocedural pass cannot confirm gains an
    ``AUDIT001`` companion, so heuristic false positives surface instead
    of silently diverging from the authoritative flow pass.
    """
    active = list(rules) if rules is not None else all_rules()
    result = LintResult()
    raw: list[Finding] = []
    sources: list[SourceFile] = []
    cwd = Path.cwd()

    def fold(src: SourceFile, finding: Finding) -> None:
        span = finding.span or (finding.line, finding.line)
        if src.is_suppressed_span(finding.code, span):
            result.suppressed += 1
        else:
            raw.append(finding)

    for file_path in discover_files(paths):
        result.files += 1
        try:
            src = SourceFile.load(file_path, cwd)
        except SyntaxError as err:
            raw.append(
                Finding(
                    path=file_path.as_posix(),
                    line=err.lineno or 1,
                    col=(err.offset or 0) + 1,
                    code="LINT901",
                    message=f"cannot parse: {err.msg}",
                )
            )
            continue
        sources.append(src)
        for rule in active:
            if isinstance(rule, ProgramRule):
                continue
            for finding in rule.check(src):
                fold(src, finding)

    by_path = {src.display_path: src for src in sources}
    for rule in active:
        if not isinstance(rule, ProgramRule):
            continue
        for finding in rule.check_program(sources):
            src = by_path.get(finding.path)
            if src is None:
                raw.append(finding)
            else:
                fold(src, finding)

    if audit:
        # Imported here, not at module top: the audit is the only engine
        # feature that depends on the flow package.
        from repro.lint.flow.rules import crosscheck

        raw.extend(crosscheck(sources, raw))
    raw.sort()
    if baseline is not None:
        fresh, matched, stale = baseline.partition(raw)
        result.findings = fresh
        result.baselined = matched
        result.stale_baseline = stale
    else:
        result.findings = raw
    return result
