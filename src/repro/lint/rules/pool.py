"""POOL001: unpicklable callables crossing the worker boundary.

The persistent :class:`repro.campaign.pool.WorkerPool` ships work to
forked workers as a :class:`~repro.campaign.pool.MatrixSpec` — a named
*registered factory* plus primitive arguments — precisely because real
callables do not survive ``pickle``: lambdas and closures fail outright,
and a locally-defined class pickles by qualified name, which the worker
cannot resolve.  Worse, a callable that *happens* to pickle (a module
function captured by name) silently bypasses the worker-side registry
audit that keys the digest contract.

This rule polices the boundary statically: a ``lambda``, a nested
(function-local) ``def``/``class``, or a reference to one, appearing
anywhere in the arguments of ``MatrixSpec(...)``,
``register_matrix_factory(...)``, or a ``.run_indices(...)`` call is
flagged.  Factories must be module-level functions registered by name;
everything they capture must arrive as primitive ``MatrixSpec`` args.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (
    Finding,
    FuncDef,
    Rule,
    SourceFile,
    call_name,
    qualified_name,
    register_rule,
)

#: constructor/registration calls whose arguments cross into workers.
_BOUNDARY_CALLS = frozenset({"MatrixSpec", "register_matrix_factory"})
#: method names that dispatch work to pool workers.
_BOUNDARY_METHODS = frozenset({"run_indices", "apply_async", "imap", "imap_unordered", "map_async", "starmap"})


def _is_boundary_call(node: ast.Call, src: SourceFile) -> bool:
    name = call_name(node, src.aliases)
    if name is not None and name.rsplit(".", 1)[-1] in _BOUNDARY_CALLS:
        return True
    return isinstance(node.func, ast.Attribute) and node.func.attr in _BOUNDARY_METHODS


def _local_defs(func: FuncDef) -> set[str]:
    """Names of functions/classes defined *inside* ``func``."""
    out: set[str] = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(node.name)
    return out


@register_rule
class WorkerBoundaryRule(Rule):
    """POOL001: a callable that cannot (or must not) cross to workers."""

    code = "POOL001"
    name = "unpicklable-worker-payload"
    summary = (
        "lambda, closure, or locally-defined class passed across the "
        "WorkerPool/MatrixSpec boundary; workers rebuild from registered "
        "factory names + primitive args only"
    )

    def check(self, src: SourceFile) -> Iterable[Finding]:
        yield from self._nested_registrations(src)
        # Map every boundary call to its enclosing function's local defs,
        # so Name references to closures are caught alongside lambdas.
        enclosing_locals: dict[ast.Call, set[str]] = {}
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                locals_here = None
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call) and _is_boundary_call(inner, src):
                        if locals_here is None:
                            locals_here = _local_defs(node)
                        enclosing_locals[inner] = locals_here

        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call) and _is_boundary_call(node, src)):
                continue
            callee = call_name(node, src.aliases) or ast.dump(node.func)
            local_names = enclosing_locals.get(node, set())
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                for finding in self._scan_arg(src, arg, callee, local_names):
                    yield finding

    def _nested_registrations(self, src: SourceFile) -> Iterable[Finding]:
        """``@register_matrix_factory`` on a function-local def.

        Registration publishes the function by *name* for workers to
        rebuild from — a closure's qualified name is unresolvable in the
        worker process, so the registration only ever works by accident
        in the registering process itself.
        """
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(node):
                if inner is node or not isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for deco in inner.decorator_list:
                    target = deco.func if isinstance(deco, ast.Call) else deco
                    name = qualified_name(target, src.aliases)
                    if name is not None and name.rsplit(".", 1)[-1] == (
                        "register_matrix_factory"
                    ):
                        yield src.finding(
                            inner,
                            self.code,
                            f"register_matrix_factory on function-local "
                            f"{inner.name!r}: workers rebuild factories by "
                            "module-level name — hoist it to module scope",
                        )

    def _scan_arg(
        self, src: SourceFile, arg: ast.expr, callee: str, local_names: set[str]
    ) -> Iterable[Finding]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                yield src.finding(
                    sub,
                    self.code,
                    f"lambda passed into {callee}(): lambdas cannot pickle "
                    "across the worker boundary — register a module-level "
                    "factory and pass primitive args",
                )
            elif isinstance(sub, ast.Name) and sub.id in local_names:
                yield src.finding(
                    sub,
                    self.code,
                    f"locally-defined callable {sub.id!r} passed into "
                    f"{callee}(): closures/local classes cannot pickle "
                    "across the worker boundary — hoist it to module level "
                    "and register it",
                )
