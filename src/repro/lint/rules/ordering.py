"""ORD001: unsorted iteration feeding digest/JSON/report construction.

Python sets iterate in hash order (randomized per process for strings
via ``PYTHONHASHSEED``), and ``os.listdir`` / ``Path.iterdir`` /
``Path.rglob`` yield filesystem order (inode-creation dependent, differs
across hosts and checkouts).  Anything built from such an iteration —
a hash update, a JSON document, a report line — silently encodes that
order, and the digest invariant dies the day two hosts disagree.  The
historical example is exactly :func:`repro.campaign.cache.code_version`:
a source-tree walk feeding a digest, correct only because of an explicit
``sorted(...)``.

The rule is scoped, not flow-sensitive: it fires on an *ordering source*
inside a *digest-producing function* (see :func:`repro.lint.core.
is_digest_function`) without an enclosing order-insensitive consumer —
``sorted(...)`` being the canonical fix, while ``sum``/``min``/``max``/
``len``/``any``/``all``/``set`` consumers are inherently order-free.
Ordering sources are:

- a directory-walk call (``os.listdir``/``os.scandir``/``os.walk``, or
  any ``.iterdir()``/``.rglob()``/``.glob()`` method),
- a set *expression* (display, comprehension, ``set()``/``frozenset()``
  call) used as an iteration source or ``str.join`` argument,
- a *name* the function can locally prove is a set — a parameter
  annotated ``set``/``frozenset``, or a local assigned from a set
  expression — used the same way.

Outside digest-producing functions, ordering sources are allowed: plenty
of code iterates sets where order cannot escape.  Type inference is
deliberately local — a set arriving through an unannotated parameter is
invisible, which is the usual static-analysis bargain: annotate it and
the guard turns on.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (
    Finding,
    FuncDef,
    Rule,
    SourceFile,
    call_name,
    enclosing_function,
    is_digest_function,
    register_rule,
)

#: directory-walk calls: filesystem order, never sorted.
_WALK_CALLS = frozenset({"os.listdir", "os.scandir", "os.walk"})
#: Path methods with filesystem-ordered results.
_WALK_METHODS = frozenset({"iterdir", "rglob", "glob"})
#: consumers whose result does not depend on iteration order.
_ORDER_FREE = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"}
)


def _set_typed_names(func: FuncDef, src: SourceFile) -> set[str]:
    """Names the function can locally prove hold sets."""
    names: set[str] = set()
    for arg in [*func.args.args, *func.args.posonlyargs, *func.args.kwonlyargs]:
        if arg.annotation is not None:
            annotation = ast.unparse(arg.annotation).strip("\"'")
            head = annotation.split("[")[0].split(".")[-1].lower()
            if head in {"set", "frozenset", "abstractset", "mutableset"}:
                names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and _is_set_literal(node.value, src):
                names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation).strip("\"'")
            if annotation.split("[")[0].split(".")[-1].lower() in {
                "set",
                "frozenset",
            }:
                names.add(node.target.id)
    return names


def _is_set_literal(node: ast.AST, src: SourceFile) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node, src.aliases) in {"set", "frozenset"}
    return False


def _is_set_expr(node: ast.AST, src: SourceFile, set_names: set[str]) -> bool:
    if _is_set_literal(node, src):
        return True
    return isinstance(node, ast.Name) and node.id in set_names


def _is_walk_call(node: ast.AST, src: SourceFile) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node, src.aliases)
    if name in _WALK_CALLS:
        return True
    # Method form: anything.iterdir()/rglob()/glob() — receiver-agnostic
    # on purpose; false positives on a non-Path ``.glob`` are unheard of
    # in this tree and suppressible inline.
    return isinstance(node.func, ast.Attribute) and node.func.attr in _WALK_METHODS


def _ordering_sources(
    func: FuncDef, src: SourceFile, set_names: set[str]
) -> Iterable[tuple[ast.AST, str]]:
    """(node, description) for every order-hazardous expression."""
    for node in ast.walk(func):
        if isinstance(node, ast.For) and _is_set_expr(node.iter, src, set_names):
            yield node.iter, "iteration over a set"
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for comp in node.generators:
                if _is_set_expr(comp.iter, src, set_names):
                    yield comp.iter, "comprehension over a set"
        elif isinstance(node, ast.Call):
            if _is_walk_call(node, src):
                yield node, "directory walk (filesystem order)"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expr(node.args[0], src, set_names)
            ):
                yield node.args[0], "join over a set"


def _order_neutralized(src: SourceFile, node: ast.AST) -> bool:
    """True when an enclosing call makes iteration order irrelevant."""
    child = node
    for ancestor in src.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if isinstance(ancestor, ast.Call):
            name = call_name(ancestor, src.aliases)
            # Only a call the hazardous expression flows *through* (as an
            # argument) neutralizes it — not a call it is merely an
            # attribute receiver of (``set(x).glob(...)`` stays hazardous).
            if name in _ORDER_FREE and child in ancestor.args:
                return True
        child = ancestor
    return False


@register_rule
class UnsortedOrderingRule(Rule):
    """ORD001: hash/filesystem iteration order reaching digest code."""

    code = "ORD001"
    name = "unsorted-ordering"
    summary = (
        "set iteration or directory walk inside digest/JSON/report code "
        "without an enclosing sorted(); the emitted bytes inherit a "
        "process- or filesystem-dependent order"
    )

    def check(self, src: SourceFile) -> Iterable[Finding]:
        for func in ast.walk(src.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not is_digest_function(func, src.aliases):
                continue
            set_names = _set_typed_names(func, src)
            for node, description in _ordering_sources(func, src, set_names):
                # Attribute each source to its *nearest* enclosing
                # function only, so a digest-producing outer function
                # does not double-report (or misattribute) hazards that
                # live inside a nested helper.
                if enclosing_function(src, node) is not func:
                    continue
                if _order_neutralized(src, node):
                    continue
                yield src.finding(
                    node,
                    self.code,
                    f"{description} inside digest-producing function "
                    f"{func.name}() without an enclosing sorted(); the "
                    "digest would inherit nondeterministic order",
                )
