"""CANON001: ad-hoc float formatting in digest- or label-producing code.

Float text is part of the digest surface: premium fractions and shock
sizes are rendered into schedule labels and hashed.  PR 4 centralized
that rendering in :mod:`repro.campaign.canon` after ``format(x, "g")``
was found to be *lossy* — two distinct bisected premiums could collide
onto one label (one digest) while producing different runs.  This rule
keeps the centralization honest: inside digest-producing or
label-producing functions, any ``%``-format, ``format()`` call, or
f-string placeholder whose format spec renders a float (``g``/``e``/
``f`` family) is flagged unless the formatted value already went through
``canon_float``/``canon_opt``/``fmt_fraction``.

Presentation-only code (summary tables, CLI output) is out of scope by
the shared digest-function definition — though using
:func:`repro.campaign.canon.fmt_fraction` there too keeps printed axes
greppable against digest labels.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.lint.core import (
    Finding,
    Rule,
    SourceFile,
    call_name,
    enclosing_function,
    is_digest_function,
    register_rule,
)

#: a format spec that renders a float: ``g``, ``.3f``, ``e``, ``%``, ...
_FLOAT_SPEC_RE = re.compile(r"^[<>=^+\- #0-9,._]*[gGeEfF%]$")
#: printf-style float conversions inside a ``%`` format string.
_PRINTF_FLOAT_RE = re.compile(r"%[-+ #0-9.]*[gGeEfF]")

#: the blessed canonicalizers (matched by trailing name, any import path).
_CANON_CALLS = frozenset({"canon_float", "canon_opt", "fmt_fraction"})

#: functions whose name marks them as label producers even when they do
#: not hash or dump JSON themselves (labels feed digests downstream).
_LABEL_NAME_RE = re.compile(r"label|axes")


def _is_canonicalized(node: ast.AST, aliases: dict[str, str]) -> bool:
    """Whether the formatted value is a direct canon.* call."""
    if isinstance(node, ast.Call):
        name = call_name(node, aliases)
        if name is not None and name.rsplit(".", 1)[-1] in _CANON_CALLS:
            return True
    return False


def _float_spec(spec: str) -> bool:
    return bool(_FLOAT_SPEC_RE.match(spec))


@register_rule
class CanonFloatRule(Rule):
    """CANON001: float text built outside repro.campaign.canon."""

    code = "CANON001"
    name = "uncanonical-float-format"
    summary = (
        "float formatted with %g/:g/format() in digest- or label-producing "
        "code; route the value through repro.campaign.canon "
        "(canon_float / fmt_fraction) so distinct doubles cannot collide"
    )

    _ADVICE = (
        "; use repro.campaign.canon.fmt_fraction (exact, shortest, "
        "platform-stable) or hash repr(canon_float(x))"
    )

    def check(self, src: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            hazard = self._hazard(node, src)
            if hazard is None:
                continue
            func = enclosing_function(src, node)
            if func is None:
                continue
            if not (
                is_digest_function(func, src.aliases)
                or _LABEL_NAME_RE.search(func.name)
            ):
                continue
            yield src.finding(node, self.code, hazard + self._ADVICE)

    def _hazard(self, node: ast.AST, src: SourceFile) -> str | None:
        # f"{x:g}" — a FormattedValue with a constant float-rendering spec.
        if isinstance(node, ast.FormattedValue) and node.format_spec is not None:
            spec = _literal_spec(node.format_spec)
            if spec and _float_spec(spec) and not _is_canonicalized(node.value, src.aliases):
                return f"f-string float format spec {spec!r}"
        # format(x, "g") / x.__format__("g")
        if isinstance(node, ast.Call):
            name = call_name(node, src.aliases)
            if (
                name == "format"
                and len(node.args) == 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                and _float_spec(node.args[1].value)
                and not _is_canonicalized(node.args[0], src.aliases)
            ):
                return f"format(x, {node.args[1].value!r})"
        # "%g" % x
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
            and _PRINTF_FLOAT_RE.search(node.left.value)
        ):
            return f"printf-style float format {node.left.value!r}"
        return None


def _literal_spec(spec_node: ast.expr) -> str | None:
    """The constant text of an f-string format spec, if it is constant."""
    if isinstance(spec_node, ast.JoinedStr) and all(
        isinstance(part, ast.Constant) for part in spec_node.values
    ):
        return "".join(str(part.value) for part in spec_node.values)
    return None
