"""DET rules: calls whose result differs run-to-run or host-to-host.

The campaign engine's contract is that a scenario's digest depends only
on the scenario — not on when it ran, which process ran it, or what the
allocator did.  Wall clocks, uuids, OS entropy, per-process object
identity, and unseeded RNGs all violate that the moment their value
reaches a digest, a label, or a report.  Rather than trace the flow,
these rules flag the *source* anywhere under the linted tree: the rare
legitimate use (measuring elapsed wall time into a digest-excluded
field, generating a fresh secret in an API expressly for live use) is
suppressed inline with a justification, which keeps every exception
auditable in one grep (``git grep 'lint: disable=DET'``).

``time.perf_counter`` is deliberately *not* flagged: it is the blessed
way to measure elapsed time precisely because it is monotonic and
obviously wall-clock-shaped — nobody mistakes it for reproducible data,
and every existing use feeds digest-excluded ``elapsed_seconds`` fields.
The same blessing extends to the :mod:`repro.obs` span API built on top
of it — ``Tracer.span``/``maybe_span``, ``maybe_inc``, and
``ProgressMeter`` are *write-only* from engine code, so instrumenting a
hot path cannot perturb a digest.  The boundary runs the other way:
telemetry must never be read back inside digest-producing code, which
is exactly what DET003 guards.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import (
    Finding,
    Rule,
    SourceFile,
    call_name,
    enclosing_function,
    is_digest_function,
    register_rule,
)

#: exact dotted names whose every call is nondeterministic.
NONDETERMINISTIC_CALLS = {
    "time.time": "wall-clock time differs per run",
    "time.time_ns": "wall-clock time differs per run",
    "datetime.datetime.now": "wall-clock time differs per run",
    "datetime.datetime.utcnow": "wall-clock time differs per run",
    "datetime.datetime.today": "wall-clock time differs per run",
    "datetime.date.today": "wall-clock date differs per run",
    "uuid.uuid1": "uuid1 mixes host MAC and clock",
    "uuid.uuid4": "uuid4 draws OS entropy",
    "os.urandom": "OS entropy differs per call",
    "secrets.token_bytes": "OS entropy differs per call",
    "secrets.token_hex": "OS entropy differs per call",
    "secrets.token_urlsafe": "OS entropy differs per call",
    "secrets.randbits": "OS entropy differs per call",
    "id": "object identity is per-process (and per-allocation)",
}

#: the module-level functions of ``random`` share one *unseeded* global
#: RNG; numpy's legacy ``np.random.*`` functions share another.
_GLOBAL_RNG_MODULES = ("random.", "numpy.random.")
_RNG_CONSTRUCTORS = {
    "random.Random": "random.Random()",
    "numpy.random.default_rng": "numpy.random.default_rng()",
    "numpy.random.RandomState": "numpy.random.RandomState()",
}
_RNG_ALWAYS_BAD = {
    "random.SystemRandom": "SystemRandom draws OS entropy on every call",
}
#: numpy.random names that are types/helpers, not global-RNG draws.
_NUMPY_RNG_NEUTRAL = frozenset(
    {"numpy.random.Generator", "numpy.random.BitGenerator", "numpy.random.SeedSequence"}
)


def _calls(src: SourceFile) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            name = call_name(node, src.aliases)
            if name is not None:
                yield node, name


@register_rule
class NondeterministicCallRule(Rule):
    """DET001: a call whose result can never be reproduced."""

    code = "DET001"
    name = "nondeterministic-call"
    summary = (
        "call to a wall clock, uuid, OS entropy source, or id(); its value "
        "differs across runs/processes, so it can never feed a digest"
    )

    def check(self, src: SourceFile) -> Iterable[Finding]:
        for node, name in _calls(src):
            reason = NONDETERMINISTIC_CALLS.get(name)
            if reason is None:
                continue
            yield src.finding(
                node,
                self.code,
                f"nondeterministic call {name}(): {reason}; if the value is "
                "genuinely wanted (never digested), suppress with a "
                "justification",
            )


@register_rule
class UnseededRandomRule(Rule):
    """DET002: a random draw whose seed is not pinned."""

    code = "DET002"
    name = "unseeded-random"
    summary = (
        "use of the global random module RNG, or an RNG constructed without "
        "a seed; results vary per process — pass an explicit seed"
    )

    def check(self, src: SourceFile) -> Iterable[Finding]:
        for node, name in _calls(src):
            if name in _RNG_ALWAYS_BAD:
                yield src.finding(
                    node, self.code, f"{name}(): {_RNG_ALWAYS_BAD[name]}"
                )
            elif name in _RNG_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield src.finding(
                        node,
                        self.code,
                        f"{_RNG_CONSTRUCTORS[name]} without a seed draws OS "
                        "entropy; pass an explicit seed",
                    )
            elif name.startswith(_GLOBAL_RNG_MODULES) and name not in _NUMPY_RNG_NEUTRAL:
                yield src.finding(
                    node,
                    self.code,
                    f"{name}() uses the shared unseeded global RNG; construct "
                    "a seeded instance (random.Random(seed) / "
                    "numpy.random.default_rng(seed)) instead",
                )


#: telemetry *write* helpers — blessed even in digest scope, because a
#: write cannot feed a value back into the digest.
_OBS_WRITES = frozenset({"maybe_span", "maybe_inc", "span", "inc", "observe"})

#: method names that read a value *out* of the telemetry layer.
_TELEMETRY_READBACKS = frozenset(
    {"snapshot", "counter", "timing", "merge_snapshot", "phase_fragments"}
)

#: receiver-name fragments that mark a call chain as telemetry-flavored.
#: ``chain.ledger.snapshot()`` (simulation state) stays clean because no
#: segment smells like telemetry; ``tracer.metrics.snapshot()`` trips.
_TELEMETRY_MARKERS = ("tracer", "metric", "meter", "snap", "telemetry", "obs")


@register_rule
class TelemetryInDigestRule(Rule):
    """DET003: a telemetry value read back inside digest-producing code.

    The :mod:`repro.obs` contract is write-only instrumentation: spans,
    counters, and progress marks carry run-varying timing, pids, and
    throughput — none of which may reach a digest, a canonical label, or
    a transport payload.  Writes (``maybe_span``, ``inc``) are harmless
    anywhere; *readbacks* (``snapshot()``, ``counter()``, ``timing()``,
    ``phase_fragments()``) inside a digest function smuggle that
    run-varying state into exactly the scope the digest invariant
    protects.
    """

    code = "DET003"
    name = "telemetry-in-digest"
    summary = (
        "telemetry readback (snapshot/counter/timing/phase_fragments) or "
        "repro.obs object inside digest-producing code; trace and metrics "
        "values vary per run and must never feed a digest"
    )

    def check(self, src: SourceFile) -> Iterable[Finding]:
        digest_cache: dict[ast.AST, bool] = {}

        def in_digest_scope(node: ast.AST) -> tuple[bool, str]:
            func = enclosing_function(src, node)
            if func is None:
                return False, ""
            if func not in digest_cache:
                digest_cache[func] = is_digest_function(func, src.aliases)
            return digest_cache[func], func.name

        for node, name in _calls(src):
            segments = name.split(".")
            if name.startswith("repro.obs."):
                if segments[-1] in _OBS_WRITES:
                    continue
                hit, scope = in_digest_scope(node)
                if hit:
                    yield src.finding(
                        node,
                        self.code,
                        f"{name}() inside digest-producing {scope}(): "
                        "repro.obs objects carry run-varying telemetry; keep "
                        "them out of digest scope",
                    )
            elif segments[-1] in _TELEMETRY_READBACKS and any(
                marker in segment.lower()
                for segment in segments[:-1]
                for marker in _TELEMETRY_MARKERS
            ):
                hit, scope = in_digest_scope(node)
                if hit:
                    yield src.finding(
                        node,
                        self.code,
                        f"telemetry readback {name}() inside digest-producing "
                        f"{scope}(): the value varies per run/process and "
                        "must never feed a digest, label, or payload",
                    )
