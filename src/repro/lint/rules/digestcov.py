"""DIG001: dataclass fields invisible to ``digest()``/``to_json()``.

A report or spec dataclass makes two promises: its *digest* binds every
result-determining field (tampering fails verification), and its
*serialization* carries every field a merge or audit needs.  Both decay
silently — a new field added to :class:`ExperimentSpec` but not to its
``digest()`` payload means two different experiments share an identity;
a field missing from ``to_json()`` vanishes on the first cross-host
shard hop.  This rule cross-checks each dataclass's declared fields
against the fields its digest producers and serializers actually read.

**Consumers.**  For a class, the rule collects ``self.<field>`` reads
(with a fixpoint over ``self.method()`` calls, so ``digest()`` delegating
to ``self._payload()`` still counts) from:

- digest producers: methods named ``digest``/``fingerprint`` that
  actually hash (call into :mod:`hashlib`) — a property that merely
  *aliases* a stored digest field is not a producer: there the digest is
  stamped elsewhere (at fold time, over serialized material), so the
  serializer check below is the meaningful one, and ``from_json``'s
  digest recomputation closes the loop dynamically;
- serializers: ``to_json``/``payload`` methods, plus module-level
  helpers bound by their first parameter's annotation (``def
  result_payload(result: ScenarioResult)``), reading ``<param>.<field>``.

**Allowlist.**  Exclusions are intentional and must say why:
:data:`DIGEST_EXCLUSIONS` maps ``ClassName.field`` to a justification.
``ExperimentSpec.backend``/``workers``/``expect`` are the canonical
entries — results are backend-invariant, so execution placement must
*not* shape the spec's identity.  An inline ``# lint: disable=DIG001``
on the field's declaration line works too, but the table keeps all
digest-surface decisions reviewable in one place.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import (
    Finding,
    FuncDef,
    ProgramRule,
    Rule,
    SourceFile,
    call_name,
    qualified_name,
    register_rule,
)

#: ``ClassName.field`` → why the field is intentionally outside the
#: digest and/or serialization surface.  Keep justifications load-bearing:
#: they are the documented contract the rule enforces everything else
#: against.
DIGEST_EXCLUSIONS: dict[str, str] = {
    # -- ExperimentSpec: identity covers *what runs*, not *where* -------
    "ExperimentSpec.backend": (
        "results are backend-invariant; placement must not change the "
        "spec's identity (serialized for convenience, never hashed)"
    ),
    "ExperimentSpec.workers": (
        "worker count is placement, not content; see backend"
    ),
    "ExperimentSpec.expect": (
        "assertions about the result are not part of what runs"
    ),
    # -- CampaignReport: derived aggregates rebuilt by from_json --------
    "CampaignReport.by_axis": (
        "derived per-axis aggregate; from_json rebuilds it from results "
        "via _fold_results, serializing it would just invite drift"
    ),
    "CampaignReport.premium_net_hist": (
        "derived histogram; rebuilt from results on load, see by_axis"
    ),
    # -- Quote: identity covers the answer, not the service path --------
    "Quote.tier": (
        "which ladder rung answered is service metadata; a closed form, "
        "a cache hit, and a fresh measurement of one request must attest "
        "to the same quote digest (serialized for ops, never hashed)"
    ),
    "Quote.latency_ms": (
        "wall-clock is telemetry; hashing it would fork traced/untraced "
        "and cold/warm digests of identical answers, see tier"
    ),
}


def _is_dataclass(node: ast.ClassDef, src: SourceFile) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = qualified_name(target, src.aliases)
        if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _declared_fields(node: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    fields = []
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
        ):
            annotation = ast.unparse(stmt.annotation) if stmt.annotation else ""
            if "ClassVar" in annotation:
                continue
            fields.append((stmt.target.id, stmt))
    return fields


def _methods(node: ast.ClassDef) -> dict[str, FuncDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_param(func: FuncDef) -> str | None:
    if func.args.args:
        return func.args.args[0].arg
    return None


def _attr_reads(func: FuncDef, param: str) -> set[str]:
    """Names read as ``<param>.<attr>`` anywhere in ``func``."""
    out: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
        ):
            out.add(node.attr)
    return out


def _hashes(func: FuncDef, src: SourceFile) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = call_name(node, src.aliases)
            if name is not None and (
                name.startswith("hashlib.") or name.rsplit(".", 1)[-1] in
                {"sha256", "sha1", "sha512", "md5", "blake2b", "blake2s"}
            ):
                return True
    return False


def _consumed_with_fixpoint(
    start: list[FuncDef], methods: dict[str, FuncDef]
) -> set[str]:
    """Fields read by the given methods, following ``self.m()`` calls."""
    consumed: set[str] = set()
    seen: set[str] = set()
    queue = list(start)
    while queue:
        func = queue.pop()
        if func.name in seen:
            continue
        seen.add(func.name)
        param = _self_param(func)
        if param is None:
            continue
        reads = _attr_reads(func, param)
        consumed |= reads
        for read in reads:
            target = methods.get(read)
            if target is not None and target.name not in seen:
                queue.append(target)
    return consumed


def _bound_helpers(src: SourceFile) -> dict[str, list[tuple[FuncDef, str]]]:
    """Module-level (helper, param-name) lists keyed by class name.

    A helper binds to a class when its first parameter is annotated with
    that class's name — ``def result_payload(result: ScenarioResult)``.
    """
    out: dict[str, list[tuple[FuncDef, str]]] = {}
    for node in src.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not node.args.args:
            continue
        first = node.args.args[0]
        if first.annotation is None:
            continue
        annotation = ast.unparse(first.annotation).strip("\"'")
        class_name = annotation.split("[")[0].split(".")[-1]
        out.setdefault(class_name, []).append((node, first.arg))
    return out


@register_rule
class DigestCoverageRule(Rule):
    """DIG001: a field the digest/serialization surface cannot see."""

    code = "DIG001"
    name = "digest-coverage"
    summary = (
        "dataclass field not consumed by the class's digest()/to_json() "
        "and not allowlisted in DIGEST_EXCLUSIONS; the field would be "
        "invisible to identity and/or transport"
    )

    def check(self, src: SourceFile) -> Iterable[Finding]:
        helpers = _bound_helpers(src)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node, src):
                yield from self._check_class(src, node, helpers)

    def _check_class(
        self,
        src: SourceFile,
        node: ast.ClassDef,
        helpers: dict[str, list[tuple[FuncDef, str]]],
    ) -> Iterable[Finding]:
        fields = _declared_fields(node)
        if not fields:
            return
        methods = _methods(node)
        bound = helpers.get(node.name, [])

        digest_producers = [
            func
            for name, func in methods.items()
            if name in {"digest", "fingerprint"} and _hashes(func, src)
        ]
        serializers = [
            func for name, func in methods.items() if name in {"to_json", "payload"}
        ]
        helper_serializers = [
            (func, param)
            for func, param in bound
            if "payload" in func.name or "to_json" in func.name
        ]

        digest_consumed = _consumed_with_fixpoint(digest_producers, methods)
        serial_consumed = _consumed_with_fixpoint(serializers, methods)
        for func, param in helper_serializers:
            serial_consumed |= _attr_reads(func, param)

        # Only *method* digest producers support the digest-coverage
        # check: a class whose digest is stamped by a module-level fold
        # (CampaignReport via _fold_results, FrontierReport via
        # _with_digest) binds its header fields through preambles built
        # at call sites the AST cannot soundly attribute — there the
        # serializer check is the meaningful (and sufficient) one, since
        # from_json recomputes and verifies the digest from what was
        # serialized.
        has_digest = bool(digest_producers)
        has_serial = bool(serializers or helper_serializers)

        for field_name, stmt in fields:
            key = f"{node.name}.{field_name}"
            if key in DIGEST_EXCLUSIONS:
                continue
            if (
                has_digest
                and field_name not in digest_consumed
                # The stamp itself can never hash itself.
                and field_name != "digest"
            ):
                yield src.finding(
                    stmt,
                    self.code,
                    f"field {key} is not consumed by the digest "
                    "producer; two instances differing only here would "
                    "share an identity — hash it, or allowlist it in "
                    "DIGEST_EXCLUSIONS with a justification",
                )
            if has_serial and field_name not in serial_consumed:
                yield src.finding(
                    stmt,
                    self.code,
                    f"field {key} is not serialized by "
                    "to_json()/payload; it vanishes on the first "
                    "cross-host hop — serialize it, or allowlist it in "
                    "DIGEST_EXCLUSIONS with a justification",
                )


@register_rule
class StaleExclusionRule(ProgramRule):
    """DIG002: a ``DIGEST_EXCLUSIONS`` entry that no longer matches.

    An allowlist only stays trustworthy if every entry still points at a
    live field: an entry surviving a field rename silently re-opens the
    DIG001 hole it once documented (the renamed field gets flagged, the
    reviewer sees a justification for the *old* name, and the table rots
    into noise).  This whole-program check cross-references each
    ``ClassName.field`` entry against every dataclass the run parsed and
    reports entries whose class is present but no longer declares the
    field.  Classes absent from the linted tree are skipped — linting a
    fixture directory must not indict the shipped allowlist.
    """

    code = "DIG002"
    name = "stale-digest-exclusion"
    summary = (
        "DIGEST_EXCLUSIONS entry names a field its dataclass no longer "
        "declares; remove or update the allowlist entry"
    )

    def check_program(self, sources: list[SourceFile]) -> Iterable[Finding]:
        declared: dict[str, list[tuple[SourceFile, ast.ClassDef, set[str]]]] = {}
        for src in sources:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef) and _is_dataclass(node, src):
                    fields = {name for name, _ in _declared_fields(node)}
                    declared.setdefault(node.name, []).append(
                        (src, node, fields)
                    )

        for key in sorted(DIGEST_EXCLUSIONS):
            class_name, _, field_name = key.partition(".")
            owners = declared.get(class_name)
            if not owners:
                continue
            if any(field_name in fields for _, _, fields in owners):
                continue
            src, node, _ = owners[0]
            yield src.finding(
                node,
                self.code,
                f"stale DIGEST_EXCLUSIONS entry {key!r}: dataclass "
                f"{class_name} no longer declares field {field_name!r} — "
                "remove the entry (or update it to the renamed field) in "
                "repro.lint.rules.digestcov",
            )
