"""Shipped rule families.  Importing this package registers every rule.

One module per family; each rule documents the hazard it guards, the
constructs it flags, and the blessed alternative.  Codes:

==========  ==========================================================
``DET001``  nondeterministic call (clock/uuid/OS entropy/``id()``)
``DET002``  unseeded random-number generator
``ORD001``  unsorted iteration feeding digest/JSON/report code
``CANON001``  ad-hoc float formatting in digest/label code
``POOL001``  unpicklable callable crossing the worker boundary
``DIG001``  dataclass field invisible to ``digest()``/``to_json()``
``DIG002``  stale ``DIGEST_EXCLUSIONS`` allowlist entry
``FLOW001``  nondeterministic value flows into a digest sink
``FLOW002``  iteration-order-unstable value flows into a digest sink
``FLOW003``  lossy float text flows into a digest sink
``AUDIT001``  heuristic finding the flow analysis cannot confirm
==========  ==========================================================
"""

from repro.lint.rules import (  # noqa: F401  (import = registration)
    canonfloat,
    determinism,
    digestcov,
    ordering,
    pool,
)

# The flow package imports the heuristic rule tables above, so it must
# register last — after every per-file family is importable.
from repro.lint.flow import rules as _flow_rules  # noqa: F401,E402
