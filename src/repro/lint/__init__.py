"""Determinism linter: static analysis guarding the digest invariant.

Every artifact this repository publishes — scenario digests, campaign
``run_digest``, frontier/refined-frontier digests, ``ExperimentSpec``
identities, the ``ResultCache`` code-version key — rests on one invariant:
**byte-identical results across backends, process layouts, engines, and
hosts**.  The dynamic gates (cross-backend tests, the kernel parity
audit) sample that invariant at runtime; this package enforces it
*statically*, before any scenario runs, by reading the AST of everything
under ``src/repro`` and flagging the constructs that historically break
it:

- ``DET001``/``DET002`` — nondeterministic calls (wall clocks, uuids, OS
  entropy, per-process object identity, unseeded RNGs),
- ``ORD001`` — unsorted iteration (sets, directory walks) feeding digest,
  JSON, or report construction,
- ``CANON001`` — ad-hoc float formatting in digest/label code instead of
  :mod:`repro.campaign.canon`,
- ``POOL001`` — unpicklable callables (lambdas, closures, local classes)
  crossing the ``WorkerPool``/``MatrixSpec`` worker boundary,
- ``DIG001`` — dataclass fields invisible to their class's ``digest()``/
  ``to_json()`` without an explicit exclusion.

Run it as ``python -m repro.lint [paths]``; suppress a finding inline
with ``# lint: disable=CODE`` plus a justification, or carry it in the
checked-in ``lint-baseline.json``.

.. note:: **Not to be confused with** :mod:`repro.analysis`, which is the
   *market* analysis package (price-path statistics for premium sizing,
   §6 of the paper).  This package analyzes *source code*; that one
   analyzes *price data*.  They share nothing but the English word.
"""

from repro.lint.core import (
    Finding,
    LintError,
    Rule,
    SourceFile,
    all_rules,
    register_rule,
    rule_codes,
)
from repro.lint.baseline import Baseline
from repro.lint.engine import LintResult, lint_paths

# Importing the rule modules registers every shipped rule.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "Finding",
    "LintError",
    "LintResult",
    "Rule",
    "SourceFile",
    "all_rules",
    "lint_paths",
    "register_rule",
    "rule_codes",
]
