"""The checked-in finding baseline: known debt, explicitly carried.

A baseline entry acknowledges one finding without fixing or inline-
suppressing it — useful when a rule lands before its last findings are
burned down, and for findings in code slated for deletion.  Entries are
matched by :meth:`Finding.fingerprint` — ``(code, path, stripped source
line)`` — not by line number, so unrelated edits above a finding do not
invalidate the baseline; editing the flagged line itself does, which is
exactly when the finding deserves a fresh look.

Each entry carries a mandatory ``justification`` string: a baseline
without reasons is just a mute button.  Matching is multiset-style
(``count`` occurrences of the same fingerprint), and entries that match
nothing are reported as *stale* so the file shrinks as debt is paid.

Format (``lint-baseline.json``)::

    {
      "version": 1,
      "entries": [
        {"code": "DET001", "path": "src/repro/x.py",
         "line_text": "t = time.time()", "count": 1,
         "justification": "wall time feeds a digest-excluded field"}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.core import Finding, LintError

_VERSION = 1


@dataclass
class Baseline:
    """A multiset of acknowledged finding fingerprints."""

    counts: Counter = field(default_factory=Counter)
    justifications: dict[tuple[str, str, str], str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            raise LintError(f"cannot read baseline {path}: {err}")
        if data.get("version") != _VERSION:
            raise LintError(
                f"baseline {path} has version {data.get('version')!r}, "
                f"expected {_VERSION}"
            )
        baseline = cls()
        for entry in data.get("entries", []):
            try:
                fingerprint = (entry["code"], entry["path"], entry["line_text"])
                justification = entry["justification"]
            except (KeyError, TypeError) as err:
                raise LintError(f"malformed baseline entry {entry!r}: {err}")
            if not justification:
                raise LintError(
                    f"baseline entry for {entry['code']} at {entry['path']} "
                    "has no justification; a baseline without reasons is "
                    "just a mute button"
                )
            baseline.counts[fingerprint] += int(entry.get("count", 1))
            baseline.justifications[fingerprint] = justification
        return baseline

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str
    ) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fingerprint = finding.fingerprint()
            baseline.counts[fingerprint] += 1
            baseline.justifications.setdefault(fingerprint, justification)
        return baseline

    def save(self, path: str | Path) -> None:
        entries = [
            {
                "code": code,
                "path": file_path,
                "line_text": line_text,
                "count": count,
                "justification": self.justifications.get(
                    (code, file_path, line_text), ""
                ),
            }
            for (code, file_path, line_text), count in sorted(self.counts.items())
        ]
        Path(path).write_text(
            json.dumps({"version": _VERSION, "entries": entries}, indent=2)
            + "\n",
            encoding="utf-8",
        )

    def partition(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], int, list[tuple[str, str, str]]]:
        """Split findings into (new, baselined-count, stale entries).

        Consumes baseline budget first-come within a fingerprint; any
        budget left over after all findings are seen is *stale* — the
        acknowledged finding no longer exists and the entry should go.
        """
        remaining = Counter(self.counts)
        fresh: list[Finding] = []
        matched = 0
        for finding in findings:
            fingerprint = finding.fingerprint()
            if remaining[fingerprint] > 0:
                remaining[fingerprint] -= 1
                matched += 1
            else:
                fresh.append(finding)
        stale = sorted(fp for fp, count in remaining.items() if count > 0)
        return fresh, matched, stale
