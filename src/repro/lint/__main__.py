"""CLI for the determinism linter: ``python -m repro.lint [paths]``.

Exit status is the contract CI gates on: 0 when the tree is clean modulo
inline suppressions and the baseline, 1 when any fresh finding remains,
2 on usage/configuration errors.  ``--write-baseline`` snapshots the
current findings into the baseline file (each entry still needs a human
justification — the writer stamps a placeholder that the loader accepts
but a reviewer should replace).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.core import LintError, SourceFile, all_rules
from repro.lint.engine import discover_files, lint_paths

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism linter guarding the digest invariant: "
            "flags nondeterministic calls, unsorted digest inputs, "
            "uncanonical float text, unpicklable worker payloads, and "
            "digest-coverage gaps."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            f"baseline file of acknowledged findings (default: "
            f"{DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help=(
            "output format: text (default) or a machine-readable JSON "
            "object with code/path/line/message/fingerprint/chain per "
            "finding (CI annotations consume this)"
        ),
    )
    parser.add_argument(
        "--graph",
        choices=("json", "dot"),
        metavar="{json,dot}",
        help=(
            "export the interprocedural call graph (with taint "
            "annotations) for the given paths instead of linting; the "
            "export is byte-identical across runs"
        ),
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "cross-check heuristic digest findings (ORD001/CANON001) "
            "against the flow analysis; unconfirmed ones gain an "
            "AUDIT001 companion finding"
        ),
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print findings only"
    )
    return parser


def _export_graph(paths: list[str], fmt: str) -> int:
    """``--graph``: print the annotated call graph and exit."""
    from repro.lint.flow import export_graph
    from repro.lint.flow.rules import analyze

    cwd = Path.cwd()
    sources = []
    for file_path in discover_files(paths):
        try:
            sources.append(SourceFile.load(file_path, cwd))
        except SyntaxError as err:
            print(
                f"error: cannot parse {file_path}: {err.msg}", file=sys.stderr
            )
            return 2
    program, analysis = analyze(sources)
    sys.stdout.write(export_graph(program, analysis, fmt))
    return 0


def _render_json(result) -> str:
    payload = {
        "findings": [
            {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "fingerprint": list(f.fingerprint()),
                "chain": list(f.chain),
                "source": (
                    {"path": f.source_ref[0], "line": f.source_ref[1]}
                    if f.source_ref is not None
                    else None
                ),
            }
            for f in result.findings
        ],
        "files": result.files,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline": [
            {"code": code, "path": path, "line_text": line_text}
            for code, path, line_text in result.stale_baseline
        ],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"    {rule.summary}")
        return 0

    if args.graph:
        try:
            return _export_graph(args.paths, args.graph)
        except LintError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2

    try:
        rules = (
            all_rules(args.select.split(",")) if args.select else all_rules()
        )

        baseline_path = args.baseline or DEFAULT_BASELINE
        baseline = None
        if not args.no_baseline and not args.write_baseline:
            if args.baseline is not None or Path(baseline_path).exists():
                baseline = Baseline.load(baseline_path)

        result = lint_paths(
            args.paths, rules=rules, baseline=baseline, audit=args.audit
        )
    except LintError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if args.write_baseline:
        snapshot = Baseline.from_findings(
            result.findings, "FIXME: justify or fix this acknowledged finding"
        )
        snapshot.save(baseline_path)
        if not args.quiet:
            print(
                f"wrote {len(result.findings)} finding(s) to {baseline_path}; "
                "replace the FIXME justifications before committing"
            )
        return 0

    if args.fmt == "json":
        sys.stdout.write(_render_json(result))
        return 0 if result.ok else 1

    for finding in result.findings:
        print(finding.render())
    for code, path, line_text in result.stale_baseline:
        print(
            f"warning: stale baseline entry {code} at {path} "
            f"({line_text!r} no longer flagged) — remove it",
            file=sys.stderr,
        )
    if not args.quiet:
        print(result.summary())
    return 0 if result.ok else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout died mid-print (e.g. `... | head`); exit quietly with
        # the conventional SIGPIPE status instead of a traceback.
        sys.stderr.close()
        sys.exit(141)
