"""FLOW rules: interprocedural source→sink findings, plus the audit.

- **FLOW001** — a nondeterministic value (clock, pid, entropy, unseeded
  RNG draw) reaches a digest sink.
- **FLOW002** — an iteration-order-unstable value (set construction,
  filesystem walk) reaches a digest sink without passing an order-free
  consumer.
- **FLOW003** — lossily-formatted float text (rendered outside
  :mod:`repro.campaign.canon`) reaches a digest sink or label output.

Each finding is anchored at the *sink* and carries the full call chain
from the source's origin, so the report reads as a path, not a point.
The three rules share one analysis per engine run: the program and its
fixpoint are cached on a content hash of every parsed file.

:func:`crosscheck` is the consistency audit behind ``--audit``: every
heuristic digest-scope finding (ORD001 / CANON001) must be confirmed by
a flow hit of the matching kind inside the same function — an
unconfirmed one gains an **AUDIT001** companion, surfacing heuristic
false positives instead of letting the two passes silently diverge.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Iterable

from repro.lint.core import (
    Finding,
    ProgramRule,
    SourceFile,
    register_rule,
)
from repro.lint.flow.callgraph import Program
from repro.lint.flow.summaries import FlowAnalysis, FlowHit
from repro.lint.flow.taint import LOSSY, NONDET, UNORDERED

#: one cached (program, analysis) per distinct source set — the three
#: FLOW rules run back-to-back over identical inputs in one engine pass.
_CACHE: dict[str, tuple[Program, FlowAnalysis]] = {}


def _content_key(sources: list[SourceFile]) -> str:
    acc = hashlib.sha256()
    for src in sorted(sources, key=lambda s: s.display_path):
        acc.update(src.display_path.encode("utf-8"))
        acc.update(b"\x00")
        acc.update(src.text.encode("utf-8"))
        acc.update(b"\x00")
    return acc.hexdigest()


def analyze(sources: list[SourceFile]) -> tuple[Program, FlowAnalysis]:
    """Build (or reuse) the call graph + taint fixpoint for ``sources``."""
    key = _content_key(sources)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    program = Program(sources)
    analysis = FlowAnalysis(program)
    _CACHE.clear()  # one entry is enough: runs repeat the same set
    _CACHE[key] = (program, analysis)
    return program, analysis


def _render_chain(hit: FlowHit) -> str:
    return " -> ".join(hit.chain) if hit.chain else hit.tag.origin


class _FlowRule(ProgramRule):
    """Shared rendering for the three kind-specific rules."""

    kind: str = ""
    noun: str = ""

    def check_program(self, sources: list[SourceFile]) -> Iterable[Finding]:
        _, analysis = analyze(sources)
        by_path = {src.display_path: src for src in sources}
        for hit in analysis.hits:
            if hit.kind != self.kind:
                continue
            sink = hit.sink
            src = by_path.get(sink.path)
            yield Finding(
                path=sink.path,
                line=sink.line,
                col=1,
                code=self.code,
                message=(
                    f"{self.noun} ({hit.tag.detail}) from "
                    f"{hit.tag.path}:{hit.tag.line} reaches "
                    f"{sink.describe()} via {_render_chain(hit)}"
                ),
                line_text=src.line_at(sink.line) if src is not None else "",
                chain=hit.chain,
                source_ref=(hit.tag.path, hit.tag.line),
            )


@register_rule
class NondetFlowRule(_FlowRule):
    code = "FLOW001"
    name = "flow-nondet-to-sink"
    summary = "nondeterministic value flows into a digest sink"
    kind = NONDET
    noun = "nondeterministic value"


@register_rule
class UnorderedFlowRule(_FlowRule):
    code = "FLOW002"
    name = "flow-unordered-to-sink"
    summary = "iteration-order-unstable value flows into a digest sink"
    kind = UNORDERED
    noun = "iteration-order-unstable value"


@register_rule
class LossyFlowRule(_FlowRule):
    code = "FLOW003"
    name = "flow-lossy-text-to-sink"
    summary = "lossy float text flows into a digest sink"
    kind = LOSSY
    noun = "lossy float text"


@register_rule
class FlowAuditRule(ProgramRule):
    """Placeholder carrying the AUDIT001 code and docs.

    The audit itself runs in the engine (``--audit``) via
    :func:`crosscheck`, because it needs the *post-suppression* finding
    list, which no rule sees.  Registering the code here keeps it in
    ``--list-rules`` and selectable for baselines.
    """

    code = "AUDIT001"
    name = "flow-audit-unconfirmed"
    summary = "heuristic digest finding not confirmed by flow analysis"

    def check_program(self, sources: list[SourceFile]) -> Iterable[Finding]:
        return ()


#: heuristic code → the flow kind that should confirm it.
_AUDITED = {"ORD001": UNORDERED, "CANON001": LOSSY}


def _function_spans(src: SourceFile) -> list[tuple[int, int]]:
    spans = []
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _enclosing_span(
    spans: list[tuple[int, int]], line: int
) -> tuple[int, int] | None:
    best: tuple[int, int] | None = None
    for start, end in spans:
        if start <= line <= end:
            if best is None or (end - start) < (best[1] - best[0]):
                best = (start, end)
    return best


def crosscheck(
    sources: list[SourceFile], findings: list[Finding]
) -> list[Finding]:
    """AUDIT001 for each heuristic finding the flow pass cannot confirm.

    A heuristic ORD001/CANON001 finding is *confirmed* when a flow hit
    of the matching kind has its source or its sink inside the same
    function (same file, enclosing ``def`` span) — source-line equality
    would be too strict: a set-typed parameter tags the ``def`` line
    while the heuristic flags the iteration site.
    """
    audited = [f for f in findings if f.code in _AUDITED]
    if not audited:
        return []
    _, analysis = analyze(sources)
    spans_by_path = {src.display_path: _function_spans(src) for src in sources}
    by_path = {src.display_path: src for src in sources}

    out: list[Finding] = []
    for finding in audited:
        kind = _AUDITED[finding.code]
        spans = spans_by_path.get(finding.path, [])
        span = _enclosing_span(spans, finding.line)
        confirmed = False
        for hit in analysis.hits:
            if hit.kind != kind:
                continue
            if span is not None:
                if (
                    hit.tag.path == finding.path
                    and span[0] <= hit.tag.line <= span[1]
                ):
                    confirmed = True
                    break
                if (
                    hit.sink.path == finding.path
                    and span[0] <= hit.sink.line <= span[1]
                ):
                    confirmed = True
                    break
            elif hit.tag.path == finding.path or hit.sink.path == finding.path:
                # Module-level heuristic finding: any same-file hit counts.
                confirmed = True
                break
        if not confirmed:
            src = by_path.get(finding.path)
            out.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    code="AUDIT001",
                    message=(
                        f"heuristic {finding.code} finding is not confirmed "
                        f"by the flow analysis — likely a false positive or "
                        f"a flow-pass blind spot; investigate before "
                        f"baselining"
                    ),
                    line_text=(
                        src.line_at(finding.line) if src is not None else ""
                    ),
                )
            )
    return out
