"""The taint domain: sources, sinks, and digest-covered fields.

Three taint kinds flow through the analysis:

- **nondet** — values no two runs agree on.  The table starts from the
  DET001 call list and *extends* it with sources the DET rules bless on
  purpose: ``time.perf_counter`` (the sanctioned way to measure elapsed
  time) is harmless in a ``wall_seconds`` field but a digest-invariant
  bug the moment it flows into a hash — exactly the distinction only a
  flow analysis can make.  Unseeded RNG draws (the DET002 patterns)
  generate the same taint.
- **unordered** — values whose *iteration order* is process- or
  filesystem-dependent: set construction, directory walks.  The
  order-free consumers ORD001 trusts (``sorted``/``sum``/``min``/...)
  neutralize it.
- **lossy** — float text rendered outside :mod:`repro.campaign.canon`:
  the CANON001 hazards (``%g``, ``format(x, "g")``, f-string float
  specs), generated wherever they occur, neutralized by
  ``canon_float``/``canon_opt``/``fmt_fraction``.

Digest sinks are where taint becomes a finding: hash constructor and
``.update()`` inputs, canonical JSON (``json.dumps(sort_keys=...)`` or
any dump inside a digest-named function), writes into dataclass fields
the DIG001 machinery proves digest-covered, and the return values of
label/axes producers (labels are digest material downstream).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lint.core import SourceFile
from repro.lint.rules.determinism import (
    NONDETERMINISTIC_CALLS,
    _GLOBAL_RNG_MODULES,
    _NUMPY_RNG_NEUTRAL,
    _RNG_ALWAYS_BAD,
    _RNG_CONSTRUCTORS,
)
from repro.lint.rules.digestcov import (
    _consumed_with_fixpoint,
    _hashes,
    _methods,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.flow.callgraph import Program

NONDET = "nondet"
UNORDERED = "unordered"
LOSSY = "lossy"
ALL_KINDS = (LOSSY, NONDET, UNORDERED)

#: nondeterministic-value producers: DET001's table plus the sources the
#: DET rules deliberately bless because their *legitimate* uses never
#: reach a digest.  Flow analysis is exactly the tool that can tell the
#: legitimate uses from the smuggled ones.
NONDET_SOURCES: dict[str, str] = {
    **NONDETERMINISTIC_CALLS,
    "time.perf_counter": "monotonic clock (blessed for timing, never digests)",
    "time.perf_counter_ns": "monotonic clock (blessed for timing, never digests)",
    "time.monotonic": "monotonic clock differs per process",
    "time.monotonic_ns": "monotonic clock differs per process",
    "time.process_time": "CPU clock differs per run",
    "time.thread_time": "CPU clock differs per run",
    "os.getpid": "pid differs per process",
    "os.getppid": "pid differs per process",
    "os.getenv": "environment differs per host",
    "os.environ.get": "environment differs per host",
    "socket.gethostname": "hostname differs per host",
    "platform.node": "hostname differs per host",
    "platform.platform": "platform string differs per host",
    "platform.machine": "architecture differs per host",
    "platform.python_version": "interpreter version differs per host",
    "threading.get_ident": "thread id differs per run",
}

#: order-free consumers: iteration order cannot reach their result.
ORDER_FREE_CALLS = frozenset({"sorted", "sum", "min", "max", "len", "any", "all"})

#: external calls whose results carry no data taint at all.
PREDICATE_CALLS = frozenset(
    {"isinstance", "issubclass", "hasattr", "callable", "bool", "id"}
)

#: the blessed float canonicalizers (matched by trailing name).
CANON_CALLS = frozenset({"canon_float", "canon_opt", "fmt_fraction"})

#: filesystem walks: results arrive in inode order.
WALK_CALLS = frozenset({"os.listdir", "os.scandir", "os.walk"})
WALK_METHODS = frozenset({"iterdir", "rglob", "glob"})

#: hash constructors whose inputs are digest sinks.
HASH_CONSTRUCTORS = frozenset(
    {
        "hashlib.sha256", "hashlib.sha1", "hashlib.sha512", "hashlib.md5",
        "hashlib.blake2b", "hashlib.blake2s", "hashlib.sha3_256",
        "hashlib.new",
    }
)

#: receiver methods that mutate the receiver in place with their args.
MUTATORS = frozenset({"append", "add", "extend", "insert", "setdefault", "update"})

#: set-ish annotation heads (ORD001's list): a parameter annotated this
#: way is *proof* the value iterates in hash order.
SET_ANNOTATIONS = frozenset({"set", "frozenset", "abstractset", "mutableset"})


@dataclass(frozen=True, order=True)
class Tag:
    """One concrete taint source: where it was born and why."""

    kind: str
    path: str
    line: int
    detail: str
    origin: str  # label of the function that generated it


@dataclass(frozen=True, order=True)
class ParamTaint:
    """Symbolic taint: 'whatever kinds parameter *index* carries'.

    ``kinds`` shrinks as the value passes neutralizers — ``sorted(param)``
    strips *unordered* from the pass-through — so callers only propagate
    the kinds that actually survive the callee's body.
    """

    index: int
    kinds: tuple[str, ...] = ALL_KINDS


@dataclass(frozen=True, order=True)
class Sink:
    """One digest sink site."""

    kind: str  # "hash" | "json" | "field" | "label"
    detail: str
    path: str
    line: int

    def describe(self) -> str:
        if self.kind == "hash":
            return f"hash input ({self.detail})"
        if self.kind == "json":
            return f"canonical JSON ({self.detail})"
        if self.kind == "field":
            return f"digest-covered field {self.detail}"
        return f"label output ({self.detail})"


@dataclass(frozen=True, order=True)
class SinkPoint:
    """A sink reachable from a function parameter, with its descent.

    ``descent`` lists the function labels from the summarized function
    down to the sink's owner; ``kinds`` are the taint kinds that survive
    the path (neutralizers along the way strip kinds).
    """

    sink: Sink
    descent: tuple[str, ...]
    kinds: tuple[str, ...] = ALL_KINDS


def is_unseeded_rng(name: str, node: ast.Call) -> str | None:
    """DET002's patterns as a taint source: reason or None."""
    if name in _RNG_ALWAYS_BAD:
        return _RNG_ALWAYS_BAD[name]
    if name in _RNG_CONSTRUCTORS and not node.args and not node.keywords:
        return f"{_RNG_CONSTRUCTORS[name]} without a seed"
    if name.startswith(_GLOBAL_RNG_MODULES) and name not in _NUMPY_RNG_NEUTRAL:
        return "draw from the shared unseeded global RNG"
    return None


def is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation).strip("\"'")
    head = text.split("[")[0].split(".")[-1].strip().lower()
    return head in SET_ANNOTATIONS


def covered_fields(program: "Program") -> dict[str, frozenset[str]]:
    """Per-class digest-covered fields: ``{class label: {field, ...}}``.

    A field is digest-covered when the class's *hashing* digest producer
    (``digest()``/``fingerprint()`` that calls into :mod:`hashlib`,
    followed through ``self.method()`` delegation — the DIG001 fixpoint)
    reads it.  Serialized-only fields are deliberately excluded: fields
    like ``elapsed_seconds`` travel in ``to_json()`` payloads without
    ever being hashed, and treating transport as a digest sink would
    flag every legitimately wall-clock-carrying field in the tree.
    """
    out: dict[str, frozenset[str]] = {}
    for fid in sorted(program.classes):
        cls = program.classes[fid]
        methods = _methods(cls.node)
        producers = [
            func
            for name, func in methods.items()
            if name in {"digest", "fingerprint"} and _hashes(func, cls.src)
        ]
        if not producers:
            continue
        consumed = _consumed_with_fixpoint(producers, methods)
        fields = frozenset(name for name in cls.fields if name in consumed)
        if fields:
            out[fid.label] = fields
    return out


def float_format_hazard(
    node: ast.AST, src: SourceFile
) -> tuple[ast.expr | None, str] | None:
    """CANON001's hazard detection, reused as a LOSSY taint source.

    Returns ``(formatted_value_expr, description)`` when ``node`` renders
    a float lossily, or None.  The value expr is returned so the caller
    can skip generation when it is a direct canon call.
    """
    # Local import: canonfloat registers a rule on import, and the rules
    # package already imports it before this module.
    from repro.lint.rules.canonfloat import (
        _FLOAT_SPEC_RE,
        _PRINTF_FLOAT_RE,
        _literal_spec,
    )
    from repro.lint.core import call_name

    if isinstance(node, ast.FormattedValue) and node.format_spec is not None:
        spec = _literal_spec(node.format_spec)
        if spec and _FLOAT_SPEC_RE.match(spec):
            return node.value, f"f-string float format spec {spec!r}"
    if isinstance(node, ast.Call):
        name = call_name(node, src.aliases)
        if (
            name == "format"
            and len(node.args) == 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
            and _FLOAT_SPEC_RE.match(node.args[1].value)
        ):
            return node.args[0], f"format(x, {node.args[1].value!r})"
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.left.value, str)
        and _PRINTF_FLOAT_RE.search(node.left.value)
    ):
        return None, f"printf-style float format {node.left.value!r}"
    return None
