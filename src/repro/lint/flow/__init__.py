"""Interprocedural flow analysis: the authority behind the digest rules.

The PR 7 rule families (ORD001, CANON001, ...) are *scope heuristics*:
they flag a hazard only when it sits inside a function that looks
digest-producing by name or by calling :mod:`hashlib` directly.  That
heuristic is blind to indirection — a helper returning an unsorted set
into a dataclass field that a ``digest()`` three calls away hashes is
invisible to it.  This package closes the gap with a whole-program pass
over everything the engine parsed:

- :mod:`~repro.lint.flow.callgraph` builds a module-level call graph,
  resolving import aliases, ``self.method`` dispatch, module-qualified
  calls, and dataclass constructors; calls it cannot resolve are
  recorded as *open edges*, never silently dropped,
- :mod:`~repro.lint.flow.taint` defines the taint domain — **nondet**
  (clocks, pids, entropy, unseeded RNGs — including sources the DET
  rules deliberately bless, like ``time.perf_counter``), **unordered**
  (set construction, filesystem walks), **lossy** (float text not
  rendered by :mod:`repro.campaign.canon`) — and the digest sinks
  (hash inputs, canonical JSON, digest-covered dataclass fields, axis
  labels),
- :mod:`~repro.lint.flow.summaries` computes per-function summaries by
  fixpoint — which parameters and returns carry which taint, which
  parameters descend into sinks, which dataclass fields are written
  tainted — and joins them into source→sink *flow hits*,
- :mod:`~repro.lint.flow.rules` renders the hits as FLOW001 (nondet →
  sink), FLOW002 (unordered → sink), FLOW003 (lossy text → sink)
  findings carrying the full call chain, and cross-checks the heuristic
  rules against the flow results (``crosscheck`` → AUDIT001).

The analyzer honors the determinism bar it enforces: every exported
artifact (findings, ``--graph json|dot``) is sorted, and two runs over
the same tree are byte-identical.
"""

from repro.lint.flow.callgraph import FuncId, Program, export_graph
from repro.lint.flow.summaries import FlowAnalysis
from repro.lint.flow.taint import LOSSY, NONDET, UNORDERED

__all__ = [
    "FlowAnalysis",
    "FuncId",
    "LOSSY",
    "NONDET",
    "Program",
    "UNORDERED",
    "export_graph",
]
