"""Module-level call graph over the parsed program.

Nodes are functions and methods (nested ``def``\\ s included, with
``outer.<locals>.inner`` qualnames); edges are resolved call sites.
Resolution reuses :class:`repro.lint.core.SourceFile`'s import-alias
table and adds:

- **bare names** through the lexical scope chain (nested defs, then
  module-level functions/classes, then builtins),
- **module-qualified calls** (``canon.fmt_fraction`` after ``import
  repro.campaign.canon as canon``), following one-hop re-exports
  through package ``__init__`` aliases,
- **``self.method()`` / ``cls.method()``** dispatch into the enclosing
  class, then its resolvable bases,
- **typed receivers** — a local annotated with a class, or assigned
  from a constructor call, dispatches ``local.method()`` by class,
- **dataclass constructors** — ``Report(field=...)`` becomes an edge
  onto the class, with arguments mapped onto declared fields.

Anything else — dynamic dispatch, unresolvable heads, attributes a
module does not define — is recorded as an :class:`OpenEdge` with a
reason.  Open edges are part of the exported graph: the analysis is
honest about where it cannot see.

:func:`export_graph` renders the graph (plus optional taint
annotations) as JSON or DOT.  Both renderings are fully sorted, so two
runs over the same tree emit byte-identical artifacts — the analyzer
obeys the determinism rules it enforces.
"""

from __future__ import annotations

import ast
import builtins
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lint.core import FuncDef, SourceFile, qualified_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.flow.summaries import FlowAnalysis

#: import heads modeled as known-external (stdlib + numpy): calls into
#: them resolve as *external* — the taint tables model their behavior —
#: rather than as open edges.
KNOWN_EXTERNAL_HEADS = frozenset(
    {
        "abc", "argparse", "ast", "base64", "bisect", "builtins",
        "collections", "contextlib", "copy", "csv", "dataclasses",
        "datetime", "decimal", "enum", "errno", "fractions", "functools",
        "gc", "hashlib", "heapq", "hmac", "importlib", "inspect", "io",
        "itertools", "json", "logging", "math", "multiprocessing",
        "numpy", "operator", "os", "pathlib", "pickle", "platform",
        "pprint", "queue", "random", "re", "secrets", "shutil", "signal",
        "socket", "statistics", "string", "struct", "subprocess", "sys",
        "tempfile", "textwrap", "threading", "time", "tokenize",
        "traceback", "types", "typing", "unicodedata", "uuid",
        "warnings", "weakref", "zlib",
    }
)

_BUILTIN_NAMES = frozenset(dir(builtins))

#: how many re-export hops (`from repro.lint import Baseline` landing in
#: a package ``__init__`` alias) resolution will follow.
_REEXPORT_HOPS = 5


@dataclass(frozen=True, order=True)
class FuncId:
    """Stable identity of one function, method, or class in the graph."""

    module: str
    qualname: str

    @property
    def label(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass
class FunctionInfo:
    """One analyzable function plus everything resolution needs."""

    fid: FuncId
    node: FuncDef
    src: SourceFile
    class_name: str | None = None
    #: parameter names in call-mapping order (``self``/``cls`` excluded).
    params: tuple[str, ...] = ()
    param_index: dict[str, int] = field(default_factory=dict)
    #: the bound first-argument name for methods (``self``/``cls``).
    self_name: str | None = None
    #: nested ``def``\ s visible from this function's body, by bare name.
    nested: dict[str, FuncId] = field(default_factory=dict)
    parent: FuncId | None = None


@dataclass
class ClassInfo:
    """One class: methods, dataclass fields, and resolvable bases."""

    fid: FuncId
    node: ast.ClassDef
    src: SourceFile
    is_dataclass: bool = False
    #: declared dataclass fields in constructor order.
    fields: tuple[str, ...] = ()
    field_nodes: dict[str, ast.AnnAssign] = field(default_factory=dict)
    methods: dict[str, FuncId] = field(default_factory=dict)
    bases: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.fid.qualname.rsplit(".", 1)[-1]


@dataclass
class CallSite:
    """One resolved (or deliberately unresolved) call expression."""

    node: ast.Call
    kind: str  # "internal" | "constructor" | "external" | "open"
    target: FuncId | None = None
    cls: ClassInfo | None = None
    external: str | None = None
    reason: str = ""


@dataclass(frozen=True, order=True)
class OpenEdge:
    """A call the graph could not resolve — recorded, never dropped."""

    caller: str
    callee: str
    path: str
    line: int
    reason: str


def module_name(src: SourceFile) -> str:
    """Dotted module name: walk up through ``__init__.py`` packages.

    ``src/repro/campaign/canon.py`` → ``repro.campaign.canon``; a file
    outside any package (a test fixture in a tmp dir) is just its stem.
    """
    path = src.path
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _is_dataclass_def(node: ast.ClassDef, src: SourceFile) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = qualified_name(target, src.aliases)
        if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _declared_fields(node: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    out = []
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
        ):
            annotation = ast.unparse(stmt.annotation) if stmt.annotation else ""
            if "ClassVar" in annotation:
                continue
            out.append((stmt.target.id, stmt))
    return out


class Program:
    """Index + call graph over a list of parsed sources."""

    def __init__(self, sources: list[SourceFile]) -> None:
        self.sources = list(sources)
        #: dotted module name → source.
        self.modules: dict[str, SourceFile] = {}
        self.functions: dict[FuncId, FunctionInfo] = {}
        self.classes: dict[FuncId, ClassInfo] = {}
        #: (module, bare name) → FuncId of a module-level function.
        self.module_functions: dict[tuple[str, str], FuncId] = {}
        #: (module, bare name) → ClassInfo of a module-level class.
        self.module_classes: dict[tuple[str, str], ClassInfo] = {}
        self.callsites: dict[FuncId, list[CallSite]] = {}
        self.open_edges: list[OpenEdge] = []
        #: per-function locally-provable receiver types.
        self._local_types: dict[FuncId, dict[str, ClassInfo]] = {}

        for src in self.sources:
            self._index_module(src)
        for fid in sorted(self.functions):
            info = self.functions[fid]
            self._local_types[fid] = self._infer_local_types(info)
        for fid in sorted(self.functions):
            self._resolve_callsites(self.functions[fid])

    # -- indexing ------------------------------------------------------
    def _index_module(self, src: SourceFile) -> None:
        mod = module_name(src)
        self.modules[mod] = src
        self._index_body(src, mod, src.tree.body, prefix="", class_info=None,
                         enclosing=None)

    def _index_body(
        self,
        src: SourceFile,
        mod: str,
        body: list[ast.stmt],
        prefix: str,
        class_info: ClassInfo | None,
        enclosing: FunctionInfo | None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(src, mod, stmt, prefix, class_info,
                                     enclosing)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(src, mod, stmt, prefix)

    def _index_function(
        self,
        src: SourceFile,
        mod: str,
        node: FuncDef,
        prefix: str,
        class_info: ClassInfo | None,
        enclosing: FunctionInfo | None,
    ) -> None:
        qualname = f"{prefix}{node.name}"
        fid = FuncId(mod, qualname)
        is_method = class_info is not None and not any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in node.decorator_list
        )
        positional = [*node.args.posonlyargs, *node.args.args]
        self_name = None
        if is_method and positional:
            self_name = positional[0].arg
            positional = positional[1:]
        params = tuple(
            arg.arg for arg in [*positional, *node.args.kwonlyargs]
        )
        info = FunctionInfo(
            fid=fid,
            node=node,
            src=src,
            class_name=class_info.name if class_info else None,
            params=params,
            param_index={name: i for i, name in enumerate(params)},
            self_name=self_name,
            parent=enclosing.fid if enclosing else None,
        )
        self.functions[fid] = info
        if class_info is not None:
            class_info.methods[node.name] = fid
        if enclosing is not None:
            enclosing.nested[node.name] = fid
        if prefix == "" and class_info is None:
            self.module_functions[(mod, node.name)] = fid
        self._index_body(
            src, mod, node.body, prefix=f"{qualname}.<locals>.",
            class_info=None, enclosing=info,
        )

    def _index_class(
        self, src: SourceFile, mod: str, node: ast.ClassDef, prefix: str
    ) -> None:
        qualname = f"{prefix}{node.name}"
        fid = FuncId(mod, qualname)
        declared = _declared_fields(node)
        info = ClassInfo(
            fid=fid,
            node=node,
            src=src,
            is_dataclass=_is_dataclass_def(node, src),
            fields=tuple(name for name, _ in declared),
            field_nodes={name: stmt for name, stmt in declared},
            bases=tuple(
                name
                for name in (
                    qualified_name(base, src.aliases) for base in node.bases
                )
                if name is not None
            ),
        )
        self.classes[fid] = info
        if prefix == "":
            self.module_classes[(mod, node.name)] = info
        self._index_body(src, mod, node.body, prefix=f"{qualname}.",
                         class_info=info, enclosing=None)

    # -- lookups -------------------------------------------------------
    def class_named(self, mod: str, name: str) -> ClassInfo | None:
        """A class reachable as ``name`` from module ``mod``."""
        found = self.module_classes.get((mod, name))
        if found is not None:
            return found
        src = self.modules.get(mod)
        if src is None:
            return None
        dotted = src.aliases.get(name)
        if dotted is None:
            return None
        resolved = self._resolve_dotted(mod, dotted, hops=_REEXPORT_HOPS)
        if isinstance(resolved, ClassInfo):
            return resolved
        return None

    def method_of(self, cls: ClassInfo, name: str) -> FuncId | None:
        """Resolve ``name`` on ``cls``, then its resolvable bases."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.fid.label in seen:
                continue
            seen.add(current.fid.label)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                base_cls = self.class_named(
                    current.fid.module, base.rsplit(".", 1)[-1]
                )
                if base_cls is None and "." in base:
                    resolved = self._resolve_dotted(
                        current.fid.module, base, hops=_REEXPORT_HOPS
                    )
                    base_cls = resolved if isinstance(resolved, ClassInfo) else None
                if base_cls is not None:
                    queue.append(base_cls)
        return None

    def class_of_annotation(
        self, mod: str, annotation: ast.expr | None
    ) -> ClassInfo | None:
        if annotation is None:
            return None
        text = ast.unparse(annotation).strip("\"'")
        head = text.split("[")[0].strip().strip("\"'")
        # Optional[X] / X | None → X.
        if head.startswith("Optional"):
            inner = text.split("[", 1)
            head = inner[1].rstrip("]").strip() if len(inner) == 2 else head
        head = head.split("|")[0].strip().strip("\"'")
        name = head.rsplit(".", 1)[-1]
        if not name.isidentifier():
            return None
        return self.class_named(mod, name)

    def _infer_local_types(self, info: FunctionInfo) -> dict[str, ClassInfo]:
        mod = info.fid.module
        types: dict[str, ClassInfo] = {}
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls = self.class_of_annotation(mod, arg.annotation)
            if cls is not None:
                types[arg.arg] = cls
        for node in ast.walk(info.node):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = self.class_of_annotation(mod, node.annotation)
                if cls is not None:
                    types[node.target.id] = cls
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                name = qualified_name(node.value.func, info.src.aliases)
                if name is not None:
                    cls = self.class_named(mod, name.rsplit(".", 1)[-1])
                    # Only a *direct* constructor call types the local —
                    # a same-named helper would resolve to a function.
                    if cls is not None and self._resolve_dotted(
                        mod, name, hops=_REEXPORT_HOPS
                    ) is cls:
                        types[node.targets[0].id] = cls
        return types

    def local_types(self, fid: FuncId) -> dict[str, ClassInfo]:
        return self._local_types.get(fid, {})

    # -- call resolution -----------------------------------------------
    def _resolve_dotted(
        self, mod: str, dotted: str, hops: int
    ) -> FunctionInfo | ClassInfo | str | None:
        """Resolve a dotted name from module ``mod``.

        Returns a FunctionInfo/ClassInfo for internal targets, the dotted
        string for known-external targets, or None (unresolved).
        """
        if hops <= 0:
            return None
        parts = dotted.split(".")
        if len(parts) == 1:
            name = parts[0]
            fid = self.module_functions.get((mod, name))
            if fid is not None:
                return self.functions[fid]
            cls = self.module_classes.get((mod, name))
            if cls is not None:
                return cls
            src = self.modules.get(mod)
            if src is not None and name in src.aliases and src.aliases[name] != name:
                return self._resolve_dotted(mod, src.aliases[name], hops - 1)
            if name in _BUILTIN_NAMES:
                return name
            return None
        # Longest module prefix wins: "repro.campaign.canon.canon_float"
        # resolves inside repro.campaign.canon even though "repro" and
        # "repro.campaign" are modules too.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                rest = parts[cut:]
                if len(rest) == 1:
                    resolved = self._resolve_dotted(prefix, rest[0], hops - 1)
                    if resolved is not None and not isinstance(resolved, str):
                        return resolved
                    return None
                if len(rest) == 2:
                    cls = self.class_named(prefix, rest[0])
                    if cls is not None:
                        method = self.method_of(cls, rest[1])
                        if method is not None:
                            return self.functions[method]
                    return None
                return None
        # Class attribute within the *calling* module: ClassName.method.
        if len(parts) == 2:
            cls = self.class_named(mod, parts[0])
            if cls is not None:
                method = self.method_of(cls, parts[1])
                if method is not None:
                    return self.functions[method]
        if parts[0] in KNOWN_EXTERNAL_HEADS:
            return dotted
        return None

    def _resolve_callsites(self, info: FunctionInfo) -> None:
        sites: list[CallSite] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                sites.append(self._resolve_call(info, node))
        self.callsites[info.fid] = sites
        for site in sites:
            if site.kind == "open":
                self.open_edges.append(
                    OpenEdge(
                        caller=info.fid.label,
                        callee=_callee_text(site.node),
                        path=info.src.display_path,
                        line=site.node.lineno,
                        reason=site.reason,
                    )
                )

    def _resolve_call(self, info: FunctionInfo, call: ast.Call) -> CallSite:
        func = call.func
        mod = info.fid.module

        # self.method() / cls.method() / typed_local.method()
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            head = func.value.id
            receiver_cls: ClassInfo | None = None
            if info.self_name is not None and head == info.self_name:
                receiver_cls = self.class_named(mod, info.class_name or "")
            elif head in self.local_types(info.fid):
                receiver_cls = self.local_types(info.fid)[head]
            if receiver_cls is not None:
                target = self.method_of(receiver_cls, func.attr)
                if target is not None:
                    return CallSite(call, "internal", target=target)
                return CallSite(
                    call, "open",
                    reason=f"no method {func.attr!r} on {receiver_cls.name}",
                )

        name = qualified_name(func, info.src.aliases)
        if name is None:
            return CallSite(call, "open", reason="dynamic callee")

        # Lexical scope chain: nested defs shadow module-level names.
        if "." not in name:
            scope: FunctionInfo | None = info
            while scope is not None:
                if name in scope.nested:
                    return CallSite(
                        call, "internal", target=scope.nested[name]
                    )
                scope = (
                    self.functions.get(scope.parent)
                    if scope.parent is not None
                    else None
                )

        resolved = self._resolve_dotted(mod, name, hops=_REEXPORT_HOPS)
        if isinstance(resolved, FunctionInfo):
            return CallSite(call, "internal", target=resolved.fid)
        if isinstance(resolved, ClassInfo):
            return CallSite(call, "constructor", cls=resolved)
        if isinstance(resolved, str):
            return CallSite(call, "external", external=resolved)
        if isinstance(func, ast.Attribute):
            return CallSite(call, "open", reason="unresolved receiver")
        return CallSite(call, "open", reason=f"unresolved name {name!r}")


def _callee_text(call: ast.Call) -> str:
    try:
        return ast.unparse(call.func)
    except Exception:  # pragma: no cover - unparse is total on parsed ASTs
        return "<unprintable>"


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def export_graph(
    program: Program,
    analysis: "FlowAnalysis | None" = None,
    fmt: str = "json",
) -> str:
    """Render the call graph (+ taint annotations) as JSON or DOT.

    Every list is sorted and the JSON is dumped with sorted keys, so the
    export is byte-identical across runs — node and edge counts are
    stable, and diffing two exports is meaningful.
    """
    nodes = []
    for fid in sorted(program.functions):
        info = program.functions[fid]
        entry: dict = {
            "id": fid.label,
            "module": fid.module,
            "qualname": fid.qualname,
            "path": info.src.display_path,
            "line": info.node.lineno,
            "kind": "method" if info.class_name else "function",
        }
        if analysis is not None:
            summary = analysis.summaries.get(fid)
            if summary is not None:
                ret_kinds = summary.return_kinds()
                sink_params = sorted(summary.param_sinks)
                if ret_kinds:
                    entry["ret_taints"] = sorted(ret_kinds)
                if sink_params:
                    entry["sink_params"] = sink_params
        nodes.append(entry)
    for fid in sorted(program.classes):
        info = program.classes[fid]
        nodes.append(
            {
                "id": fid.label,
                "module": fid.module,
                "qualname": fid.qualname,
                "path": info.src.display_path,
                "line": info.node.lineno,
                "kind": "dataclass" if info.is_dataclass else "class",
            }
        )

    edges = []
    for fid in sorted(program.callsites):
        info = program.functions[fid]
        for site in program.callsites[fid]:
            if site.kind == "internal" and site.target is not None:
                edges.append(
                    {
                        "caller": fid.label,
                        "callee": site.target.label,
                        "kind": "call",
                        "line": site.node.lineno,
                        "path": info.src.display_path,
                    }
                )
            elif site.kind == "constructor" and site.cls is not None:
                edges.append(
                    {
                        "caller": fid.label,
                        "callee": site.cls.fid.label,
                        "kind": "constructor",
                        "line": site.node.lineno,
                        "path": info.src.display_path,
                    }
                )
    edges.sort(key=lambda e: (e["caller"], e["callee"], e["path"], e["line"]))

    opens = [
        {
            "caller": edge.caller,
            "callee": edge.callee,
            "path": edge.path,
            "line": edge.line,
            "reason": edge.reason,
        }
        for edge in sorted(program.open_edges)
    ]

    if fmt == "json":
        payload = {
            "version": 1,
            "nodes": nodes,
            "edges": edges,
            "open_edges": opens,
            "counts": {
                "nodes": len(nodes),
                "edges": len(edges),
                "open_edges": len(opens),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if fmt == "dot":
        lines = ["digraph callgraph {", "  rankdir=LR;"]
        for node in nodes:
            shape = {
                "method": "box",
                "function": "ellipse",
                "dataclass": "component",
                "class": "folder",
            }[node["kind"]]
            taints = ",".join(node.get("ret_taints", []))
            suffix = f"\\n[{taints}]" if taints else ""
            lines.append(
                f'  "{node["id"]}" [shape={shape}, '
                f'label="{node["qualname"]}{suffix}"];'
            )
        for edge in edges:
            style = "dashed" if edge["kind"] == "constructor" else "solid"
            lines.append(
                f'  "{edge["caller"]}" -> "{edge["callee"]}" [style={style}];'
            )
        for edge in opens:
            lines.append(
                f'  "{edge["caller"]}" -> "open:{edge["callee"]}" '
                f'[style=dotted, color=gray];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"
    raise ValueError(f"unknown graph format {fmt!r} (expected json or dot)")
