"""Summary-based interprocedural taint fixpoint.

Each function gets a :class:`Summary`: which taint its return value
carries (concrete :class:`~repro.lint.flow.taint.Tag` sources and
symbolic :class:`~repro.lint.flow.taint.ParamTaint` pass-throughs), and
which of its parameters descend into digest sinks.  Summaries are
computed to a global fixpoint over the call graph, then a final
recording pass joins concrete sources against sinks into
:class:`FlowHit`\\ s carrying the full call chain.

Design notes that keep the pass sound-enough and deterministic:

- **Weak updates only.**  Environments and summaries only grow (or keep
  a shorter trail for an existing item), so the fixpoint is monotone
  and terminates.  Recursive descents are bounded by keeping one
  shortest descent per ``(sink, kinds)`` and a hard depth cap.
- **Kind-filtered pass-through.**  ``ParamTaint.kinds`` shrinks through
  neutralizers, so ``def f(xs): return sorted(xs)`` correctly strips
  *unordered* for every caller.
- **Shortest-trail, lexicographic tie-break.**  Whenever two trails
  reach the same item, the shorter (then lexicographically smaller)
  wins, making chains independent of iteration order and hash seed.
- **No ``id()``/identity keys.**  Call sites are looked up by their
  full source extent — stable across runs — because the analyzer is
  linted by the very rules it powers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.flow.callgraph import (
    CallSite,
    ClassInfo,
    FuncId,
    FunctionInfo,
    Program,
)
from repro.lint.flow.taint import (
    ALL_KINDS,
    CANON_CALLS,
    HASH_CONSTRUCTORS,
    LOSSY,
    MUTATORS,
    NONDET,
    NONDET_SOURCES,
    ORDER_FREE_CALLS,
    PREDICATE_CALLS,
    UNORDERED,
    WALK_CALLS,
    WALK_METHODS,
    ParamTaint,
    Sink,
    SinkPoint,
    Tag,
    covered_fields,
    float_format_hazard,
    is_set_annotation,
    is_unseeded_rng,
)

Trail = tuple[str, ...]


def _extent(node: ast.AST) -> tuple[int, int, int | None, int | None]:
    """Full source extent of a node — a collision-free position key."""
    return (
        node.lineno,
        node.col_offset,
        getattr(node, "end_lineno", None),
        getattr(node, "end_col_offset", None),
    )


TaintMap = dict[object, Trail]  # keys are Tag | ParamTaint

#: longest sink descent a summary will record — bounds recursion.
_MAX_DESCENT = 12
#: global fixpoint round cap (generous: depth of the call DAG suffices).
_MAX_ROUNDS = 50
#: per-function inner fixpoint cap (loop-carried taint converges fast).
_MAX_BODY_PASSES = 8


def _better(trail: Trail, incumbent: Trail) -> bool:
    return (len(trail), trail) < (len(incumbent), incumbent)


def _merge(dst: TaintMap, src: TaintMap) -> bool:
    """Weak-update ``dst`` with ``src``; True when anything changed."""
    changed = False
    for item, trail in src.items():
        incumbent = dst.get(item)
        if incumbent is None or _better(trail, incumbent):
            dst[item] = trail
            changed = True
    return changed


def _strip(taints: TaintMap, kind: str) -> TaintMap:
    """Drop ``kind`` from every item (neutralizer semantics)."""
    out: TaintMap = {}
    for item, trail in taints.items():
        if isinstance(item, Tag):
            if item.kind != kind:
                out[item] = trail
        else:
            kinds = tuple(k for k in item.kinds if k != kind)
            if kinds:
                out[ParamTaint(item.index, kinds)] = trail
    return out


@dataclass
class Summary:
    """What one function does with taint, from its caller's view."""

    #: taint the return value carries → shortest trail that reaches it.
    ret: TaintMap = field(default_factory=dict)
    #: parameter index → sinks it descends into.
    param_sinks: dict[int, tuple[SinkPoint, ...]] = field(default_factory=dict)

    def return_kinds(self) -> set[str]:
        return {item.kind for item in self.ret if isinstance(item, Tag)}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Summary):
            return NotImplemented
        return self.ret == other.ret and self.param_sinks == other.param_sinks


@dataclass(frozen=True, order=True)
class FlowHit:
    """One confirmed source→sink flow."""

    kind: str
    tag: Tag
    sink: Sink
    #: function labels from the source's origin to the sink's owner.
    chain: tuple[str, ...]


class FlowAnalysis:
    """Run the interprocedural fixpoint over a :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.covered = covered_fields(program)
        self.summaries: dict[FuncId, Summary] = {
            fid: Summary() for fid in program.functions
        }
        #: (class label, field) → taint written into the field.
        self.field_taints: dict[tuple[str, str], TaintMap] = {}
        self.hits: list[FlowHit] = []
        self._fixpoint()
        self._record()

    # -- driver --------------------------------------------------------
    def _fixpoint(self) -> None:
        order = sorted(self.program.functions)
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fid in order:
                summary = _Transfer(self, fid).run()
                if summary != self.summaries[fid]:
                    self.summaries[fid] = summary
                    changed = True
            if not changed:
                return

    def _record(self) -> None:
        seen: dict[tuple[str, Tag, Sink], Trail] = {}
        for fid in sorted(self.program.functions):
            transfer = _Transfer(self, fid)
            transfer.run()
            for hit in transfer.hits:
                key = (hit.kind, hit.tag, hit.sink)
                incumbent = seen.get(key)
                if incumbent is None or _better(hit.chain, incumbent):
                    seen[key] = hit.chain
        self.hits = sorted(
            FlowHit(kind=k, tag=t, sink=s, chain=chain)
            for (k, t, s), chain in seen.items()
        )


class _Transfer:
    """One intraprocedural pass over a single function body."""

    def __init__(self, analysis: FlowAnalysis, fid: FuncId) -> None:
        self.analysis = analysis
        self.program = analysis.program
        self.info: FunctionInfo = self.program.functions[fid]
        self.fid = fid
        self.label = fid.label
        self.src = self.info.src
        #: call sites by full source extent — stable across runs (no
        #: identity keys), and unambiguous even for chained calls like
        #: ``sha256(x).hexdigest()`` where outer and inner call share a
        #: start position.
        self.sites: dict[tuple[int, int, int | None, int | None], CallSite] = {
            _extent(site.node): site
            for site in self.program.callsites.get(fid, [])
        }
        self.env: dict[str, TaintMap] = {}
        self.hash_locals: set[str] = set()
        self.ret: TaintMap = {}
        self.param_sinks: dict[int, dict[tuple[Sink, tuple[str, ...]], Trail]] = {}
        self.hits: list[FlowHit] = []
        self._is_label_fn = _is_label_name(self.info.node.name)

    # -- entry ---------------------------------------------------------
    def run(self) -> Summary:
        self._seed_params()
        for _ in range(_MAX_BODY_PASSES):
            self.hits = []
            before = (
                {k: dict(v) for k, v in self.env.items()},
                dict(self.ret),
                {k: dict(v) for k, v in self.param_sinks.items()},
            )
            for stmt in self.info.node.body:
                self._stmt(stmt)
            after = (
                {k: dict(v) for k, v in self.env.items()},
                dict(self.ret),
                {k: dict(v) for k, v in self.param_sinks.items()},
            )
            if after == before:
                break
        if self._is_label_fn:
            self._label_sink()
        return Summary(ret=dict(self.ret), param_sinks=self._packed_sinks())

    def _seed_params(self) -> None:
        args = self.info.node.args
        named = {
            arg.arg: arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        }
        for index, name in enumerate(self.info.params):
            taints: TaintMap = {ParamTaint(index, ALL_KINDS): ()}
            arg = named.get(name)
            if arg is not None and is_set_annotation(arg.annotation):
                taints[
                    Tag(
                        kind=UNORDERED,
                        path=self.src.display_path,
                        line=arg.lineno,
                        detail=f"set-typed parameter {name!r}",
                        origin=self.label,
                    )
                ] = ()
            self.env[name] = taints

    def _packed_sinks(self) -> dict[int, tuple[SinkPoint, ...]]:
        out: dict[int, tuple[SinkPoint, ...]] = {}
        for index in sorted(self.param_sinks):
            points = sorted(
                SinkPoint(sink=sink, descent=descent, kinds=kinds)
                for (sink, kinds), descent in self.param_sinks[index].items()
            )
            if points:
                out[index] = tuple(points)
        return out

    # -- sinks ---------------------------------------------------------
    def _feed_sink(self, sink: Sink, taints: TaintMap, kinds: tuple[str, ...]) -> None:
        """A value carrying ``taints`` reaches ``sink`` (direct, here)."""
        for item, trail in taints.items():
            if isinstance(item, Tag):
                if item.kind in kinds:
                    self.hits.append(
                        FlowHit(
                            kind=item.kind,
                            tag=item,
                            sink=sink,
                            chain=(*trail, self.label),
                        )
                    )
            else:
                surviving = tuple(k for k in item.kinds if k in kinds)
                if surviving:
                    self._add_param_sink(
                        item.index, sink, (self.label,), surviving
                    )

    def _add_param_sink(
        self, index: int, sink: Sink, descent: tuple[str, ...],
        kinds: tuple[str, ...],
    ) -> None:
        if len(descent) > _MAX_DESCENT:
            return
        slot = self.param_sinks.setdefault(index, {})
        key = (sink, kinds)
        incumbent = slot.get(key)
        if incumbent is None or _better(descent, incumbent):
            slot[key] = descent

    def _label_sink(self) -> None:
        sink = Sink(
            kind="label",
            detail=self.info.node.name,
            path=self.src.display_path,
            line=self.info.node.lineno,
        )
        # Labels are digest material downstream (axis labels key report
        # tables that get hashed), so every kind sinks here — a label
        # built from set iteration is as digest-hostile as lossy text.
        self._feed_sink(sink, self.ret, kinds=ALL_KINDS)

    def _field_write(
        self, cls: ClassInfo, fname: str, taints: TaintMap, line: int
    ) -> None:
        """A value lands in ``cls.fname``: sink if covered, recorded always."""
        label = cls.fid.label
        covered = self.analysis.covered.get(label, frozenset())
        if fname in covered:
            sink = Sink(
                kind="field",
                detail=f"{cls.name}.{fname}",
                path=cls.src.display_path,
                line=cls.field_nodes[fname].lineno
                if fname in cls.field_nodes
                else line,
            )
            self._feed_sink(sink, taints, kinds=ALL_KINDS)
        stored = self.analysis.field_taints.setdefault((label, fname), {})
        for item, trail in taints.items():
            if isinstance(item, Tag):
                incumbent = stored.get(item)
                candidate = (*trail, self.label)
                if incumbent is None or _better(candidate, incumbent):
                    stored[item] = candidate

    def _field_read(self, cls: ClassInfo, fname: str) -> TaintMap:
        stored = self.analysis.field_taints.get((cls.fid.label, fname), {})
        marker = f"field {cls.name}.{fname}"
        return {item: (*trail, marker) for item, trail in stored.items()}

    # -- statements ----------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, stmt.value, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            self._assign(stmt.target, stmt.value, value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _merge(self.ret, self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self._eval(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._stmt(sub)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_names(stmt.target, self._eval(stmt.iter))
            for sub in [*stmt.body, *stmt.orelse]:
                self._stmt(sub)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_names(item.optional_vars, ctx)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
            for sub in [*stmt.orelse, *stmt.finalbody]:
                self._stmt(sub)
        elif isinstance(stmt, ast.Match):
            self._eval(stmt.subject)
            for case in stmt.cases:
                for sub in case.body:
                    self._stmt(sub)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested defs/classes are separate graph nodes; Pass/Break/...
        # carry no taint.

    def _assign(
        self, target: ast.expr, value_node: ast.expr, value: TaintMap
    ) -> None:
        if isinstance(target, ast.Name):
            if self._is_hash_constructor(value_node):
                self.hash_locals.add(target.id)
            _merge(self.env.setdefault(target.id, {}), value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, value_node, value)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value_node, value)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            cls = self._receiver_class(target.value.id)
            if cls is not None:
                self._field_write(cls, target.attr, value, target.lineno)

    def _bind_names(self, target: ast.expr, value: TaintMap) -> None:
        if isinstance(target, ast.Name):
            _merge(self.env.setdefault(target.id, {}), value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_names(elt, value)
        elif isinstance(target, ast.Starred):
            self._bind_names(target.value, value)

    def _receiver_class(self, name: str) -> ClassInfo | None:
        if self.info.self_name is not None and name == self.info.self_name:
            return self.program.class_named(
                self.fid.module, self.info.class_name or ""
            )
        return self.program.local_types(self.fid).get(name)

    def _is_hash_constructor(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        site = self.sites.get(_extent(node))
        return (
            site is not None
            and site.kind == "external"
            and site.external in HASH_CONSTRUCTORS
        )

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr) -> TaintMap:
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.JoinedStr):
            return self._eval_fstring(node)
        if isinstance(node, ast.BinOp):
            out: TaintMap = {}
            _merge(out, self._eval(node.left))
            _merge(out, self._eval(node.right))
            hazard = float_format_hazard(node, self.src)
            if hazard is not None:
                _merge(out, {self._lossy_tag(node.lineno, hazard[1]): ()})
            return out
        if isinstance(node, ast.BoolOp):
            out = {}
            for value in node.values:
                _merge(out, self._eval(value))
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for cmp in node.comparators:
                self._eval(cmp)
            return {}
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            out = {}
            _merge(out, self._eval(node.body))
            _merge(out, self._eval(node.orelse))
            return out
        if isinstance(node, (ast.List, ast.Tuple)):
            out = {}
            for elt in node.elts:
                _merge(out, self._eval(elt))
            return out
        if isinstance(node, ast.Set):
            out = {}
            for elt in node.elts:
                _merge(out, self._eval(elt))
            _merge(out, {self._unordered_tag(node.lineno, "set literal"): ()})
            return out
        if isinstance(node, ast.Dict):
            out = {}
            for key in node.keys:
                if key is not None:
                    _merge(out, self._eval(key))
            for value in node.values:
                _merge(out, self._eval(value))
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            out = self._eval_comprehension(node.generators, [node.elt])
            if isinstance(node, ast.SetComp):
                _merge(
                    out,
                    {self._unordered_tag(node.lineno, "set comprehension"): ()},
                )
            return out
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node.generators, [node.key, node.value])
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._bind_names(node.target, value)
            return value
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, ast.Slice):
            return {}
        return {}

    def _eval_comprehension(
        self, generators: list[ast.comprehension], result_exprs: list[ast.expr]
    ) -> TaintMap:
        out: TaintMap = {}
        for gen in generators:
            iter_map = self._eval(gen.iter)
            self._bind_names(gen.target, iter_map)
            _merge(out, iter_map)
            for cond in gen.ifs:
                self._eval(cond)
        for expr in result_exprs:
            _merge(out, self._eval(expr))
        return out

    def _eval_fstring(self, node: ast.JoinedStr) -> TaintMap:
        out: TaintMap = {}
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                _merge(out, self._eval(value.value))
                hazard = float_format_hazard(value, self.src)
                if hazard is not None and not self._is_canon_call(hazard[0]):
                    _merge(
                        out, {self._lossy_tag(value.value.lineno, hazard[1]): ()}
                    )
        return out

    def _is_canon_call(self, node: ast.expr | None) -> bool:
        if not isinstance(node, ast.Call):
            return False
        site = self.sites.get(_extent(node))
        if site is None:
            return False
        if site.kind == "internal" and site.target is not None:
            return site.target.qualname.rsplit(".", 1)[-1] in CANON_CALLS
        if site.kind == "external" and site.external is not None:
            return site.external.rsplit(".", 1)[-1] in CANON_CALLS
        return False

    def _eval_attribute(self, node: ast.Attribute) -> TaintMap:
        out: TaintMap = {}
        if isinstance(node.value, ast.Name):
            cls = self._receiver_class(node.value.id)
            if cls is not None and node.attr in cls.fields:
                _merge(out, self._field_read(cls, node.attr))
            _merge(out, dict(self.env.get(node.value.id, {})))
        else:
            _merge(out, self._eval(node.value))
        return out

    # -- calls ---------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> TaintMap:
        arg_maps = [self._eval(arg) for arg in node.args]
        kw_maps = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
        }  # None key = **kwargs
        site = self.sites.get(_extent(node))
        if site is None:
            return self._union(arg_maps, kw_maps)

        if site.kind == "internal" and site.target is not None:
            return self._apply_internal(node, site.target, arg_maps, kw_maps)
        if site.kind == "constructor" and site.cls is not None:
            self._apply_constructor(node, site.cls, arg_maps, kw_maps)
            return {}
        if site.kind == "external" and site.external is not None:
            return self._apply_external(node, site.external, arg_maps, kw_maps)
        # Open call: method calls on plain locals land here (``h.update``
        # resolves to no graph node), so receiver semantics — hash-sink
        # updates, ``.sort()``, mutators — apply before the conservative
        # pass-through.  The open edge itself is recorded in the graph.
        everything = self._union(arg_maps, kw_maps)
        handled = self._receiver_semantics(node, arg_maps, kw_maps, everything)
        if handled is not None:
            return handled
        out = dict(everything)
        if isinstance(node.func, ast.Attribute):
            _merge(out, self._eval(node.func.value))
        return out

    @staticmethod
    def _union(
        arg_maps: list[TaintMap], kw_maps: dict[str | None, TaintMap]
    ) -> TaintMap:
        out: TaintMap = {}
        for taints in arg_maps:
            _merge(out, taints)
        for taints in kw_maps.values():
            _merge(out, taints)
        return out

    def _callee_arg_map(
        self,
        callee: FunctionInfo,
        index: int,
        arg_maps: list[TaintMap],
        kw_maps: dict[str | None, TaintMap],
    ) -> TaintMap:
        if index < len(arg_maps):
            return arg_maps[index]
        if index < len(callee.params):
            return kw_maps.get(callee.params[index], {})
        return {}

    def _apply_internal(
        self,
        node: ast.Call,
        target: FuncId,
        arg_maps: list[TaintMap],
        kw_maps: dict[str | None, TaintMap],
    ) -> TaintMap:
        callee = self.program.functions[target]
        summary = self.analysis.summaries.get(target, Summary())
        out: TaintMap = {}
        for item, trail in summary.ret.items():
            if isinstance(item, Tag):
                # The tag crossed the callee on its way here.
                _merge(out, {item: (*trail, target.label)})
            else:
                passed = self._callee_arg_map(callee, item.index, arg_maps, kw_maps)
                for inner, inner_trail in passed.items():
                    if isinstance(inner, Tag):
                        if inner.kind in item.kinds:
                            _merge(out, {inner: inner_trail})
                    else:
                        kinds = tuple(
                            k for k in inner.kinds if k in item.kinds
                        )
                        if kinds:
                            _merge(
                                out,
                                {ParamTaint(inner.index, kinds): inner_trail},
                            )
        for index, points in summary.param_sinks.items():
            passed = self._callee_arg_map(callee, index, arg_maps, kw_maps)
            if not passed:
                continue
            for point in points:
                for inner, inner_trail in passed.items():
                    if isinstance(inner, Tag):
                        if inner.kind in point.kinds:
                            self.hits.append(
                                FlowHit(
                                    kind=inner.kind,
                                    tag=inner,
                                    sink=point.sink,
                                    chain=(
                                        *inner_trail,
                                        self.label,
                                        *point.descent,
                                    ),
                                )
                            )
                    else:
                        kinds = tuple(
                            k for k in inner.kinds if k in point.kinds
                        )
                        if kinds:
                            self._add_param_sink(
                                inner.index,
                                point.sink,
                                (self.label, *point.descent),
                                kinds,
                            )
        return out

    def _apply_constructor(
        self,
        node: ast.Call,
        cls: ClassInfo,
        arg_maps: list[TaintMap],
        kw_maps: dict[str | None, TaintMap],
    ) -> None:
        if not cls.is_dataclass:
            return
        for index, taints in enumerate(arg_maps):
            if index < len(cls.fields) and taints:
                self._field_write(cls, cls.fields[index], taints, node.lineno)
        for name, taints in kw_maps.items():
            if name is not None and name in cls.fields and taints:
                self._field_write(cls, name, taints, node.lineno)

    def _apply_external(
        self,
        node: ast.Call,
        name: str,
        arg_maps: list[TaintMap],
        kw_maps: dict[str | None, TaintMap],
    ) -> TaintMap:
        tail = name.rsplit(".", 1)[-1]
        everything = self._union(arg_maps, kw_maps)

        if tail in CANON_CALLS:
            return _strip(everything, LOSSY)
        if name in NONDET_SOURCES:
            return {
                self._tag(NONDET, node.lineno, f"{name}() — {NONDET_SOURCES[name]}"): ()
            }
        rng = is_unseeded_rng(name, node)
        if rng is not None:
            return {self._tag(NONDET, node.lineno, f"{name}() — {rng}"): ()}
        if name == "format":
            hazard = float_format_hazard(node, self.src)
            if hazard is not None and not self._is_canon_call(hazard[0]):
                out = dict(everything)
                _merge(out, {self._lossy_tag(node.lineno, hazard[1]): ()})
                return out
            return everything
        if name in ORDER_FREE_CALLS:
            return _strip(everything, UNORDERED)
        if name in PREDICATE_CALLS:
            return {}
        if name in {"set", "frozenset"}:
            out = dict(everything)
            _merge(out, {self._unordered_tag(node.lineno, f"{name}() construction"): ()})
            return out
        if name in WALK_CALLS:
            return {
                self._unordered_tag(
                    node.lineno, f"{name}() yields entries in inode order"
                ): ()
            }
        if name in HASH_CONSTRUCTORS:
            if everything:
                self._feed_sink(self._hash_sink(node, name), everything, ALL_KINDS)
            return {}
        if name == "json.dumps":
            # Only the *canonical* form is a sink: ``sort_keys=...`` is
            # this repo's convention for digest material.  A plain dump
            # (transport serialization, e.g. ``to_json``) passes taint
            # through — if its output is hashed, the hash sink fires.
            if any(kw.arg == "sort_keys" for kw in node.keywords):
                self._feed_sink(
                    Sink(
                        kind="json",
                        detail="json.dumps(sort_keys=...)",
                        path=self.src.display_path,
                        line=node.lineno,
                    ),
                    everything,
                    ALL_KINDS,
                )
                return {}
            return everything

        # Method-shaped externals share receiver semantics with opens.
        handled = self._receiver_semantics(node, arg_maps, kw_maps, everything)
        if handled is not None:
            return handled
        if isinstance(node.func, ast.Attribute):
            out = dict(everything)
            _merge(out, self._eval(node.func.value))
            return out
        return everything

    def _receiver_semantics(
        self,
        node: ast.Call,
        arg_maps: list[TaintMap],
        kw_maps: dict[str | None, TaintMap],
        everything: TaintMap,
    ) -> TaintMap | None:
        """Model ``receiver.method(...)`` calls; None when not one."""
        if not isinstance(node.func, ast.Attribute):
            return None
        attr = node.func.attr
        receiver = node.func.value
        if attr in WALK_METHODS:
            return {
                self._unordered_tag(
                    node.lineno, f".{attr}() yields entries in inode order"
                ): ()
            }
        if not isinstance(receiver, ast.Name):
            return None
        rname = receiver.id
        if rname in self.hash_locals:
            if attr == "update":
                if everything:
                    self._feed_sink(
                        self._hash_sink(node, f"{rname}.update"),
                        everything,
                        ALL_KINDS,
                    )
                return {}
            if attr in ("hexdigest", "digest", "copy"):
                return {}
        if attr == "sort":
            slot = self.env.get(rname)
            if slot is not None:
                self.env[rname] = _strip(slot, UNORDERED)
            return {}
        if attr in MUTATORS:
            # The key/index argument of setdefault/insert never becomes
            # container *content* — an ``id()`` dict key must not taint
            # the values iterated out of the dict.
            skip = 1 if attr in ("setdefault", "insert") else 0
            stored: TaintMap = {}
            for taints in arg_maps[skip:]:
                _merge(stored, taints)
            for taints in kw_maps.values():
                _merge(stored, taints)
            if stored:
                _merge(self.env.setdefault(rname, {}), stored)
            return dict(stored) if attr == "setdefault" else {}
        return None

    # -- tag/sink builders ---------------------------------------------
    def _tag(self, kind: str, line: int, detail: str) -> Tag:
        return Tag(
            kind=kind,
            path=self.src.display_path,
            line=line,
            detail=detail,
            origin=self.label,
        )

    def _unordered_tag(self, line: int, detail: str) -> Tag:
        return self._tag(UNORDERED, line, detail)

    def _lossy_tag(self, line: int, detail: str) -> Tag:
        return self._tag(LOSSY, line, detail)

    def _hash_sink(self, node: ast.Call, detail: str) -> Sink:
        return Sink(
            kind="hash",
            detail=detail,
            path=self.src.display_path,
            line=node.lineno,
        )


def _is_label_name(name: str) -> bool:
    from repro.lint.rules.canonfloat import _LABEL_NAME_RE

    return bool(_LABEL_NAME_RE.search(name))


__all__ = ["FlowAnalysis", "FlowHit", "Summary", "Trail"]
