"""Swap digraphs and schedules for multi-party protocols (§7).

A multi-party swap is a strongly connected digraph whose vertices are
parties and whose arcs are proposed asset transfers.  This package provides
the digraph model, path and feedback-vertex-set utilities, and the phase
schedules (who acts in which round, which deadline every contract enforces).
"""

from repro.graph.digraph import ArcSpec, SwapGraph, ring_graph, complete_graph, figure3_graph
from repro.graph.feedback import is_feedback_vertex_set, minimum_feedback_vertex_set
from repro.graph.schedule import MultiPartySchedule

__all__ = [
    "ArcSpec",
    "SwapGraph",
    "ring_graph",
    "complete_graph",
    "figure3_graph",
    "is_feedback_vertex_set",
    "minimum_feedback_vertex_set",
    "MultiPartySchedule",
]
