"""Phase schedules for the multi-party protocols (§7.1 timeout rules).

"Timeouts are determined as follows.  Each step takes time at most Δ.  In
the first phase, the leaders should escrow their outgoing escrow premiums
before Δ elapses, and each following step's timeout increases by Δ."

The schedule turns that rule into concrete heights.  One height = Δ; an
action performed in round *r* lands at height *r + 1*.

Hedged protocol phases::

    phase 1  escrow premiums   length  max_depth + 1   (forward flow)
    phase 2  redemption prem.  length  n               (backward flow)
    phase 3  principal escrow  length  max_depth + 1   (forward flow)
    phase 4  hashkey release   length  n               (backward flow)

Per-arc deadlines: a forward-flow action on arc ``(u, v)`` must land by
``phase_start + depth(u) + 1``; a backward-flow item carrying path ``q``
must land by ``phase_start + |q|``.

The base (unhedged) protocol uses phase 3 and phase 4 only.  Herlihy '18
states hashkey timeouts as ``(diam(G) + |q|)·Δ``; because our discretization
adds one Δ to the escrow phase (DESIGN.md), we use
``M = max(diam(G), max_depth + 1)`` in place of ``diam(G)``, which preserves
the construction (the escrow phase always fits before the first hashkey
deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import GraphError
from repro.graph.digraph import Arc, SwapGraph
from repro.graph.feedback import is_feedback_vertex_set


@dataclass(frozen=True)
class MultiPartySchedule:
    """All phase boundaries and per-arc deadlines for one swap."""

    graph: SwapGraph
    leaders: tuple[str, ...]
    depths: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.leaders:
            raise GraphError("at least one leader is required")
        if not set(self.leaders) <= set(self.graph.parties):
            raise GraphError("leaders must be parties of the graph")
        if not is_feedback_vertex_set(self.graph, self.leaders):
            raise GraphError(f"leaders {self.leaders} are not a feedback vertex set")
        if not self.depths:
            object.__setattr__(self, "depths", self.graph.follower_depths(self.leaders))

    # ------------------------------------------------------------------
    # basic quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.graph.parties)

    @cached_property
    def max_depth(self) -> int:
        return max(self.depths.values())

    @cached_property
    def forward_len(self) -> int:
        """Length of a forward-flow phase (escrow premiums / principals)."""
        return self.max_depth + 1

    @cached_property
    def backward_len(self) -> int:
        """Length of a backward-flow phase (premium/hashkey propagation)."""
        return self.n

    # ------------------------------------------------------------------
    # hedged protocol phase boundaries (§7.1: four phases)
    # ------------------------------------------------------------------
    @property
    def p1_start(self) -> int:
        return 0

    @cached_property
    def p2_start(self) -> int:
        return self.p1_start + self.forward_len

    @cached_property
    def p3_start(self) -> int:
        return self.p2_start + self.backward_len

    @cached_property
    def p4_start(self) -> int:
        return self.p3_start + self.forward_len

    @cached_property
    def end(self) -> int:
        return self.p4_start + self.backward_len

    @cached_property
    def horizon(self) -> int:
        """Rounds to run so the final settlement tick fires (height end+1)."""
        return self.end + 1

    # ------------------------------------------------------------------
    # per-arc / per-path deadlines (hedged)
    # ------------------------------------------------------------------
    def escrow_premium_deadline(self, arc: Arc) -> int:
        u, _ = arc
        return self.p1_start + self.depths[u] + 1

    def redemption_premium_deadline(self, path_length: int) -> int:
        return self.p2_start + path_length

    def principal_deadline(self, arc: Arc) -> int:
        u, _ = arc
        return self.p3_start + self.depths[u] + 1

    def hashkey_deadline(self, path_length: int) -> int:
        return self.p4_start + path_length

    @property
    def activation_deadline(self) -> int:
        """Escrow premiums not activated by the end of phase 2 refund."""
        return self.p3_start

    # ------------------------------------------------------------------
    # base protocol (no premium phases)
    # ------------------------------------------------------------------
    @cached_property
    def base_m(self) -> int:
        """The Herlihy '18 timeout base, adjusted for discretization."""
        return max(self.graph.diameter, self.forward_len)

    def base_principal_deadline(self, arc: Arc) -> int:
        u, _ = arc
        return self.depths[u] + 1

    def base_hashkey_deadline(self, path_length: int) -> int:
        return self.base_m + path_length

    @cached_property
    def base_end(self) -> int:
        return self.base_m + self.backward_len

    @cached_property
    def base_horizon(self) -> int:
        return self.base_end + 1
