"""The swap digraph model.

Arcs carry an :class:`ArcSpec` saying which chain hosts the transferred
asset and how much moves.  Paths follow arcs *forward* and are written
redeemer-first, exactly as in Figure 3b: a hashkey (or redemption premium)
path ``q = (v, ..., L)`` runs from the redeemer ``v`` of the arc where it is
presented to the leader ``L`` who originated it, with every consecutive pair
``(q_i, q_{i+1})`` an arc of the digraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import GraphError

Arc = tuple[str, str]


@dataclass(frozen=True)
class ArcSpec:
    """What moves along an arc: chain, token symbol, and amount."""

    chain: str
    token: str
    amount: int


@dataclass(frozen=True)
class SwapGraph:
    """A directed swap graph with per-arc asset specifications."""

    parties: tuple[str, ...]
    arcs: tuple[Arc, ...]
    specs: dict[Arc, ArcSpec]

    def __post_init__(self) -> None:
        seen = set(self.parties)
        if len(seen) != len(self.parties):
            raise GraphError("duplicate parties")
        for (u, v) in self.arcs:
            if u == v:
                raise GraphError(f"self-loop ({u},{v}) not allowed")
            if u not in seen or v not in seen:
                raise GraphError(f"arc ({u},{v}) references unknown party")
        if set(self.specs) != set(self.arcs):
            raise GraphError("specs must cover exactly the arcs")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        parties: list[str] | tuple[str, ...],
        arcs: list[Arc],
        specs: dict[Arc, ArcSpec] | None = None,
        default_amount: int = 100,
    ) -> "SwapGraph":
        """Create a graph; default specs put each arc's asset on a chain
        named after the sender (each party sells an asset it manages)."""
        if specs is None:
            specs = {
                (u, v): ArcSpec(chain=f"{u.lower()}-chain", token=f"{u.lower()}-token", amount=default_amount)
                for (u, v) in arcs
            }
        return SwapGraph(tuple(parties), tuple(arcs), dict(specs))

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @cached_property
    def arc_set(self) -> frozenset[Arc]:
        return frozenset(self.arcs)

    def in_arcs(self, v: str) -> tuple[Arc, ...]:
        """Arcs entering ``v`` (where ``v`` is the redeemer)."""
        return tuple((u, w) for (u, w) in self.arcs if w == v)

    def out_arcs(self, v: str) -> tuple[Arc, ...]:
        """Arcs leaving ``v`` (where ``v`` is the escrower)."""
        return tuple((u, w) for (u, w) in self.arcs if u == v)

    def in_neighbors(self, v: str) -> tuple[str, ...]:
        return tuple(u for (u, w) in self.arcs if w == v)

    def out_neighbors(self, v: str) -> tuple[str, ...]:
        return tuple(w for (u, w) in self.arcs if u == v)

    @cached_property
    def chains(self) -> tuple[str, ...]:
        """All chain names appearing in arc specs (sorted, unique)."""
        return tuple(sorted({spec.chain for spec in self.specs.values()}))

    def is_strongly_connected(self) -> bool:
        """True iff every vertex reaches every other following arcs."""
        if not self.parties:
            return False
        for start in self.parties:
            reached = self._reachable(start)
            if reached != set(self.parties):
                return False
        return True

    def _reachable(self, start: str) -> set[str]:
        frontier, seen = [start], {start}
        while frontier:
            u = frontier.pop()
            for w in self.out_neighbors(u):
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return seen

    @cached_property
    def diameter(self) -> int:
        """Max over ordered vertex pairs of the shortest-path distance."""
        if not self.is_strongly_connected():
            raise GraphError("diameter requires strong connectivity")
        best = 0
        for start in self.parties:
            dist = {start: 0}
            frontier = [start]
            while frontier:
                nxt: list[str] = []
                for u in frontier:
                    for w in self.out_neighbors(u):
                        if w not in dist:
                            dist[w] = dist[u] + 1
                            nxt.append(w)
                frontier = nxt
            best = max(best, max(dist.values()))
        return best

    # ------------------------------------------------------------------
    # paths (Figure 3b semantics)
    # ------------------------------------------------------------------
    def simple_paths(self, source: str, target: str) -> list[tuple[str, ...]]:
        """All simple paths from ``source`` to ``target`` following arcs."""
        out: list[tuple[str, ...]] = []

        def walk(path: list[str]) -> None:
            tip = path[-1]
            if tip == target:
                out.append(tuple(path))
                return
            for w in self.out_neighbors(tip):
                if w not in path:
                    path.append(w)
                    walk(path)
                    path.pop()

        walk([source])
        return out

    def hashkey_paths(self, arc: Arc, leader: str) -> list[tuple[str, ...]]:
        """Paths a hashkey from ``leader`` may carry on ``arc`` (Fig. 3b):
        simple forward paths from the arc's redeemer to the leader."""
        if arc not in self.arc_set:
            raise GraphError(f"{arc} is not an arc")
        _, v = arc
        return self.simple_paths(v, leader)

    def is_path(self, q: tuple[str, ...]) -> bool:
        """True iff ``q`` is a simple path following arcs forward."""
        if not q or len(set(q)) != len(q):
            return False
        return all((q[i], q[i + 1]) in self.arc_set for i in range(len(q) - 1))

    @cached_property
    def max_path_length(self) -> int:
        """Upper bound on |q| for any simple path: the vertex count."""
        return len(self.parties)

    # ------------------------------------------------------------------
    # leader/follower structure
    # ------------------------------------------------------------------
    def follower_depths(self, leaders: tuple[str, ...] | frozenset[str]) -> dict[str, int]:
        """Escrow-phase depth of every vertex given ``leaders``.

        Leaders have depth 0 (they act first); a follower's depth is one
        more than the deepest of its in-neighbors.  Well-defined exactly
        when the leaders form a feedback vertex set.
        """
        leader_set = frozenset(leaders)
        depths: dict[str, int] = {}
        in_progress: set[str] = set()

        def depth(v: str) -> int:
            if v in leader_set:
                return 0
            if v in depths:
                return depths[v]
            if v in in_progress:
                raise GraphError(
                    f"leaders {sorted(leader_set)} are not a feedback vertex set "
                    f"(follower cycle through {v!r})"
                )
            in_progress.add(v)
            preds = self.in_neighbors(v)
            if not preds:
                raise GraphError(f"{v!r} has no incoming arcs (not strongly connected)")
            depths[v] = 1 + max(depth(u) for u in preds)
            in_progress.discard(v)
            return depths[v]

        return {v: depth(v) for v in self.parties}


# ----------------------------------------------------------------------
# canned graphs used throughout tests and benchmarks
# ----------------------------------------------------------------------
def ring_graph(n: int, amount: int = 100) -> SwapGraph:
    """A directed ring P0 -> P1 -> ... -> P0 (unique paths everywhere)."""
    if n < 2:
        raise GraphError("a ring needs at least 2 parties")
    parties = [f"P{i}" for i in range(n)]
    arcs = [(parties[i], parties[(i + 1) % n]) for i in range(n)]
    return SwapGraph.build(parties, arcs, default_amount=amount)


def complete_graph(n: int, amount: int = 100) -> SwapGraph:
    """The complete digraph on n parties (worst-case premium growth)."""
    if n < 2:
        raise GraphError("a complete digraph needs at least 2 parties")
    parties = [f"P{i}" for i in range(n)]
    arcs = [(u, v) for u in parties for v in parties if u != v]
    return SwapGraph.build(parties, arcs, default_amount=amount)


def figure3_graph(amount: int = 100) -> SwapGraph:
    """The digraph of Figure 3a: arcs (A,B), (B,A), (B,C), (C,A).

    Alice is the canonical single leader ({A} is a feedback vertex set:
    removing A leaves only the arc (B,C), which is acyclic).
    """
    parties = ["A", "B", "C"]
    arcs = [("A", "B"), ("B", "A"), ("B", "C"), ("C", "A")]
    return SwapGraph.build(parties, arcs, default_amount=amount)
