"""Feedback vertex sets.

The multi-party protocol requires the leaders to form a feedback vertex set
(FVS): deleting them must leave the digraph acyclic, which is what makes
both the escrow schedule (Eq. 2's recursion) and the follower depths
well-defined.  We provide an exact check and an exact minimum-FVS search by
subset enumeration — swap digraphs are small (parties who all have to sign
one deal), so exponential search is appropriate; a greedy fallback handles
larger graphs.
"""

from __future__ import annotations

from itertools import combinations

from repro.graph.digraph import SwapGraph


def _has_cycle_excluding(graph: SwapGraph, removed: frozenset[str]) -> bool:
    """DFS cycle check on the subgraph without ``removed`` vertices."""
    color: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(u: str) -> bool:
        color[u] = 0
        for w in graph.out_neighbors(u):
            if w in removed:
                continue
            state = color.get(w)
            if state == 0:
                return True
            if state is None and visit(w):
                return True
        color[u] = 1
        return False

    for v in graph.parties:
        if v in removed or v in color:
            continue
        if visit(v):
            return True
    return False


def is_feedback_vertex_set(graph: SwapGraph, leaders: tuple[str, ...] | frozenset[str]) -> bool:
    """True iff deleting ``leaders`` leaves the digraph acyclic."""
    return not _has_cycle_excluding(graph, frozenset(leaders))


def minimum_feedback_vertex_set(graph: SwapGraph, exact_limit: int = 12) -> tuple[str, ...]:
    """A minimum FVS (exact for ≤ ``exact_limit`` vertices, greedy beyond).

    Ties break lexicographically so results are deterministic.
    """
    vertices = tuple(sorted(graph.parties))
    if len(vertices) <= exact_limit:
        for size in range(0, len(vertices) + 1):
            for subset in combinations(vertices, size):
                if is_feedback_vertex_set(graph, frozenset(subset)):
                    return subset
    # Greedy: repeatedly remove the vertex with highest degree until acyclic.
    removed: set[str] = set()
    while _has_cycle_excluding(graph, frozenset(removed)):
        candidates = [v for v in vertices if v not in removed]
        best = max(
            candidates,
            key=lambda v: (
                len(graph.in_neighbors(v)) + len(graph.out_neighbors(v)),
                v,
            ),
        )
        removed.add(best)
    return tuple(sorted(removed))
