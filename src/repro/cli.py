"""Command-line interface: run any protocol and print its trace/outcome.

Examples::

    python -m repro.cli two-party
    python -m repro.cli two-party --hedged --deviate Bob@3
    python -m repro.cli multi-party --graph ring:4 --deviate P2@9
    python -m repro.cli broker --deviate Alice@6
    python -m repro.cli auction --strategy publish-loser
    python -m repro.cli bootstrap --value 1000000 --rate 100
    python -m repro.cli check two-party

``--deviate NAME@ROUND`` wraps the named party in a sore-loser halt; it can
be repeated.  ``check`` runs the exhaustive model checker for a protocol
family and prints the report.

**The declarative spec workflow** is the front door to every engine: one
JSON :class:`~repro.campaign.experiment.ExperimentSpec` names the matrix
factory and its parameters, the selection, the backend, the refinement
tolerance, and (optionally) the digests the run must reproduce.

- ``spec campaign|ablate|ablate-refine [flags] --out SPEC.json`` emits a
  spec from the same flags the legacy subcommands take,
- ``run SPEC.json`` executes it — add ``--cache DIR`` for the incremental
  result cache (verified scenario blocks keyed on block descriptor + code
  version are served from the store; the hit-rate is reported next to the
  digest, which a warm run reproduces byte-identically),
- ``merge R1.json R2.json ...`` is kind-aware: campaign shard reports (of
  either matrix shape) recombine into the unsharded run digest, and
  ablation-shaped merges reduce the frontier too,
- the legacy ``campaign``/``ablate``/``ablate-refine`` subcommands are
  thin shims that construct the same spec from their flags and run it
  through the same facade — flag-driven and spec-driven runs are
  byte-identical by construction.

::

    python -m repro.cli spec ablate --premiums 0,0.02,0.05 --shocks 0.045 \
        --stages staked --out spec.json
    python -m repro.cli run spec.json --cache .repro-cache
    python -m repro.cli run spec.json --cache .repro-cache --expect 9c31…

``campaign`` runs the batched adversarial scenario matrix over every
protocol family:

- ``--backend process`` parallelises it (tiny selections fall back to
  serial; the report records the backend that actually ran),
- ``--limit N`` smoke-runs a deterministic subsample of exactly
  ``min(N, total)`` scenarios, stratified by matrix block — every family
  contributes at least one scenario whenever ``N`` reaches the block
  count, with the rest apportioned by block size,
- ``--shard I/N`` runs the I-th of N contiguous slices of the selection;
  every report states its selection and coverage, and folds them into the
  run digest, so a partial run can never pass for full coverage,
- ``--out report.json`` writes the report (with per-scenario digests) for
  ``campaign-merge``, which recombines shard reports and recomputes the
  run digest — byte-identical to the unsharded run when coverage is
  complete (``--expect DIGEST`` asserts it),
- ``--seed`` stamps the matrix identity into the digests but never changes
  which scenarios run.

::

    python -m repro.cli campaign
    python -m repro.cli campaign --families two-party,broker --backend process
    python -m repro.cli campaign --limit 120
    python -m repro.cli campaign --shard 1/3 --out shard1.json
    python -m repro.cli campaign-merge shard1.json shard2.json shard3.json \
        --expect 4f0c…

``ablate`` maps the deviation-profitability frontier: it crosses the
protocol families with rational (utility-driven) pivot actors over a
premium-fraction × price-shock × shock-stage grid, runs every cell's
comply/rational arm pair, and reduces the report to — per family, stage,
and shock — the smallest swept premium π* at which walking away stops
being rational (`repro.campaign.ablation`).  The frontier digest is
byte-identical across serial, process, pooled, and sharded-then-merged
runs of the same grid:

- ``--premiums`` / ``--shocks`` take comma-separated fractions,
  ``--stages`` a comma-separated mix of the named stages
  (``pre-stake,staked``), explicit ``round:K`` heights, or ``all`` — the
  dense per-round sweep charting how the deterrent decays round by round,
- ``--coalitions`` adds the named two-party coalition pivots (adjacent
  ring members, seller+buyer vs the broker) with joint-utility arms,
- ``--pooled`` runs through a persistent worker pool (the matrix is a
  registered pool factory, so workers rebuild and digest-verify it),
- ``--shard I/N --out shard.json`` writes a mergeable campaign report;
  ``ablate-merge`` recombines the shards, reduces the frontier, and
  checks ``--expect`` against the frontier digest.

::

    python -m repro.cli ablate
    python -m repro.cli ablate --families two-party --premiums 0,0.02 \
        --shocks 0.015,0.045 --pooled --expect 9c31…
    python -m repro.cli ablate --stages all --coalitions
    python -m repro.cli ablate --shard 1/2 --out s1.json
    python -m repro.cli ablate-merge s1.json s2.json --frontier-out frontier.json

``ablate-refine`` closes the staircase: it runs (or loads, via ``--from``)
a lattice frontier, then bisects each row's walk/deter boundary with
adaptive two-scenario cell probes until the bracket is within ``--tol``
(default 1/64), reporting a *continuous* π* that brackets the §5.2
closed-form thresholds.  The refined digest hashes the lattice digest,
the tolerance, and every probe outcome + probe run digest, so it is
byte-identical across serial, pooled, and refined-from-merged runs::

    python -m repro.cli ablate-refine --premiums 0,0.02,0.05 --shocks 0.045
    python -m repro.cli ablate-refine --stages all --coalitions --pooled
    python -m repro.cli ablate-refine --from frontier.json --tol 0.0078125 \
        --refined-out refined.json --expect 5c11…
"""

from __future__ import annotations

import argparse

from repro.campaign import (
    CampaignReport,
    Experiment,
    ExperimentError,
    ExperimentSpec,
    FAMILY_NAMES,
    ResultCache,
    WorkerPool,
    ablate_spec,
    campaign_spec,
    merge_reports_any,
    reduce_frontier,
    refine_frontier,
    refine_spec,
    report_from_json,
    shared_cache,
)
from repro.campaign.ablation import (
    ABLATION_FAMILIES,
    DEFAULT_TOL,
    FrontierReport,
)
from repro.checker import ModelChecker, full_strategy_space, halt_strategies, properties as props
from repro.core.bootstrap import BootstrapSpec, BootstrappedSwap, extract_bootstrap_outcome
from repro.core.hedged_auction import (
    AuctioneerStrategy,
    HedgedAuction,
    SealedBidAuction,
    extract_auction_outcome,
)
from repro.core.hedged_broker import HedgedBrokerDeal, extract_broker_outcome
from repro.core.multi_round_deal import DealSpec, MultiRoundDeal, extract_deal_outcome
from repro.core.hedged_multi_party import (
    HedgedMultiPartySwap,
    extract_multi_party_outcome,
)
from repro.core.hedged_two_party import HedgedTwoPartySwap
from repro.core.outcomes import extract_two_party_outcome
from repro.errors import ReproError
from repro.graph.digraph import SwapGraph, complete_graph, figure3_graph, ring_graph
from repro.parties.strategies import halt_at
from repro.protocols.base_broker import BaseBrokerDeal
from repro.protocols.base_multi_party import BaseMultiPartySwap
from repro.protocols.base_two_party import BaseTwoPartySwap
from repro.protocols.instance import ProtocolInstance, execute
from repro.sim.trace import render_lanes, render_timeline


def _parse_deviations(specs: list[str]):
    out = {}
    for item in specs or []:
        try:
            name, round_text = item.split("@", 1)
            rnd = int(round_text)
        except ValueError:
            raise SystemExit(f"--deviate expects NAME@ROUND, got {item!r}")
        out[name] = lambda actor, r=rnd: halt_at(actor, r)
    return out


def _parse_graph(text: str) -> SwapGraph:
    if text == "figure3":
        return figure3_graph()
    kind, _, n = text.partition(":")
    if kind == "ring":
        return ring_graph(int(n or 3))
    if kind == "complete":
        return complete_graph(int(n or 3))
    raise SystemExit(f"unknown graph {text!r}: use figure3, ring:N, or complete:N")


def _finish(instance: ProtocolInstance, args, outcome) -> None:
    result = instance.meta.pop("_result")
    if args.timeline:
        print(render_timeline(result))
    else:
        print(render_lanes(result, width=args.width))
    print()
    print("outcome:", outcome)


def cmd_two_party(args) -> None:
    builder = HedgedTwoPartySwap() if args.hedged else BaseTwoPartySwap()
    instance = builder.build()
    result = execute(instance, _parse_deviations(args.deviate))
    instance.meta["_result"] = result
    _finish(instance, args, extract_two_party_outcome(instance, result))


def cmd_multi_party(args) -> None:
    graph = _parse_graph(args.graph)
    if args.hedged:
        builder = HedgedMultiPartySwap(graph=graph, premium=args.premium)
    else:
        builder = BaseMultiPartySwap(graph=graph)
    instance = builder.build()
    result = execute(instance, _parse_deviations(args.deviate))
    instance.meta["_result"] = result
    _finish(instance, args, extract_multi_party_outcome(instance, result))


def cmd_broker(args) -> None:
    builder = HedgedBrokerDeal(premium=args.premium) if args.hedged else BaseBrokerDeal()
    instance = builder.build()
    result = execute(instance, _parse_deviations(args.deviate))
    instance.meta["_result"] = result
    _finish(instance, args, extract_broker_outcome(instance, result))


def cmd_deal(args) -> None:
    brokers = tuple(f"Broker{i + 1}" for i in range(args.brokers))
    spec = DealSpec(brokers=brokers)
    instance = MultiRoundDeal(spec, premium=args.premium).build()
    result = execute(instance, _parse_deviations(args.deviate))
    instance.meta["_result"] = result
    _finish(instance, args, extract_deal_outcome(instance, result))


def cmd_auction(args) -> None:
    strategy = AuctioneerStrategy(args.strategy)
    builder = SealedBidAuction(strategy=strategy) if args.sealed else HedgedAuction(strategy=strategy)
    instance = builder.build()
    result = execute(instance, _parse_deviations(args.deviate))
    instance.meta["_result"] = result
    _finish(instance, args, extract_auction_outcome(instance, result))


def cmd_bootstrap(args) -> None:
    spec = BootstrapSpec(
        amount_a=args.value, amount_b=args.value, rate=args.rate, rounds=args.rounds
    )
    instance = BootstrappedSwap(spec).build()
    result = execute(instance, _parse_deviations(args.deviate))
    instance.meta["_result"] = result
    _finish(instance, args, extract_bootstrap_outcome(instance, result))


def cmd_check(args) -> None:
    if args.protocol == "two-party":
        instance = HedgedTwoPartySwap().build()
        space = full_strategy_space(
            instance.horizon, ("deposit_premium", "escrow_principal", "redeem")
        )
        checker = ModelChecker(
            builder=lambda: HedgedTwoPartySwap().build(),
            properties=[props.no_stuck_escrow, props.two_party_hedged],
            strategies={p: space for p in instance.actors},
            max_adversaries=args.adversaries,
        )
    elif args.protocol == "multi-party":
        graph = _parse_graph(args.graph)
        instance = HedgedMultiPartySwap(graph=graph).build()
        checker = ModelChecker(
            builder=lambda: HedgedMultiPartySwap(graph=_parse_graph(args.graph)).build(),
            properties=[props.no_stuck_escrow, props.multi_party_lemmas],
            strategies={p: halt_strategies(instance.horizon) for p in instance.actors},
            max_adversaries=args.adversaries,
        )
    elif args.protocol == "broker":
        instance = HedgedBrokerDeal().build()
        checker = ModelChecker(
            builder=lambda: HedgedBrokerDeal().build(),
            properties=[props.no_stuck_escrow, props.broker_bounds],
            strategies={p: halt_strategies(instance.horizon) for p in instance.actors},
            max_adversaries=args.adversaries,
        )
    elif args.protocol == "auction":
        instance = HedgedAuction().build()
        checker = ModelChecker(
            builder=lambda: HedgedAuction().build(),
            properties=[props.no_stuck_escrow, props.auction_lemmas],
            strategies={p: halt_strategies(instance.horizon) for p in instance.actors},
            max_adversaries=args.adversaries,
        )
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown protocol {args.protocol}")
    report = checker.run()
    print(report.summary())
    for violation in report.violations[:20]:
        print(f"  {violation.scenario}: {violation.message}")
    if not report.ok:
        raise SystemExit(1)


def _parse_shard(text: str | None) -> tuple[int, int] | None:
    if text is None:
        return None
    try:
        i, n = text.split("/", 1)
        return int(i), int(n)
    except ValueError:
        raise SystemExit(f"--shard expects I/N (e.g. 2/3), got {text!r}")


#: the report kind a given experiment kind's --expect digest refers to.
PRIMARY_KINDS = {
    "campaign": "campaign",
    "ablate": "frontier",
    "ablate-refine": "refined-frontier",
}


def _parse_fractions(text: str | None, flag: str) -> tuple[float, ...] | None:
    if text is None:
        return None
    try:
        return tuple(float(f.strip()) for f in text.split(",") if f.strip())
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated fractions, got {text!r}")


def _parse_families(text: str | None) -> tuple[str, ...] | None:
    if text and text != "all":
        return tuple(f.strip() for f in text.split(",") if f.strip())
    return None


def _write_json(path: str, text: str, label: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"{label} written to {path}")


def _open_cache(args) -> ResultCache | None:
    path = getattr(args, "cache", None)
    if not path:
        return None
    try:
        # shared_cache, not a fresh ResultCache: every consumer of one
        # cache directory in this process — an experiment run, the quote
        # engine's tier-2/3 ladder, refinement probes — must see the same
        # warm store (and the same attached tracer).
        return shared_cache(path)
    except OSError as err:
        raise SystemExit(f"error opening cache {path}: {err}")


def _progress_printer():
    """A throttled stderr progress line: done/total, percent, ETA."""
    import sys

    state = {"width": 0}

    def show(update) -> None:
        message = (
            f"\r{update.done}/{update.total} scenarios "
            f"({update.fraction:.0%})"
        )
        if update.eta is not None:
            message += f", eta {update.eta:.1f}s"
        padding = max(0, state["width"] - (len(message) - 1))
        state["width"] = len(message) - 1
        sys.stderr.write(message + " " * padding)
        if update.total and update.done >= update.total:
            sys.stderr.write("\n")
        sys.stderr.flush()

    return show


def _obs_from_args(args):
    """The --trace/--progress wiring shared by every engine subcommand.

    Returns ``(tracer, progress)``: a :class:`repro.obs.Tracer` writing a
    JSONL sink when ``--trace FILE`` was given (the caller must close
    it), and a throttled stderr progress callback for ``--progress``.
    Telemetry is digest-inert — a traced run reproduces the untraced
    digests byte-identically (CI's trace-smoke job asserts it).
    """
    trace_path = getattr(args, "trace", None)
    want_progress = getattr(args, "progress", False)
    tracer = None
    if trace_path:
        from repro.obs import Tracer, TraceWriter

        try:
            tracer = Tracer(TraceWriter(trace_path))
        except OSError as err:
            raise SystemExit(f"error opening trace file {trace_path}: {err}")
    progress = _progress_printer() if want_progress else None
    return tracer, progress


def _spec_from_args(kind: str, args) -> ExperimentSpec:
    """One spec constructor behind both `spec` and the legacy shims."""
    backend = "pooled" if getattr(args, "pooled", False) else args.backend
    try:
        if kind == "campaign":
            return campaign_spec(
                families=_parse_families(args.families),
                seed=args.seed,
                max_adversaries=args.adversaries,
                backend=backend,
                workers=args.workers,
                limit=args.limit,
                shard=_parse_shard(args.shard),
            )
        grid = dict(
            families=_parse_families(args.families),
            premium_fractions=_parse_fractions(args.premiums, "--premiums"),
            shock_fractions=_parse_fractions(args.shocks, "--shocks"),
            stages=tuple(s.strip() for s in args.stages.split(",") if s.strip())
            if args.stages
            else None,
            coalitions=args.coalitions,
            seed=args.seed,
            backend=backend,
            workers=args.workers,
            engine=getattr(args, "engine", "kernel"),
        )
        if kind == "ablate":
            return ablate_spec(shard=_parse_shard(args.shard), **grid)
        return refine_spec(tol=args.tol, **grid)
    except (ValueError, ExperimentError) as err:
        raise SystemExit(f"error: {err}")


def _print_matrix_breakdown(matrix, label: str) -> None:
    sizes = matrix.block_sizes()
    print(
        f"{label}: {len(matrix)} scenarios over {len(sizes)} families "
        f"(seed={matrix.seed}, digest={matrix.digest()[:16]})"
    )
    for family, size in sizes.items():
        print(f"  {family:<14} {size:>6}")


def _print_violations(report: CampaignReport, traces: int = 1) -> None:
    for index, violation in enumerate(report.violations[:20]):
        print(f"  {violation.scenario}: {violation.message}")
        if violation.trace and index < traces:
            print("    " + violation.trace.replace("\n", "\n    "))


def _cache_note(report: CampaignReport) -> str:
    """The hit-rate note printed beside a digest (never hashed into it)."""
    if not report.cache_hits:
        return ""
    return (
        f" (cache hit-rate {report.cache_hit_rate:.0%}, "
        f"{report.cache_hits}/{report.scenarios})"
    )


def _print_campaign_report(report: CampaignReport) -> None:
    print(report.summary())
    for axis in ("family", "strategy"):
        rows = report.axis_table(axis)
        if not rows:
            continue
        print(f"by {axis}:")
        for value, scenarios, violations in rows:
            print(f"  {value:<24} {scenarios:>6} scenarios  {violations:>4} violations")
    payoffs = report.payoff_summary()
    print(
        f"premium flows: n={payoffs['n']} nonzero={payoffs['nonzero']} "
        f"min={payoffs['min']} max={payoffs['max']} mean={payoffs['mean']:.3f}"
    )
    print(f"selection: {report.selection} "
          f"({report.scenarios}/{report.total_scenarios} scenarios)")
    print(f"run digest: {report.run_digest}{_cache_note(report)}")
    _print_violations(report)


def _print_frontier(frontier: FrontierReport) -> None:
    print()
    print(frontier.summary())
    print(frontier.table())
    print(f"frontier digest: {frontier.digest}")


def _print_refined(refined) -> None:
    print()
    print(refined.summary())
    print(refined.table())
    print(f"refined digest: {refined.digest}")


def _run_experiment(spec: ExperimentSpec, args, list_only: bool = False):
    """Execute a spec and print its reports (the shared engine behind
    ``run`` and the legacy shims).  Returns the :class:`ExperimentResult`,
    or None for ``--list``."""
    cache = _open_cache(args)
    try:
        matrix = spec.matrix.build()
    except (KeyError, ValueError) as err:
        raise SystemExit(f"error: {err}")
    label = "matrix" if spec.kind == "campaign" else "ablation grid"
    _print_matrix_breakdown(matrix, label)
    if list_only:
        return None
    tracer, progress = _obs_from_args(args)
    try:
        result = Experiment(
            spec, cache=cache, matrix=matrix, tracer=tracer, progress=progress
        ).run()
    except ExperimentError as err:
        raise SystemExit(f"error: {err}")
    except (ValueError, RuntimeError) as err:
        # RuntimeError: a bisection probe violated a protocol property
        raise SystemExit(f"error: {err}")
    finally:
        if tracer is not None:
            tracer.close()
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace} "
              f"(summarize with: python -m repro.obs summarize {args.trace})")
    report = result.campaign
    print()
    if spec.kind == "campaign":
        _print_campaign_report(report)
    else:
        print(report.summary())
        print(f"run digest: {report.run_digest}{_cache_note(report)}")
        _print_violations(report)
    if getattr(args, "out", None):
        _write_json(args.out, report.to_json(), "report")
    if result.frontier is not None:
        _print_frontier(result.frontier)
        if getattr(args, "frontier_out", None):
            _write_json(args.frontier_out, result.frontier.to_json(), "frontier")
    if result.refined is not None:
        _print_refined(result.refined)
        if getattr(args, "refined_out", None):
            _write_json(
                args.refined_out, result.refined.to_json(), "refined frontier"
            )
    return result


def _check_expect(args, kind: str, result) -> None:
    """Honor a shim/run --expect flag against the primary report digest."""
    if not getattr(args, "expect", None):
        return
    primary_kind = PRIMARY_KINDS[kind]
    produced = {type(r).kind: r.digest for r in result.reports}
    actual = produced.get(primary_kind)
    if actual is None:
        raise SystemExit(
            f"error: selection {result.campaign.selection} cannot honor "
            f"--expect — {primary_kind} reduction needs full coverage; "
            "merge all shards with the merge subcommand"
        )
    if actual != args.expect:
        raise SystemExit(
            f"digest mismatch: {primary_kind} {actual} != expected {args.expect}"
        )


# ----------------------------------------------------------------------
# spec workflow subcommands
# ----------------------------------------------------------------------
def cmd_spec(args) -> None:
    spec = _spec_from_args(args.spec_kind, args)
    if args.expect:
        from dataclasses import replace

        spec = replace(
            spec, expect=((PRIMARY_KINDS[args.spec_kind], args.expect),)
        )
    text = spec.to_json()
    if args.out:
        _write_json(args.out, text, "spec")
        print(f"spec digest: {spec.digest()}")
    else:
        print(text)


def cmd_run(args) -> None:
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ExperimentSpec.from_json(handle.read())
    except (OSError, ExperimentError) as err:
        raise SystemExit(f"error reading {args.spec}: {err}")
    print(f"spec: kind={spec.kind} digest={spec.digest()[:16]} "
          f"backend={spec.backend}")
    result = _run_experiment(spec, args, list_only=args.list)
    if result is None:
        return
    _check_expect(args, spec.kind, result)
    if not result.ok:
        raise SystemExit(1)
    if spec.kind == "ablate" and result.frontier is None and not args.expect:
        print(
            f"selection {result.campaign.selection}: frontier reduction "
            "needs full coverage — merge all shards with the merge "
            "subcommand"
        )


def cmd_merge(args) -> None:
    reports = []
    for path in args.reports:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                reports.append(report_from_json(handle.read()))
        except (OSError, ValueError, KeyError, TypeError) as err:
            raise SystemExit(f"error reading {path}: {err}")
    try:
        merged = merge_reports_any(reports)
    except ValueError as err:
        raise SystemExit(f"error: {err}")
    ablation_shaped = _is_ablation_report(merged)
    frontier = None
    if ablation_shaped and merged.complete:
        try:
            frontier = reduce_frontier(merged)
        except ValueError as err:
            raise SystemExit(f"error: {err}")
    _print_campaign_report(merged)
    if args.out:
        _write_json(args.out, merged.to_json(), "merged report")
    if frontier is not None:
        _print_frontier(frontier)
        if getattr(args, "frontier_out", None):
            _write_json(args.frontier_out, frontier.to_json(), "frontier")
    elif ablation_shaped:
        # A partial merge still writes/prints the recombined report above;
        # only the frontier reduction needs every shard.
        if getattr(args, "frontier_out", None):
            raise SystemExit(
                f"error: selection {merged.selection} cannot honor "
                "--frontier-out — frontier reduction needs full coverage; "
                "merge the remaining shards first"
            )
        print(
            f"selection {merged.selection}: frontier reduction needs full "
            "coverage — merge the remaining shards first"
        )
    primary = frontier if frontier is not None else merged
    if args.expect and primary.digest != args.expect:
        raise SystemExit(
            f"digest mismatch: merged {primary.digest} != expected {args.expect}"
        )
    if not merged.ok:
        raise SystemExit(1)


def _is_ablation_report(report: CampaignReport) -> bool:
    """True iff the report came from an ablation-shaped matrix (every
    result carries the grid axes the frontier reducer needs)."""
    if not report.results:
        return False
    axes = dict(report.results[0].axes)
    return all(axis in axes for axis in ("pi", "shock", "stage"))


# ----------------------------------------------------------------------
# legacy shims (flag-driven spec construction, same facade)
# ----------------------------------------------------------------------
def cmd_campaign(args) -> None:
    spec = _spec_from_args("campaign", args)
    result = _run_experiment(spec, args, list_only=args.list)
    if result is None:
        return
    if not result.ok:
        raise SystemExit(1)


def cmd_ablate(args) -> None:
    spec = _spec_from_args("ablate", args)
    result = _run_experiment(spec, args, list_only=args.list)
    if result is None:
        return
    if result.frontier is None:
        if args.expect or args.frontier_out:
            raise SystemExit(
                f"error: selection {result.campaign.selection} cannot honor "
                "--expect/--frontier-out — frontier reduction needs full "
                "coverage; merge all shards with ablate-merge"
            )
        print(
            f"selection {result.campaign.selection}: frontier reduction "
            "needs full coverage — merge all shards with ablate-merge"
        )
    else:
        _check_expect(args, "ablate", result)
    if not result.ok:
        raise SystemExit(1)


def cmd_ablate_refine(args) -> None:
    if args.from_report:
        _refine_from_file(args)
        return
    spec = _spec_from_args("ablate-refine", args)
    result = _run_experiment(spec, args, list_only=getattr(args, "list", False))
    if result is None:
        return
    if not result.ok:
        raise SystemExit(1)
    _check_expect(args, "ablate-refine", result)


def _refine_from_file(args) -> None:
    """The ``ablate-refine --from FRONTIER.json`` path: refine a loaded
    lattice instead of running the grid (no spec involved — the loaded
    frontier fixes the grid)."""
    overridden = [
        flag
        for flag, given in (
            ("--families", args.families != "all"),
            ("--premiums", args.premiums is not None),
            ("--shocks", args.shocks is not None),
            ("--stages", args.stages is not None),
            ("--coalitions", args.coalitions),
            ("--seed", args.seed != 0),
        )
        if given
    ]
    if overridden:
        raise SystemExit(
            f"error: {', '.join(overridden)} cannot be combined with "
            "--from — the loaded frontier already fixes the grid"
        )
    try:
        with open(args.from_report, "r", encoding="utf-8") as handle:
            frontier = FrontierReport.from_json(handle.read())
    except (OSError, ValueError, KeyError, TypeError) as err:
        raise SystemExit(f"error reading {args.from_report}: {err}")
    print(f"lattice frontier loaded from {args.from_report}")
    print(frontier.summary())
    pool = WorkerPool(workers=args.workers) if args.pooled else None
    tracer, _ = _obs_from_args(args)
    try:
        refined = refine_frontier(
            frontier,
            tol=args.tol,
            backend="process" if args.pooled else "serial",
            pool=pool,
            cache=_open_cache(args),
            tracer=tracer,
        )
    except (ValueError, RuntimeError) as err:
        # RuntimeError: a bisection probe violated a protocol property
        raise SystemExit(f"error: {err}")
    finally:
        if pool is not None:
            pool.close()
        if tracer is not None:
            tracer.close()
    _print_refined(refined)
    if args.refined_out:
        _write_json(args.refined_out, refined.to_json(), "refined frontier")
    if args.expect and refined.digest != args.expect:
        raise SystemExit(
            f"digest mismatch: refined {refined.digest} != expected {args.expect}"
        )


def _tiers_from_args(args) -> tuple[int, ...]:
    text = getattr(args, "tiers", None)
    if not text:
        from repro.quote import ALL_TIERS

        return ALL_TIERS
    try:
        return tuple(int(t) for t in text.split(",") if t.strip())
    except ValueError:
        raise SystemExit(
            f"error: --tiers takes a comma list from 1,2,3 — got {text!r}"
        )


def _print_quote(quote, label: str = "quote") -> None:
    from repro.campaign.canon import fmt_fraction

    pivot = quote.coalition or "pivot"
    print(
        f"{label}: family={quote.family} pivot={pivot} "
        f"stage={quote.stage} shock={fmt_fraction(quote.shock)} "
        f"tol={fmt_fraction(quote.tol)}"
    )
    if quote.hedgeable:
        print(
            f"pi*: {fmt_fraction(quote.pi_star)}  "
            f"premium: {quote.premium} (base {quote.base})"
        )
        total = sum(entry.amount for entry in quote.schedule)
        print(f"schedule: {len(quote.schedule)} deposits, total {total}")
        for entry in quote.schedule:
            path = "->".join(entry.path) if entry.path else "-"
            print(
                f"  {entry.kind:<10} {entry.depositor:<6} "
                f"{entry.arc[0]}->{entry.arc[1]}  round {entry.round}  "
                f"amount {entry.amount:>5}  path {path}"
            )
    else:
        print("pi*: un-hedgeable (no premium up to the ceiling deters this walk)")
    print(f"tier: {quote.tier}")
    print(f"latency: {quote.latency_ms:.3f} ms")
    print(f"provenance: {quote.provenance}")
    print(f"quote digest: {quote.digest()}")


def _quote_request_from_args(args):
    from repro.quote import QuoteRequest

    return QuoteRequest(
        family=args.family or "",
        graph=args.graph or "",
        coalition=args.coalition or "",
        shock=args.shock,
        stage=args.stage,
        tol=args.tol,
        seed=args.seed,
    )


def cmd_quote(args) -> None:
    from repro.quote import QuoteEngine

    tracer, _ = _obs_from_args(args)
    try:
        request = _quote_request_from_args(args)
        engine = QuoteEngine(cache=_open_cache(args), tracer=tracer)
        quote = engine.quote(request, tiers=_tiers_from_args(args))
    finally:
        if tracer is not None:
            tracer.close()
    print(f"request digest: {request.digest()}")
    _print_quote(quote)
    if args.out:
        _write_json(args.out, quote.to_json(), "quote")
    if args.expect and quote.digest() != args.expect:
        raise SystemExit(
            f"digest mismatch: quote {quote.digest()} != expected {args.expect}"
        )


def cmd_quote_batch(args) -> None:
    import json

    from repro.quote import QuoteEngine, QuoteRequest, batch_digest, quote_batch

    try:
        with open(args.requests, "r", encoding="utf-8") as handle:
            items = json.load(handle)
    except (OSError, ValueError) as err:
        raise SystemExit(f"error reading {args.requests}: {err}")
    if not isinstance(items, list):
        raise SystemExit(
            f"error: {args.requests} must hold a JSON array of quote requests"
        )
    requests = [
        QuoteRequest.from_json(json.dumps(item)) for item in items
    ]
    tracer, progress = _obs_from_args(args)
    try:
        engine = QuoteEngine(cache=_open_cache(args), tracer=tracer)
        quotes = quote_batch(
            engine, requests, tiers=_tiers_from_args(args), progress=progress
        )
    finally:
        if tracer is not None:
            tracer.close()
    from repro.campaign.canon import fmt_fraction

    tiers_served = {tier: 0 for tier in (1, 2, 3)}
    for index, quote in enumerate(quotes):
        tiers_served[quote.tier] += 1
        answer = (
            fmt_fraction(quote.pi_star) if quote.hedgeable else "un-hedgeable"
        )
        pivot = quote.coalition or "pivot"
        print(
            f"[{index}] {quote.family:<12} {pivot:<14} {quote.stage:<10} "
            f"shock={fmt_fraction(quote.shock)}  pi*={answer:<14} "
            f"premium={quote.premium if quote.premium is not None else '-':>4}  "
            f"tier: {quote.tier}"
        )
    print(
        f"{len(quotes)} quotes: "
        + ", ".join(f"tier {t}: {n}" for t, n in sorted(tiers_served.items()))
    )
    digest = batch_digest(quotes)
    print(f"batch digest: {digest}")
    if args.out:
        payload = json.dumps(
            {
                "quotes": [json.loads(quote.to_json()) for quote in quotes],
                "digest": digest,
            },
            indent=2,
        )
        _write_json(args.out, payload, "quote batch")
    if args.expect and digest != args.expect:
        raise SystemExit(
            f"digest mismatch: batch {digest} != expected {args.expect}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hedged cross-chain transaction protocols (Xue-Herlihy PODC'21)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, hedged_default=True):
        p.add_argument("--deviate", action="append", metavar="NAME@ROUND",
                       help="halt a party from a round on (repeatable)")
        p.add_argument("--timeline", action="store_true", help="flat timeline output")
        p.add_argument("--width", type=int, default=36, help="lane width")
        if hedged_default is not None:
            group = p.add_mutually_exclusive_group()
            group.add_argument("--hedged", dest="hedged", action="store_true", default=True)
            group.add_argument("--base", dest="hedged", action="store_false",
                               help="run the unhedged base protocol")

    p = sub.add_parser("two-party", help="two-party atomic swap (§5)")
    common(p)
    p.set_defaults(func=cmd_two_party)

    p = sub.add_parser("multi-party", help="multi-party swap (§7)")
    common(p)
    p.add_argument("--graph", default="figure3", help="figure3 | ring:N | complete:N")
    p.add_argument("--premium", type=int, default=1)
    p.set_defaults(func=cmd_multi_party)

    p = sub.add_parser("broker", help="brokered deal (§8)")
    common(p)
    p.add_argument("--premium", type=int, default=1)
    p.set_defaults(func=cmd_broker)

    p = sub.add_parser("deal", help="multi-round resale chain (§8.2 extension)")
    common(p, hedged_default=None)
    p.add_argument("--brokers", type=int, default=2, help="chain length r")
    p.add_argument("--premium", type=int, default=1)
    p.set_defaults(func=cmd_deal)

    p = sub.add_parser("auction", help="ticket auction (§9)")
    common(p, hedged_default=None)
    p.add_argument("--strategy", default="honest",
                   choices=[s.value for s in AuctioneerStrategy])
    p.add_argument("--sealed", action="store_true", help="commit-reveal bids")
    p.set_defaults(func=cmd_auction)

    p = sub.add_parser("bootstrap", help="bootstrapped swap (§6)")
    common(p, hedged_default=None)
    p.add_argument("--value", type=int, default=1_000_000)
    p.add_argument("--rate", type=int, default=100)
    p.add_argument("--rounds", type=int, default=3)
    p.set_defaults(func=cmd_bootstrap)

    p = sub.add_parser("check", help="run the model checker")
    p.add_argument("protocol", choices=["two-party", "multi-party", "broker", "auction"])
    p.add_argument("--graph", default="figure3")
    p.add_argument("--adversaries", type=int, default=1)
    p.set_defaults(func=cmd_check)

    def obs_flags(p):
        """--trace/--progress: the digest-inert telemetry layer, shared
        by every engine subcommand (spec, run, and shim alike)."""
        p.add_argument("--trace", default=None, metavar="FILE.jsonl",
                       help="write a JSONL span/counter trace of the run "
                            "(inspect with python -m repro.obs summarize); "
                            "digests are byte-identical with or without it")
        p.add_argument("--progress", action="store_true",
                       help="stream scenarios done/total + ETA to stderr")

    def exec_flags(p):
        """--backend/--pooled/--workers/--cache: execution layout, shared
        by every engine subcommand (spec and shim alike)."""
        p.add_argument("--backend", choices=["serial", "process"],
                       default="serial")
        p.add_argument("--pooled", action="store_true",
                       help="run through a persistent WorkerPool "
                            "(implies process)")
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool size")
        p.add_argument("--cache", default=None, metavar="DIR",
                       help="incremental result cache: serve already-"
                            "verified scenario blocks from this store")
        obs_flags(p)

    def campaign_flags(p):
        """The campaign matrix/selection flags (spec and shim alike)."""
        p.add_argument(
            "--families",
            default="all",
            help="comma-separated subset of " + ",".join(FAMILY_NAMES),
        )
        p.add_argument("--limit", type=int, default=None,
                       help="run exactly min(N, total) scenarios, stratified "
                            "by block (every family covered when N >= block "
                            "count)")
        p.add_argument("--shard", default=None, metavar="I/N",
                       help="run the I-th of N contiguous slices of the "
                            "selection")
        p.add_argument("--seed", type=int, default=0,
                       help="matrix identity seed")
        p.add_argument("--adversaries", type=int, default=None,
                       help="override max simultaneous adversaries per family")
        exec_flags(p)

    def ablation_grid_flags(p, shard=True):
        """The shared ablation grid wiring: --premiums/--shocks/--stages/
        --coalitions plus the execution flags — one builder behind
        ``ablate``, ``ablate-refine``, and their ``spec`` counterparts."""
        p.add_argument(
            "--families",
            default="all",
            help="comma-separated subset of " + ",".join(ABLATION_FAMILIES),
        )
        p.add_argument("--premiums", default=None, metavar="F1,F2,...",
                       help="premium fractions pi to sweep (default grid)")
        p.add_argument("--shocks", default=None, metavar="F1,F2,...",
                       help="relative price drops s to sweep (default grid)")
        p.add_argument("--stages", default=None, metavar="S1,S2",
                       help="shock stages: named (pre-stake,staked), round:K, "
                            "or 'all' for the dense per-round sweep")
        p.add_argument("--coalitions", action="store_true",
                       help="add the named two-party coalition pivots "
                            "(joint-utility arms)")
        p.add_argument("--engine", choices=["kernel", "simulator"],
                       default="kernel",
                       help="scenario engine: the vectorized payoff kernels "
                            "(default; byte-identical digests) or the full "
                            "simulator audit path")
        p.add_argument("--seed", type=int, default=0,
                       help="matrix identity seed")
        if shard:
            p.add_argument("--shard", default=None, metavar="I/N",
                           help="run the I-th of N contiguous slices of the "
                                "grid")
        exec_flags(p)

    def refine_flags(p):
        p.add_argument("--tol", type=float, default=DEFAULT_TOL,
                       help="bisection tolerance on the premium fraction "
                            f"(default {DEFAULT_TOL} = 1/64)")

    def expect_flag(p, what: str):
        p.add_argument("--expect", default=None, metavar="DIGEST",
                       help=f"exit non-zero unless the {what} digest matches")

    def merge_flags(p):
        p.add_argument("reports", nargs="+", metavar="REPORT.json",
                       help="shard reports written with --out")
        p.add_argument("--out", default=None, metavar="PATH",
                       help="write the merged campaign report as JSON")
        p.add_argument("--frontier-out", default=None, metavar="PATH",
                       help="write the reduced frontier as JSON "
                            "(ablation-shaped merges only)")
        expect_flag(p, "merged primary (run or frontier)")
        p.set_defaults(func=cmd_merge)

    # ------------------------------------------------------------------
    # spec workflow: spec / run / merge
    # ------------------------------------------------------------------
    p = sub.add_parser(
        "spec",
        help="emit a declarative ExperimentSpec JSON from engine flags",
    )
    spec_sub = p.add_subparsers(dest="spec_kind", required=True)
    sp = spec_sub.add_parser("campaign", help="spec for the adversarial campaign")
    campaign_flags(sp)
    sp = spec_sub.add_parser("ablate", help="spec for the ablation lattice")
    ablation_grid_flags(sp)
    sp = spec_sub.add_parser(
        "ablate-refine", help="spec for the bisected frontier"
    )
    ablation_grid_flags(sp, shard=False)
    refine_flags(sp)
    for kind, sp in spec_sub.choices.items():
        sp.add_argument("--out", default=None, metavar="SPEC.json",
                        help="write the spec here (default: stdout)")
        expect_flag(sp, "primary report")
        sp.set_defaults(func=cmd_spec, spec_kind=kind)

    p = sub.add_parser(
        "run",
        help="run an ExperimentSpec (any engine, one entry point)",
    )
    p.add_argument("spec", metavar="SPEC.json",
                   help="an experiment spec written by the spec subcommand")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="incremental result cache directory")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the campaign report as JSON (for merge)")
    p.add_argument("--frontier-out", default=None, metavar="PATH",
                   help="write the reduced frontier as JSON")
    p.add_argument("--refined-out", default=None, metavar="PATH",
                   help="write the refined frontier as JSON")
    p.add_argument("--list", action="store_true",
                   help="print the matrix breakdown and exit")
    obs_flags(p)
    expect_flag(p, "primary report")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "merge",
        help="kind-aware merge of shard reports (campaign or ablation)",
    )
    merge_flags(p)

    # ------------------------------------------------------------------
    # legacy shims: flag-driven specs through the same facade
    # ------------------------------------------------------------------
    p = sub.add_parser("campaign", help="batched adversarial scenario matrix")
    campaign_flags(p)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the report as JSON (for merge)")
    p.add_argument("--list", action="store_true",
                   help="print the matrix breakdown and exit")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "ablate",
        help="map the rational-adversary deviation-profitability frontier",
    )
    ablation_grid_flags(p)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the campaign report as JSON (for merge)")
    p.add_argument("--frontier-out", default=None, metavar="PATH",
                   help="write the reduced frontier as JSON")
    expect_flag(p, "frontier")
    p.add_argument("--list", action="store_true",
                   help="print the grid breakdown and exit")
    p.set_defaults(func=cmd_ablate)

    p = sub.add_parser(
        "ablate-refine",
        help="bisect the frontier between lattice points to a continuous pi*",
    )
    ablation_grid_flags(p, shard=False)
    refine_flags(p)
    p.add_argument("--from", dest="from_report", default=None,
                   metavar="FRONTIER.json",
                   help="refine an existing frontier (written by ablate "
                        "--frontier-out or merge) instead of running the "
                        "lattice grid")
    p.add_argument("--refined-out", default=None, metavar="PATH",
                   help="write the refined frontier as JSON")
    expect_flag(p, "refined")
    p.set_defaults(func=cmd_ablate_refine)

    # ------------------------------------------------------------------
    # the premium-quoting service
    # ------------------------------------------------------------------
    from repro.quote import DEFAULT_SHOCK

    def quote_common_flags(p):
        """The assumption/ladder flags shared by quote and quote-batch."""
        p.add_argument("--tiers", default=None, metavar="T1,T2,...",
                       help="restrict the answer ladder (default 1,2,3): "
                            "1 closed forms, 2 cached refined rows, "
                            "3 narrow measurement fallback")
        p.add_argument("--cache", default=None, metavar="DIR",
                       help="shared result cache: tier 2 reads refined "
                            "rows from it, tier 3 stores them back")
        p.add_argument("--out", default=None, metavar="PATH",
                       help="write the quote (JSON, digest-stamped)")
        obs_flags(p)

    p = sub.add_parser(
        "quote",
        help="price one cross-chain deal: deterring pi*, integer premium, "
             "per-arc deposit schedule",
    )
    shape = p.add_mutually_exclusive_group(required=True)
    shape.add_argument("--family", default=None,
                       help="a named family: " + ",".join(ABLATION_FAMILIES))
    shape.add_argument("--graph", default=None, metavar="SHAPE",
                       help="a graph-shaped deal: ring:N, complete:N, "
                            "figure3")
    p.add_argument("--coalition", default=None,
                   help="price a named joint pivot (e.g. multi-party "
                        "P1+P2, broker seller+buyer)")
    p.add_argument("--shock", type=float, default=DEFAULT_SHOCK,
                   help="relative price drop to deter "
                        f"(default {DEFAULT_SHOCK})")
    p.add_argument("--stage", default="staked",
                   help="shock stage: pre-stake, staked, or round:K "
                        "(default staked)")
    p.add_argument("--tol", type=float, default=DEFAULT_TOL,
                   help="premium-fraction tolerance on pi* "
                        f"(default {DEFAULT_TOL} = 1/64)")
    p.add_argument("--seed", type=int, default=0,
                   help="matrix identity seed for measurement fallbacks")
    quote_common_flags(p)
    expect_flag(p, "quote")
    p.set_defaults(func=cmd_quote)

    p = sub.add_parser(
        "quote-batch",
        help="price a basket of deals from a JSON request list "
             "(grouped by cell, results in input order)",
    )
    p.add_argument("requests", metavar="REQUESTS.json",
                   help="a JSON array of quote-request objects "
                        "(same fields as the quote flags)")
    quote_common_flags(p)
    expect_flag(p, "batch")
    p.set_defaults(func=cmd_quote_batch)

    p = sub.add_parser(
        "ablate-merge",
        help="merge sharded ablation reports and reduce the frontier "
             "(alias of merge)",
    )
    merge_flags(p)

    p = sub.add_parser(
        "campaign-merge",
        help="merge sharded campaign reports into one run digest "
             "(alias of merge)",
    )
    merge_flags(p)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    try:
        args.func(args)
    except ReproError as err:
        raise SystemExit(f"error: {err}")


if __name__ == "__main__":
    main()
