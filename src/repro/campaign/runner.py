"""Campaign execution: pluggable backends + aggregation.

``CampaignRunner`` expands a :class:`repro.campaign.matrix.ScenarioMatrix`
and executes every scenario through one of two backends:

- ``serial`` — a plain loop in this process,
- ``process`` — a ``multiprocessing`` pool using the ``fork`` start method.
  Scenarios are dispatched *by index*: workers inherit the expanded
  scenario list through fork, so builders and strategy transforms never
  need to be picklable; only the primitive :class:`ScenarioResult` objects
  cross the process boundary.  On platforms without ``fork`` the runner
  falls back to serial (recorded in the report).

Scenarios are independent full simulations, so results are identical
across backends; the :class:`CampaignReport` proves it with a ``run_digest``
— a hash over the matrix's structural digest and every per-scenario
outcome digest in index order (so it distinguishes campaigns even when
builder-closure parameters make their structural digests collide) — plus
per-axis violation counts, premium-payoff distribution statistics, and
throughput.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from hashlib import sha256

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.scenario import Scenario, ScenarioResult, run_scenario

# Worker-side scenario table, inherited through fork (never pickled).
_WORKER_SCENARIOS: list[Scenario] = []


def _pool_init(scenarios: list[Scenario]) -> None:
    global _WORKER_SCENARIOS
    _WORKER_SCENARIOS = scenarios


def _run_at(index: int) -> ScenarioResult:
    return run_scenario(_WORKER_SCENARIOS[index])


@dataclass(frozen=True)
class ScenarioViolation:
    """One property violation in one scenario."""

    scenario: str
    message: str


@dataclass
class AxisStats:
    """Per-axis-value aggregate."""

    scenarios: int = 0
    violations: int = 0


@dataclass
class CampaignReport:
    """Everything a campaign observed, plus its reproducibility digest."""

    backend: str
    workers: int
    matrix_digest: str
    scenarios: int = 0
    transactions: int = 0
    reverted: int = 0
    violations: list[ScenarioViolation] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    results: list[ScenarioResult] = field(default_factory=list)
    by_axis: dict[str, dict[str, AxisStats]] = field(default_factory=dict)
    premium_net_hist: Counter = field(default_factory=Counter)
    run_digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def scenarios_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.scenarios / self.elapsed_seconds

    def payoff_summary(self) -> dict[str, float]:
        """Distribution of per-(scenario, party) net premium flows."""
        total = sum(self.premium_net_hist.values())
        if not total:
            return {"n": 0, "min": 0, "max": 0, "mean": 0.0, "nonzero": 0}
        weighted = sum(v * c for v, c in self.premium_net_hist.items())
        return {
            "n": total,
            "min": min(self.premium_net_hist),
            "max": max(self.premium_net_hist),
            "mean": weighted / total,
            "nonzero": sum(
                c for v, c in self.premium_net_hist.items() if v != 0
            ),
        }

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.scenarios} scenarios, {self.transactions} transactions, "
            f"{self.elapsed_seconds:.2f}s ({self.scenarios_per_second:.0f}/s, "
            f"backend={self.backend}): {status}"
        )

    def axis_table(self, axis: str) -> list[tuple[str, int, int]]:
        """(value, scenarios, violations) rows for one axis, sorted."""
        stats = self.by_axis.get(axis, {})
        return [
            (value, s.scenarios, s.violations)
            for value, s in sorted(stats.items())
        ]


class CampaignRunner:
    """Execute a scenario matrix through a pluggable backend."""

    def __init__(
        self,
        matrix: ScenarioMatrix,
        backend: str = "serial",
        workers: int | None = None,
        limit: int | None = None,
    ) -> None:
        if backend not in ("serial", "process"):
            raise ValueError(f"unknown backend {backend!r}: use serial or process")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.matrix = matrix
        self.backend = backend
        self.workers = workers if workers is not None else max(2, os.cpu_count() or 1)
        self.limit = limit

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def _run_serial(self, scenarios: list[Scenario]) -> list[ScenarioResult]:
        return [run_scenario(s) for s in scenarios]

    def _run_process(self, scenarios: list[Scenario]) -> list[ScenarioResult]:
        ctx = multiprocessing.get_context("fork")
        chunksize = max(1, len(scenarios) // (self.workers * 8))
        with ctx.Pool(
            processes=self.workers, initializer=_pool_init, initargs=(scenarios,)
        ) as pool:
            return pool.map(_run_at, range(len(scenarios)), chunksize=chunksize)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        scenarios = list(self.matrix.scenarios(limit=self.limit))
        backend = self.backend
        if backend == "process" and "fork" not in multiprocessing.get_all_start_methods():
            backend = "serial"  # pragma: no cover - platform dependent

        start = time.perf_counter()
        if backend == "process":
            results = self._run_process(scenarios)
        else:
            results = self._run_serial(scenarios)
        elapsed = time.perf_counter() - start

        report = CampaignReport(
            backend=backend,
            workers=self.workers if backend == "process" else 1,
            matrix_digest=self.matrix.digest(),
            elapsed_seconds=elapsed,
            results=results,
        )
        digest = sha256(report.matrix_digest.encode())
        for result in results:
            report.scenarios += 1
            report.transactions += result.transactions
            report.reverted += result.reverted
            digest.update(result.digest.encode())
            for message in result.violations:
                report.violations.append(ScenarioViolation(result.label, message))
            for axis, value in result.axes:
                stats = report.by_axis.setdefault(axis, {}).setdefault(
                    value, AxisStats()
                )
                stats.scenarios += 1
                stats.violations += len(result.violations)
            for _, net in result.premium_net:
                report.premium_net_hist[net] += 1
        report.run_digest = digest.hexdigest()
        return report
