"""Campaign execution: pluggable backends, sharding, and aggregation.

``CampaignRunner`` expands a :class:`repro.campaign.matrix.ScenarioMatrix`
and executes the selected scenarios through one of three backends:

- ``serial`` — a plain loop in this process,
- ``kernel`` — the vectorized payoff kernels
  (:class:`repro.campaign.ablation.kernels.KernelEngine`), available only
  for matrices built by the ablation factories; produces byte-identical
  results and digests to the simulator backends at a fraction of the cost,
- ``process`` — a ``multiprocessing`` pool using the ``fork`` start method.
  Scenarios are dispatched *by index*: workers inherit the expanded
  scenario list through fork, so builders and strategy transforms never
  need to be picklable; only the primitive :class:`ScenarioResult` objects
  cross the process boundary.  On platforms without ``fork`` the runner
  falls back to serial, and so do empty/tiny selections (below
  :data:`MIN_PROCESS_SCENARIOS`, where fork overhead dominates); the
  report's ``backend`` always records what actually ran.

Passing a persistent :class:`repro.campaign.pool.WorkerPool` reuses one
set of forked workers across runs (``backend="process"`` plus a matrix
carrying a rebuild ``spec``); the report records ``process:pooled``.  An
explicit pool always dispatches — even tiny runs — because its fork cost
amortizes across every run that follows; the tiny-selection serial
fallback applies only to one-shot pools.

Scenarios are independent full simulations, so results are identical
across backends and process layouts; the :class:`CampaignReport` proves it
with a ``run_digest`` — a hash over a preamble naming the matrix's
structural digest **and the effective selection** (limit/shard, scenario
count out of the full matrix), then every per-scenario outcome digest in
index order.  A ``--limit`` or ``--shard`` run therefore can never
masquerade as full coverage: its preamble differs.  Conversely,
:func:`merge_reports` recombines shard reports — validating that they
share a matrix, a limit, and non-overlapping indices — into a report whose
``run_digest`` is byte-identical to the unsharded run's, which is what
makes cross-host sharding provable.  :meth:`CampaignReport.to_json` /
:meth:`CampaignReport.from_json` move shard reports between hosts.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from hashlib import sha256
from typing import Iterable

from repro.campaign.cache import ResultCache
from repro.campaign.matrix import ScenarioMatrix, validate_shard
from repro.campaign.pool import (
    WorkerPool,
    default_workers,
    dispatch_chunksize,
    fork_available,
)
from repro.campaign.report import check_kind, register_report
from repro.campaign.scenario import (
    Scenario,
    ScenarioResult,
    result_from_payload,
    result_payload,
    run_scenario,
)
from repro.obs import (
    MetricsSnapshot,
    ProgressMeter,
    Tracer,
    maybe_span,
    worker_sample,
)

# Below this many scenarios a requested process backend runs serially:
# forking a pool costs more than the work itself.
MIN_PROCESS_SCENARIOS = 24

# Worker-side scenario table, inherited through fork (never pickled).
_WORKER_SCENARIOS: list[Scenario] = []


def _pool_init(scenarios: list[Scenario]) -> None:
    global _WORKER_SCENARIOS
    _WORKER_SCENARIOS = scenarios


def _run_at(index: int) -> ScenarioResult:
    return run_scenario(_WORKER_SCENARIOS[index])


def _run_at_metered(index: int) -> tuple[ScenarioResult, MetricsSnapshot]:
    """Traced variant of :func:`_run_at`: the result plus a per-worker
    telemetry sample (scenario count + busy time, keyed by worker pid).
    The sample rides back across the fork boundary as a picklable
    :class:`MetricsSnapshot` and is merged into the parent tracer; the
    result itself is byte-identical to the untraced path."""
    start = time.perf_counter()
    result = run_scenario(_WORKER_SCENARIOS[index])
    return result, worker_sample(1, time.perf_counter() - start)


def selection_label(limit: int | None, shard: tuple[int, int] | None) -> str:
    """Human-readable selection descriptor, folded into the run digest.

    ("full", "limit=150:stratified shard=1/3").  The ``:stratified``
    marker records the block-stratified subsampling policy
    (:meth:`repro.campaign.matrix.ScenarioMatrix.selection`): the policy
    determines *which* scenarios a limit picks, so it belongs in the
    selection-honest preamble — a report produced under a different policy
    can never silently collide with a stratified one.
    """
    parts = [] if limit is None else [f"limit={limit}:stratified"]
    if shard is not None:
        parts.append(f"shard={shard[0]}/{shard[1]}")
    return " ".join(parts) or "full"


def _digest_preamble(
    matrix_digest: str,
    total: int,
    count: int,
    limit: int | None,
    shard: tuple[int, int] | None,
) -> bytes:
    """The run-digest header: matrix identity plus the effective selection."""
    label = selection_label(limit, shard)
    return f"{matrix_digest}|selection={label}|coverage={count}/{total}".encode()


@dataclass(frozen=True)
class ScenarioViolation:
    """One property violation in one scenario.

    ``trace`` carries the violating run's lane diagram (captured by
    :func:`repro.campaign.scenario.run_scenario` at execution time), so a
    frontier/campaign anomaly is debuggable straight from the report.
    """

    scenario: str
    message: str
    trace: str = ""


@dataclass
class AxisStats:
    """Per-axis-value aggregate."""

    scenarios: int = 0
    violations: int = 0


@register_report("campaign")
@dataclass
class CampaignReport:
    """Everything a campaign observed, plus its reproducibility digest.

    A registered :class:`~repro.campaign.report.Report`: ``kind`` is
    ``"campaign"`` and ``digest`` aliases ``run_digest`` so provenance
    tooling can treat every report uniformly.
    """

    backend: str
    workers: int
    matrix_digest: str
    #: size of the *full* matrix; ``scenarios`` counts what actually ran.
    total_scenarios: int = 0
    #: the selection this run was asked for (None/None = full coverage).
    limit: int | None = None
    shard: tuple[int, int] | None = None
    scenarios: int = 0
    transactions: int = 0
    reverted: int = 0
    violations: list[ScenarioViolation] = field(default_factory=list)
    #: summed per-shard compute time.  Equal to ``wall_seconds`` for a
    #: single run; after :func:`merge_reports` it is the *aggregate*
    #: compute across shards, which can exceed wall clock arbitrarily.
    elapsed_seconds: float = 0.0
    #: wall-clock time observed by whoever produced this report: the run
    #: itself, or the merge step for merged reports.  Never digested.
    wall_seconds: float = 0.0
    results: list[ScenarioResult] = field(default_factory=list)
    by_axis: dict[str, dict[str, AxisStats]] = field(default_factory=dict)
    premium_net_hist: Counter = field(default_factory=Counter)
    run_digest: str = ""
    #: scenarios served from the incremental result cache (never digested:
    #: a warm run must reproduce the cold run's digest byte-identically).
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def digest(self) -> str:
        """Report-protocol alias for :attr:`run_digest`."""
        return self.run_digest

    @property
    def cache_hit_rate(self) -> float:
        if not self.scenarios:
            return 0.0
        return self.cache_hits / self.scenarios

    @classmethod
    def merge(cls, reports: "Iterable[CampaignReport]") -> "CampaignReport":
        """Report-protocol merge: :func:`merge_reports` on campaign shards."""
        return merge_reports(reports)

    @property
    def selection(self) -> str:
        label = selection_label(self.limit, self.shard)
        if label == "full" and not self.complete:
            # e.g. a merge of fewer shards than the matrix has: no limit or
            # shard was requested, yet coverage fell short — say so.
            return "partial"
        return label

    @property
    def complete(self) -> bool:
        """True iff this report covers the whole matrix."""
        return self.scenarios == self.total_scenarios

    @property
    def fresh_scenarios(self) -> int:
        """Scenarios actually executed (not served from the cache)."""
        return self.scenarios - self.cache_hits

    @property
    def scenarios_per_second(self) -> float:
        """Execution rate over *fresh* scenarios only.

        Cache hits cost microseconds, so folding them into the rate turns
        a fully-warm run into a meaningless divide-by-tiny-elapsed number
        (tens of thousands "per second" of work that never ran).  A
        fully-cached run therefore reports 0.0 here — ``summary()``
        annotates it with the hit count instead — and
        :attr:`served_per_second` keeps the cache-serving throughput for
        anyone who wants it.
        """
        if self.elapsed_seconds <= 0 or self.fresh_scenarios <= 0:
            return 0.0
        return self.fresh_scenarios / self.elapsed_seconds

    @property
    def served_per_second(self) -> float:
        """Delivery rate over *all* scenarios, cache hits included."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.scenarios / self.elapsed_seconds

    def payoff_summary(self) -> dict[str, float]:
        """Distribution of per-(scenario, party) net premium flows."""
        total = sum(self.premium_net_hist.values())
        if not total:
            return {"n": 0, "min": 0, "max": 0, "mean": 0.0, "nonzero": 0}
        weighted = sum(v * c for v, c in self.premium_net_hist.items())
        return {
            "n": total,
            "min": min(self.premium_net_hist),
            "max": max(self.premium_net_hist),
            "mean": weighted / total,
            "nonzero": sum(
                c for v, c in self.premium_net_hist.items() if v != 0
            ),
        }

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        coverage = (
            "" if self.complete
            else f" [{self.selection}: {self.scenarios}/{self.total_scenarios}]"
        )
        cached = (
            f", {self.cache_hits} cached ({self.cache_hit_rate:.0%})"
            if self.cache_hits
            else ""
        )
        if self.scenarios and self.fresh_scenarios == 0:
            # Fully cache-warm: an execution rate would be nonsense (the
            # run executed nothing), so annotate with the hit count.
            rate = f"all {self.cache_hits} cached"
        else:
            rate = f"{self.scenarios_per_second:.0f}/s"
        if self.wall_seconds and abs(self.wall_seconds - self.elapsed_seconds) > 1e-9:
            # Merged shards: summed compute is not wall clock — show both.
            timing = (
                f"{self.elapsed_seconds:.2f}s compute / "
                f"{self.wall_seconds:.2f}s wall"
            )
        else:
            timing = f"{self.elapsed_seconds:.2f}s"
        return (
            f"{self.scenarios} scenarios, {self.transactions} transactions, "
            f"{timing} ({rate}, "
            f"backend={self.backend}{cached}){coverage}: {status}"
        )

    def axis_table(self, axis: str) -> list[tuple[str, int, int]]:
        """(value, scenarios, violations) rows for one axis, sorted."""
        stats = self.by_axis.get(axis, {})
        return [
            (value, s.scenarios, s.violations)
            for value, s in sorted(stats.items())
        ]

    # ------------------------------------------------------------------
    # serialization (cross-host shard transport)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize everything needed to merge or audit this report."""
        return json.dumps(
            {
                "kind": self.kind,
                "backend": self.backend,
                "workers": self.workers,
                "matrix_digest": self.matrix_digest,
                "total_scenarios": self.total_scenarios,
                "limit": self.limit,
                "shard": list(self.shard) if self.shard else None,
                "scenarios": self.scenarios,
                "transactions": self.transactions,
                "reverted": self.reverted,
                "elapsed_seconds": self.elapsed_seconds,
                "wall_seconds": self.wall_seconds,
                "cache_hits": self.cache_hits,
                # Redundant with per-result violations/traces (from_json
                # rebuilds them via _fold_results), but kept complete for
                # external consumers reading the report directly.
                "violations": [
                    [v.scenario, v.message, v.trace] for v in self.violations
                ],
                "results": [result_payload(r) for r in self.results],
                "run_digest": self.run_digest,
            },
            indent=None,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        """Rebuild a report (with per-axis aggregates) from :meth:`to_json`."""
        data = json.loads(text)
        check_kind(cls, data)
        results = [result_from_payload(r) for r in data["results"]]
        shard = tuple(data["shard"]) if data.get("shard") else None
        report = cls(
            backend=data["backend"],
            workers=data["workers"],
            matrix_digest=data["matrix_digest"],
            total_scenarios=data["total_scenarios"],
            limit=data["limit"],
            shard=shard,
            elapsed_seconds=data["elapsed_seconds"],
            # Older reports predate the compute/wall split, where the
            # single field served both roles.
            wall_seconds=data.get("wall_seconds", data["elapsed_seconds"]),
            cache_hits=data.get("cache_hits", 0),
        )
        _fold_results(
            report,
            results,
            _digest_preamble(
                report.matrix_digest,
                report.total_scenarios,
                len(results),
                report.limit,
                shard,
            ),
        )
        if report.run_digest != data["run_digest"]:
            raise ValueError(
                "report digest mismatch after deserialization: "
                f"{report.run_digest[:16]} != {data['run_digest'][:16]}"
            )
        return report


def _fold_results(
    report: CampaignReport, results: Iterable[ScenarioResult], preamble: bytes
) -> CampaignReport:
    """Aggregate results (in the given order) into ``report`` + run digest."""
    digest = sha256(preamble)
    for result in results:
        report.results.append(result)
        report.scenarios += 1
        report.transactions += result.transactions
        report.reverted += result.reverted
        digest.update(result.digest.encode())
        for message in result.violations:
            report.violations.append(
                ScenarioViolation(result.label, message, result.trace)
            )
        for axis, value in result.axes:
            stats = report.by_axis.setdefault(axis, {}).setdefault(
                value, AxisStats()
            )
            stats.scenarios += 1
            stats.violations += len(result.violations)
        for _, net in result.premium_net:
            report.premium_net_hist[net] += 1
    report.run_digest = digest.hexdigest()
    return report


class CampaignRunner:
    """Execute a scenario matrix (or one shard of it) through a backend."""

    def __init__(
        self,
        matrix: ScenarioMatrix,
        backend: str = "serial",
        workers: int | None = None,
        limit: int | None = None,
        shard: tuple[int, int] | None = None,
        pool: WorkerPool | None = None,
        cache: ResultCache | None = None,
        kernel: object | None = None,
        tracer: Tracer | None = None,
        progress=None,
    ) -> None:
        if backend not in ("serial", "process", "kernel"):
            raise ValueError(
                f"unknown backend {backend!r}: use serial, process, or kernel"
            )
        if kernel is not None and backend != "kernel":
            raise ValueError("a KernelEngine requires backend='kernel'")
        if backend == "kernel":
            from repro.campaign.ablation.kernels import KERNEL_FACTORIES

            factory = matrix.spec.factory if matrix.spec is not None else None
            if factory not in KERNEL_FACTORIES:
                raise ValueError(
                    "backend='kernel' understands only ablation matrices "
                    f"(factories {KERNEL_FACTORIES}), got "
                    f"{factory or 'an unregistered matrix'}; use the "
                    "simulator backends for everything else"
                )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if shard is not None:
            shard = validate_shard(shard)
        if pool is not None:
            if backend != "process":
                raise ValueError("a WorkerPool requires backend='process'")
            if workers is not None:
                raise ValueError(
                    "workers= conflicts with pool=: the pool's own worker "
                    f"count ({pool.workers}) governs pooled runs"
                )
            if matrix.spec is None:
                raise ValueError(
                    "pool reuse needs a rebuildable matrix: use a registered "
                    "factory (e.g. default_matrix) that sets matrix.spec"
                )
        if cache is not None and matrix.spec is None:
            raise ValueError(
                "a ResultCache needs a rebuildable matrix: only registered "
                "factories (matrix.spec set) build blocks purely from "
                "primitive arguments, which is what makes block keys sound"
            )
        self.matrix = matrix
        self.backend = backend
        self.workers = workers if workers is not None else default_workers()
        self.limit = limit
        self.shard = shard
        self.pool = pool
        self.cache = cache
        self.kernel = kernel
        #: observability only — spans/counters around the run.  Digest-inert
        #: by contract: traced and untraced runs are byte-identical
        #: (tests/test_obs.py proves it across all backends).
        self.tracer = tracer
        #: optional ``ProgressUpdate -> None`` callback, throttled.
        self.progress = progress

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def _block_groups(
        self, scenarios: list[Scenario]
    ) -> list[tuple[str, list[Scenario]]]:
        """Partition an index-ordered scenario list by owning block.

        Telemetry-only: drives the per-block spans of a traced serial
        run.  Scenario lists arrive in ascending global-index order
        (``matrix.scenarios`` guarantees it), so one pass over the
        matrix's block geometry groups them without reordering.
        """
        ranges = self.matrix.block_ranges()
        groups: list[tuple[str, list[Scenario]]] = []
        position = 0
        for scenario in scenarios:
            while position < len(ranges):
                start, size, block = ranges[position]
                if scenario.index < start + size:
                    break
                position += 1
            if position >= len(ranges):  # pragma: no cover - geometry bug
                label = "?"
            else:
                _, _, block = ranges[position]
                axes = ",".join(f"{a}={v}" for a, v in block.extra_axes)
                label = f"{block.family}:{block.schedule}"
                if axes:
                    label = f"{label}[{axes}]"
            if groups and groups[-1][0] == label:
                groups[-1][1].append(scenario)
            else:
                groups.append((label, [scenario]))
        return groups

    def _run_serial(
        self,
        scenarios: list[Scenario],
        tracer: Tracer | None = None,
        meter: ProgressMeter | None = None,
    ) -> list[ScenarioResult]:
        if tracer is None and meter is None:
            return [run_scenario(s) for s in scenarios]
        results: list[ScenarioResult] = []
        for label, group in self._block_groups(scenarios):
            with maybe_span(tracer, "block", label=label, scenarios=len(group)):
                for scenario in group:
                    results.append(run_scenario(scenario))
                    if meter is not None:
                        meter.advance()
        return results

    def _run_kernel(
        self,
        scenarios: list[Scenario],
        tracer: Tracer | None = None,
        meter: ProgressMeter | None = None,
    ) -> list[ScenarioResult]:
        if self.kernel is None:
            from repro.campaign.ablation.kernels import KernelEngine

            # Kept on the runner so re-runs (e.g. warm-cache sweeps) reuse
            # the calibrated cell templates; callers with longer lifetimes
            # (the refine prober) pass their own shared engine instead.
            self.kernel = KernelEngine()
        if tracer is not None and getattr(self.kernel, "tracer", None) is None:
            self.kernel.tracer = tracer
        return self.kernel.run(scenarios, meter=meter)

    def _run_process(
        self,
        scenarios: list[Scenario],
        tracer: Tracer | None = None,
        meter: ProgressMeter | None = None,
    ) -> list[ScenarioResult]:
        ctx = multiprocessing.get_context("fork")
        chunksize = dispatch_chunksize(len(scenarios), self.workers)
        with ctx.Pool(
            processes=self.workers, initializer=_pool_init, initargs=(scenarios,)
        ) as pool:
            if tracer is None and meter is None:
                return pool.map(_run_at, range(len(scenarios)), chunksize=chunksize)
            # Traced dispatch streams ordered results so progress can tick
            # as workers finish; each task carries back a per-worker
            # MetricsSnapshot sample that merges into the parent tracer.
            results = []
            for result, sample in pool.imap(
                _run_at_metered, range(len(scenarios)), chunksize=chunksize
            ):
                results.append(result)
                if tracer is not None:
                    tracer.merge_snapshot(sample)
                if meter is not None:
                    meter.advance()
            return results

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _resolve_backend(self, selected: int) -> str:
        """The backend that will actually run ``selected`` scenarios."""
        if self.backend == "kernel":
            return "kernel"
        if self.backend != "process":
            return "serial"
        if not fork_available():  # pragma: no cover - platform dependent
            return "serial"
        if self.pool is not None:
            # An explicit pool is an opt-in to amortized dispatch: start it
            # even for a tiny first run, since its fork cost is paid once
            # across every run that follows.
            return "process:pooled"
        if selected < MIN_PROCESS_SCENARIOS:
            return "serial"  # fork overhead would dominate a one-shot pool
        return "process"

    # ------------------------------------------------------------------
    # incremental result cache
    # ------------------------------------------------------------------
    def _consult_cache(
        self, indices: list[int]
    ) -> tuple[dict[int, ScenarioResult], list[tuple[str, int, int]]]:
        """Partition the selection against the cache.

        Returns ``(hits, pending)``: per-index results served from cache
        (rebased to global indices) and the ``(key, start, size)`` of every
        fully-selected-but-missed block to store after the run.  Only
        fully-selected blocks participate either way — a partial block's
        results would not verify the whole block.
        """
        hits: dict[int, ScenarioResult] = {}
        pending: list[tuple[str, int, int]] = []
        index_set = set(indices)
        for start, size, block in self.matrix.block_ranges():
            if size == 0 or not all(
                start + offset in index_set for offset in range(size)
            ):
                continue
            key = self.cache.block_key(block.describe(), size)
            cached = self.cache.get(key, size)
            if cached is None:
                pending.append((key, start, size))
            else:
                for local, result in enumerate(cached):
                    hits[start + local] = replace(result, index=start + local)
        return hits, pending

    def _store_blocks(
        self,
        pending: list[tuple[str, int, int]],
        ran: dict[int, ScenarioResult],
    ) -> None:
        """Store every pending block's freshly-run (verified) results."""
        for key, start, size in pending:
            block_results = [
                replace(ran[start + offset], index=offset)
                for offset in range(size)
            ]
            self.cache.put(key, block_results)

    def run(self) -> CampaignReport:
        with maybe_span(self.tracer, "campaign.run"):
            return self._run_traced()

    def _run_traced(self) -> CampaignReport:
        tracer = self.tracer
        total = len(self.matrix)
        # Normalize no-op selections so the digest reflects the *effective*
        # coverage: limit >= total and shard 1/1 are full runs.
        limit = self.limit if self.limit is not None and self.limit < total else None
        shard = self.shard if self.shard is not None and self.shard[1] > 1 else None
        with maybe_span(tracer, "campaign.expand"):
            indices = self.matrix.selection(limit=limit, shard=shard)
            matrix_digest = self.matrix.digest()

        start = time.perf_counter()
        hits: dict[int, ScenarioResult] = {}
        pending: list[tuple[str, int, int]] = []
        if self.cache is not None:
            if tracer is not None:
                self.cache.tracer = tracer
            with maybe_span(tracer, "campaign.cache"):
                hits, pending = self._consult_cache(indices)
        to_run = [i for i in indices if i not in hits] if hits else indices
        backend = self._resolve_backend(len(to_run))
        meter: ProgressMeter | None = None
        if tracer is not None or self.progress is not None:
            meter = ProgressMeter(
                total=len(indices), callback=self.progress, tracer=tracer
            )
            if hits:
                meter.advance(len(hits))
        with maybe_span(
            tracer, "campaign.dispatch", backend=backend, scenarios=len(to_run)
        ):
            if backend == "process:pooled":
                if self.matrix.spec is None:  # add_block after construction
                    raise ValueError(
                        "pool reuse needs a rebuildable matrix: the matrix was "
                        "modified after this runner was constructed, clearing "
                        "its rebuild spec"
                    )
                # Before the pool's first fork, hand it the parent-side
                # expansion so workers inherit the table instead of rebuilding.
                seed = None if self.pool.started else list(self.matrix.scenarios())
                fresh = self.pool.run_indices(
                    self.matrix.spec,
                    matrix_digest,
                    to_run,
                    scenarios=seed,
                    tracer=tracer,
                    meter=meter,
                )
            else:
                if self.cache is None:
                    scenarios = list(
                        self.matrix.scenarios(limit=limit, shard=shard)
                    )
                else:
                    scenarios = list(self.matrix.scenarios(indices=to_run))
                if backend == "process":
                    fresh = self._run_process(scenarios, tracer=tracer, meter=meter)
                elif backend == "kernel":
                    fresh = self._run_kernel(scenarios, tracer=tracer, meter=meter)
                else:
                    fresh = self._run_serial(scenarios, tracer=tracer, meter=meter)
        ran = {result.index: result for result in fresh}
        if pending:
            with maybe_span(tracer, "campaign.store", blocks=len(pending)):
                self._store_blocks(pending, ran)
        if hits:
            results = [
                hits[index] if index in hits else ran[index]
                for index in indices
            ]
        else:
            results = fresh
        elapsed = time.perf_counter() - start
        if meter is not None:
            meter.finish()

        if backend == "process:pooled":
            workers = self.pool.workers
        elif backend == "process":
            workers = self.workers
        else:
            workers = 1
        report = CampaignReport(
            backend=backend,
            workers=workers,
            matrix_digest=matrix_digest,
            total_scenarios=total,
            limit=limit,
            shard=shard,
            elapsed_seconds=elapsed,
            wall_seconds=elapsed,
            cache_hits=len(hits),
        )
        preamble = _digest_preamble(
            report.matrix_digest, total, len(results), limit, shard
        )
        with maybe_span(tracer, "campaign.fold", scenarios=len(results)):
            return _fold_results(report, results, preamble)


def merge_reports(reports: Iterable[CampaignReport]) -> CampaignReport:
    """Recombine shard reports into one, with a recomputed run digest.

    The shards must come from the same matrix (equal ``matrix_digest`` and
    ``total_scenarios``) and the same pre-shard ``limit``, and must not
    overlap.  Results are re-sorted into global index order, so when the
    shards cover the whole selection the merged ``run_digest`` is
    byte-identical to the unsharded run's.  A partial merge (missing
    shards) is allowed but self-evident: its coverage count — folded into
    the digest preamble — cannot match any fuller run.

    ``elapsed_seconds`` sums the shards (total compute, not wall clock);
    ``workers`` sums too, as the aggregate parallelism.  ``wall_seconds``
    records the merge step's own wall clock, so the two timings stop
    masquerading as one another in ``summary()``.
    """
    merge_start = time.perf_counter()
    reports = list(reports)
    if not reports:
        raise ValueError("nothing to merge: empty report list")
    first = reports[0]
    for other in reports[1:]:
        if other.matrix_digest != first.matrix_digest:
            raise ValueError(
                "cannot merge reports from different matrices: "
                f"{first.matrix_digest[:16]} vs {other.matrix_digest[:16]}"
            )
        if other.total_scenarios != first.total_scenarios:
            raise ValueError(
                "cannot merge reports with different matrix sizes: "
                f"{first.total_scenarios} vs {other.total_scenarios}"
            )
        if other.limit != first.limit:
            raise ValueError(
                "cannot merge reports with different limits: "
                f"{first.limit} vs {other.limit}"
            )
    results = sorted(
        (result for report in reports for result in report.results),
        key=lambda result: result.index,
    )
    indices = [result.index for result in results]
    if len(set(indices)) != len(indices):
        raise ValueError("overlapping shards: duplicate scenario indices")

    merged = CampaignReport(
        backend="merged",
        workers=sum(report.workers for report in reports),
        matrix_digest=first.matrix_digest,
        total_scenarios=first.total_scenarios,
        limit=first.limit,
        shard=None,
        elapsed_seconds=sum(report.elapsed_seconds for report in reports),
        cache_hits=sum(report.cache_hits for report in reports),
    )
    preamble = _digest_preamble(
        merged.matrix_digest,
        merged.total_scenarios,
        len(results),
        merged.limit,
        None,
    )
    merged = _fold_results(merged, results, preamble)
    merged.wall_seconds = time.perf_counter() - merge_start
    return merged
