"""One campaign scenario: a full simulation condensed to a stable digest.

A :class:`Scenario` is executable data: a protocol builder, an adversary
profile (party → labelled actor transform), the properties to assert, and
the axis coordinates used for aggregation.  :func:`run_scenario` executes
it — build, deviate, run to the horizon, evaluate every property — and
condenses the run into a :class:`ScenarioResult` made only of primitives,
so results cross process boundaries cheaply.

The per-scenario ``digest`` hashes everything observable about the outcome
(violations, transaction count, premium flows, custom metrics, the final
ledger state of every chain), which is what makes whole campaigns
reproducible: two runs of the same matrix — on any backend, in any process
layout — must produce the same sequence of digests.

Two optional extensions serve analysis campaigns:

- a scenario may carry a ``metrics_fn`` (from its matrix block): a pure
  function of the finished run that condenses it into named floats — e.g.
  the ablation engine's realized-utility and completion metrics.  Metrics
  fold into the scenario digest, so they are covered by the same
  cross-backend determinism contract as ledger state,
- when any property is violated, the run's lane diagram
  (:func:`repro.sim.trace.render_lanes`) is attached to the result as
  ``trace``, making frontier/campaign anomalies one-shot debuggable without
  re-running the scenario.  The trace is *derived* presentation, not
  outcome, so it stays out of the digest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Callable, Protocol

from repro.campaign.canon import canon_float
from repro.protocols.instance import ProtocolInstance, execute

Builder = Callable[[], ProtocolInstance]
Property = Callable[[ProtocolInstance, object, frozenset[str]], list[str]]
#: condenses a finished run into named floats, e.g. realized utilities.
MetricsFn = Callable[[ProtocolInstance, object], tuple[tuple[str, float], ...]]


class LabelledStrategy(Protocol):
    """Anything with a ``label`` and an actor ``transform`` (duck-typed so
    the campaign core does not depend on ``repro.checker``)."""

    label: str
    transform: Callable


@dataclass(frozen=True)
class Scenario:
    """A fully specified scenario, ready to execute."""

    index: int
    label: str
    builder: Builder = field(repr=False)
    properties: tuple[Property, ...] = field(repr=False)
    #: (party, strategy) pairs; the strategy's transform wraps the actor.
    profile: tuple[tuple[str, LabelledStrategy], ...] = ()
    #: parties counted as adversarial when evaluating properties.  Includes
    #: every profiled party plus builder-level deviants (e.g. a cheating
    #: auctioneer baked into the builder rather than an actor transform).
    adversaries: tuple[str, ...] = ()
    #: (axis, value) coordinates for aggregation, e.g. ("family", "broker").
    axes: tuple[tuple[str, str], ...] = ()
    #: optional post-run metric extractor (digest-covered; see module doc).
    metrics_fn: MetricsFn | None = field(default=None, repr=False)


@dataclass(frozen=True)
class ScenarioResult:
    """Primitive-only outcome of one scenario (picklable)."""

    index: int
    label: str
    axes: tuple[tuple[str, str], ...]
    violations: tuple[str, ...]
    transactions: int
    reverted: int
    premium_net: tuple[tuple[str, int], ...]
    elapsed_seconds: float
    digest: str
    #: named floats from the scenario's ``metrics_fn`` (digest-covered).
    metrics: tuple[tuple[str, float], ...] = ()
    #: lane diagram of the run, captured only when a property failed.
    trace: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


def result_payload(result: ScenarioResult) -> dict:
    """The JSON-primitive form of a result (report transport + cache)."""
    return {
        "index": result.index,
        "label": result.label,
        "axes": [list(ax) for ax in result.axes],
        "violations": list(result.violations),
        "transactions": result.transactions,
        "reverted": result.reverted,
        "premium_net": [list(p) for p in result.premium_net],
        "elapsed_seconds": result.elapsed_seconds,
        "digest": result.digest,
        "metrics": [list(m) for m in result.metrics],
        "trace": result.trace,
    }


def result_from_payload(data: dict) -> ScenarioResult:
    """Rebuild a result from :func:`result_payload` (floats canonicalized)."""
    return ScenarioResult(
        index=data["index"],
        label=data["label"],
        axes=tuple((a, v) for a, v in data["axes"]),
        violations=tuple(data["violations"]),
        transactions=data["transactions"],
        reverted=data["reverted"],
        premium_net=tuple((p, int(n)) for p, n in data["premium_net"]),
        elapsed_seconds=data["elapsed_seconds"],
        digest=data["digest"],
        metrics=tuple(
            (name, canon_float(value)) for name, value in data.get("metrics", [])
        ),
        trace=data.get("trace", ""),
    )


def _ledger_fingerprint(instance: ProtocolInstance) -> str:
    """Canonical rendering of every chain's final ledger state."""
    lines = []
    for name in sorted(instance.world.chains):
        chain = instance.world.chains[name]
        for (asset, account), balance in sorted(
            chain.ledger.snapshot().items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
        ):
            if balance:
                lines.append(f"{asset}/{account}={balance}")
    return ";".join(lines)


def condense_run(
    scenario: Scenario, instance: ProtocolInstance, result, elapsed: float
) -> ScenarioResult:
    """Condense a finished run into the scenario's :class:`ScenarioResult`.

    Shared by :func:`run_scenario` and the vectorized ablation kernel's
    audit path (`repro.campaign.ablation.kernels`): every digest-covered
    field — violations, counts, premium flows, metrics, the ledger
    fingerprint and the summary line hashed into ``digest`` — is produced
    here and only here, so the two engines cannot drift in how an outcome
    is rendered.
    """
    adversaries = frozenset(scenario.adversaries)
    violations: list[str] = []
    for prop in scenario.properties:
        violations.extend(prop(instance, result, adversaries))

    payoffs = result.payoffs
    premium_net = tuple(
        (party, payoffs.premium_net(party)) for party in sorted(instance.actors)
    )
    metrics: tuple[tuple[str, float], ...] = ()
    if scenario.metrics_fn is not None:
        # canon_float so a metric of -0.0 (e.g. a negated zero utility)
        # hashes and transports identically to 0.0 on every path.
        metrics = tuple(
            (name, canon_float(value))
            for name, value in scenario.metrics_fn(instance, result)
        )
    trace = ""
    if violations:
        # Capture the lane diagram while the run is still in hand, so a
        # violation record is debuggable without re-running the scenario.
        from repro.sim.trace import render_lanes

        trace = render_lanes(result)

    summary = "|".join(
        (
            scenario.label,
            ",".join(violations),
            str(len(result.transactions)),
            ",".join(f"{p}:{net}" for p, net in premium_net),
            ",".join(f"{name}={value!r}" for name, value in metrics),
            _ledger_fingerprint(instance),
        )
    )
    return ScenarioResult(
        index=scenario.index,
        label=scenario.label,
        axes=scenario.axes,
        violations=tuple(violations),
        transactions=len(result.transactions),
        reverted=len(result.reverted()),
        premium_net=premium_net,
        elapsed_seconds=elapsed,
        # The flow pass cannot see through the dynamic ``prop(...)`` call
        # above and conservatively assumes the adversary frozenset's
        # iteration order reaches the violation strings; properties only
        # membership-test it (see repro.checker.properties), so no order
        # escapes into the summary.
        digest=sha256(summary.encode()).hexdigest(),  # lint: disable=FLOW002
        metrics=metrics,
        trace=trace,
    )


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario and condense the run."""
    start = time.perf_counter()
    instance = scenario.builder()
    deviations = {party: strategy.transform for party, strategy in scenario.profile}
    result = execute(instance, deviations)
    return condense_run(
        scenario, instance, result, time.perf_counter() - start
    )
