"""Persistent worker pools: fork once, run many campaigns.

``CampaignRunner``'s plain ``process`` backend forks a fresh pool per run
and lets workers inherit the expanded scenario list through fork — which
is why builders and strategy transforms never need to be picklable, but
also why back-to-back runs (benchmarks, multi-matrix campaigns, sharded
sweeps) pay the pool spawn cost every time.

:class:`WorkerPool` keeps the workers alive across runs.  Since a
long-lived worker cannot inherit scenarios that did not exist when it was
forked, reuse needs a *rebuildable* matrix: a :class:`MatrixSpec` is a
tiny picklable recipe (a registered factory name plus primitive
arguments) that each worker resolves and expands once, caching the
scenario table by spec.  Tasks then cross the process boundary as
``(spec, matrix_digest, index)`` triples; the worker verifies the rebuilt
matrix's structural digest before running anything, so structural drift
between parent and worker fails loudly.  The structural digest cannot see
parameters captured inside builder closures (see
:meth:`ScenarioMatrix.digest`), so a registered factory must build its
matrix purely from its arguments — not from mutable module state — for
the verification to mean what it says.

Factories register under a short name — ``default`` is
:func:`repro.campaign.families.default_matrix`, ``ablation`` is
:func:`repro.campaign.ablation.ablation_matrix` — and anything importable
at worker startup can register its own via :func:`register_matrix_factory`
(plain call or decorator).  The *registry audit* in the worker-side digest
check makes bespoke factories first-class: before a worker runs anything
it verifies the named factory is registered (importing the standard
factory modules on demand) and that the rebuilt matrix reproduces the
parent's structural digest; either failure names the factory and the full
registry, so a missing ``import yourmodule`` or a non-deterministic
factory fails loudly instead of silently running the wrong matrix.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.scenario import Scenario, ScenarioResult, run_scenario
from repro.obs import MetricsSnapshot, worker_sample

_FACTORIES: dict[str, Callable[..., ScenarioMatrix]] = {}

#: modules whose import populates the registry with the shipped factories;
#: imported lazily to avoid package-level cycles (each of these imports
#: this module back for ``register_matrix_factory``).
_STANDARD_FACTORY_MODULES = (
    "repro.campaign.families",
    "repro.campaign.ablation",
)

# Worker-side cache: spec → (structural digest, expanded scenario table).
# Bounded LRU: a run's tasks all share one spec, so a handful of entries
# covers alternating matrices without letting a long parameter sweep grow
# per-worker memory without limit.
_SPEC_CACHE: dict["MatrixSpec", tuple[str, list[Scenario]]] = {}
_MAX_CACHED_SPECS = 4


def register_matrix_factory(
    name: str, factory: Callable[..., ScenarioMatrix] | None = None
):
    """Register a matrix factory under ``name`` for worker-side rebuilds.

    Usable directly — ``register_matrix_factory("default", default_matrix)``
    — or as a decorator::

        @register_matrix_factory("ablation")
        def ablation_matrix(...): ...

    A registered factory must build its matrix purely from its arguments
    (see the module docstring); the worker-side audit verifies this by
    structural digest on every rebuild.
    """
    if factory is None:

        def decorate(fn: Callable[..., ScenarioMatrix]) -> Callable[..., ScenarioMatrix]:
            _FACTORIES[name] = fn
            return fn

        return decorate
    _FACTORIES[name] = factory
    return factory


def registered_factories() -> tuple[str, ...]:
    """The currently registered factory names (sorted), for audits."""
    return tuple(sorted(_FACTORIES))


def _audit_factory(name: str) -> Callable[..., ScenarioMatrix]:
    """Resolve a factory name, importing the standard modules on demand."""
    if name not in _FACTORIES:
        for module in _STANDARD_FACTORY_MODULES:
            importlib.import_module(module)
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown matrix factory {name!r}; "
            f"registered: {list(registered_factories())} — a bespoke factory "
            "must be registered via register_matrix_factory in a module "
            "imported on the worker side"
        )
    return _FACTORIES[name]


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """The worker count both backends use when none is requested."""
    return max(2, os.cpu_count() or 1)


def dispatch_chunksize(tasks: int, workers: int) -> int:
    """Shared batching policy: ~8 chunks per worker, at least 1 task each."""
    return max(1, tasks // (workers * 8))


@dataclass(frozen=True)
class MatrixSpec:
    """A picklable recipe for rebuilding a :class:`ScenarioMatrix`.

    ``kwargs`` is a sorted tuple of ``(name, value)`` pairs so the spec is
    hashable (it keys the worker-side cache) and deterministic.  Values
    must be primitives/tuples — anything :mod:`pickle` moves cheaply.
    """

    factory: str
    args: tuple = ()
    kwargs: tuple[tuple[str, Any], ...] = ()

    def build(self) -> ScenarioMatrix:
        return _audit_factory(self.factory)(*self.args, **dict(self.kwargs))


def _cache_insert(spec: MatrixSpec, entry: tuple[str, list[Scenario]]) -> None:
    _SPEC_CACHE.pop(spec, None)
    while len(_SPEC_CACHE) >= _MAX_CACHED_SPECS:
        _SPEC_CACHE.pop(next(iter(_SPEC_CACHE)))
    _SPEC_CACHE[spec] = entry  # insert last: dict order is LRU order


def _cached_scenarios(spec: MatrixSpec, matrix_digest: str) -> list[Scenario]:
    entry = _SPEC_CACHE.get(spec)
    if entry is None:
        # build() audits the registry first: a missing registration fails
        # with the factory name and the full registered set.
        matrix = spec.build()
        entry = (matrix.digest(), list(matrix.scenarios()))
    _cache_insert(spec, entry)  # refresh recency either way
    digest, scenarios = entry
    if digest != matrix_digest:
        raise RuntimeError(
            f"worker rebuilt matrix {digest[:16]} but the campaign expected "
            f"{matrix_digest[:16]}: the factory behind {spec.factory!r} "
            f"(registered: {list(registered_factories())}) is not "
            "deterministic across processes"
        )
    return scenarios


def _run_spec_index(task: tuple[MatrixSpec, str, int]) -> ScenarioResult:
    spec, matrix_digest, index = task
    return run_scenario(_cached_scenarios(spec, matrix_digest)[index])


def _run_spec_index_metered(
    task: tuple[MatrixSpec, str, int],
) -> tuple[ScenarioResult, MetricsSnapshot]:
    """Traced variant of :func:`_run_spec_index`: the result plus a
    per-worker telemetry sample (scenario count + busy time keyed by the
    worker's pid), carried back as a picklable
    :class:`repro.obs.MetricsSnapshot` for the parent tracer to merge.
    The scenario outcome is byte-identical to the untraced path."""
    spec, matrix_digest, index = task
    start = time.perf_counter()
    result = run_scenario(_cached_scenarios(spec, matrix_digest)[index])
    return result, worker_sample(1, time.perf_counter() - start)


class WorkerPool:
    """A fork-based process pool that outlives individual campaign runs.

    Pass one instance as ``CampaignRunner(..., pool=...)`` across several
    runs (or matrices) to pay the fork cost once.  Usable as a context
    manager; :meth:`close` tears the workers down.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else default_workers()
        self._pool: multiprocessing.pool.Pool | None = None

    @property
    def started(self) -> bool:
        return self._pool is not None

    def _ensure_started(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            if not fork_available():  # pragma: no cover - platform dependent
                raise RuntimeError("WorkerPool requires the fork start method")
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    def run_indices(
        self,
        spec: MatrixSpec,
        matrix_digest: str,
        indices: list[int],
        scenarios: list[Scenario] | None = None,
        tracer=None,
        meter=None,
    ) -> list[ScenarioResult]:
        """Run the given global scenario indices of ``spec``'s matrix.

        ``scenarios`` (the parent's *full* expansion, in global index
        order) is an optional warm-start: when supplied before the pool
        has forked, it seeds the worker-side cache through fork
        inheritance — the same copy-on-write mechanism the one-shot
        process backend uses — so workers skip rebuilding the first
        matrix.  It is ignored once workers exist, since nothing can be
        inherited after the fork.

        ``tracer``/``meter`` (a :class:`repro.obs.Tracer` and
        :class:`repro.obs.ProgressMeter`) switch dispatch to the metered
        task variant: results stream back in order so progress ticks as
        workers finish, and each task's per-worker sample merges into the
        tracer.  Outcomes are byte-identical either way.
        """
        seeded = scenarios is not None and not self.started
        if seeded:
            _cache_insert(spec, (matrix_digest, scenarios))
        pool = self._ensure_started()
        if seeded:
            # Workers inherited the entry at fork; the parent never reads
            # its own cache, so drop the reference rather than pin the
            # full expansion for the driver process's lifetime.
            _SPEC_CACHE.pop(spec, None)
        chunksize = dispatch_chunksize(len(indices), self.workers)
        tasks = [(spec, matrix_digest, index) for index in indices]
        if tracer is None and meter is None:
            return pool.map(_run_spec_index, tasks, chunksize=chunksize)
        results = []
        for result, sample in pool.imap(
            _run_spec_index_metered, tasks, chunksize=chunksize
        ):
            results.append(result)
            if tracer is not None:
                tracer.merge_snapshot(sample)
            if meter is not None:
                meter.advance()
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
