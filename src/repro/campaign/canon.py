"""Canonical float handling for digests and cross-host transport.

Premium fractions and shock sizes are float-valued axes: they are rendered
into scenario schedule labels, hashed into matrix/run/frontier digests, and
round-tripped through JSON between shard hosts.  Refined (bisected)
premium values make this delicate — ``(lo + hi) / 2`` produces floats whose
textual form must not depend on how a value was reached, which formatting
call rendered it, or which platform printed it.  Everything float-facing
goes through this module so there is exactly one canonicalization point:

- :func:`canon_float` pins the *value*: coerce to an IEEE-754 double and
  collapse ``-0.0`` to ``0.0`` (the sign bit would otherwise leak into
  digests through ``repr`` while comparing equal everywhere else),
- :func:`fmt_fraction` pins the *text*: Python's shortest round-tripping
  ``repr`` (identical for a given double on every supported platform),
  with the trailing ``.0`` of whole numbers stripped so axis labels read
  ``"0"``/``"2"`` rather than ``"0.0"``/``"2.0"``.

The old ablation-axis rendering used ``format(value, "g")``, which is
*lossy* past six significant digits: two distinct bisected premiums could
collide onto one axis label (and therefore one digest) while producing
different runs.  ``repr`` is exact, so distinct doubles always get
distinct labels.
"""

from __future__ import annotations


def canon_float(value: float | int | str) -> float:
    """Normalize a number for digest/transport use.

    Coerces to ``float`` and collapses negative zero to positive zero;
    every other value (including the result of any bisection arithmetic)
    is already a canonical IEEE-754 double.
    """
    value = float(value)
    if value == 0.0:  # catches -0.0 too: they compare equal
        return 0.0
    return value


def canon_opt(value: float | int | str | None) -> float | None:
    """:func:`canon_float` with ``None`` passthrough, for optional fields
    (e.g. an undeterred row's ``pi_star``) feeding digests or JSON."""
    return None if value is None else canon_float(value)


def fmt_fraction(value: float | int | str) -> str:
    """Canonical text for a fraction axis: exact, shortest, repr-stable.

    ``0.025`` → ``"0.025"``, ``0.0`` → ``"0"``, ``-0.0`` → ``"0"``,
    ``0.0328125`` → ``"0.0328125"``; distinct doubles never collide.
    """
    text = repr(canon_float(value))
    if text.endswith(".0"):
        text = text[:-2]
    return text
