"""Canonical float handling for digests and cross-host transport.

Premium fractions and shock sizes are float-valued axes: they are rendered
into scenario schedule labels, hashed into matrix/run/frontier digests, and
round-tripped through JSON between shard hosts.  Refined (bisected)
premium values make this delicate — ``(lo + hi) / 2`` produces floats whose
textual form must not depend on how a value was reached, which formatting
call rendered it, or which platform printed it.  Everything float-facing
goes through this module so there is exactly one canonicalization point:

- :func:`canon_float` pins the *value*: coerce to an IEEE-754 double and
  collapse ``-0.0`` to ``0.0`` (the sign bit would otherwise leak into
  digests through ``repr`` while comparing equal everywhere else),
- :func:`fmt_fraction` pins the *text*: Python's shortest round-tripping
  ``repr`` (identical for a given double on every supported platform),
  with the trailing ``.0`` of whole numbers stripped so axis labels read
  ``"0"``/``"2"`` rather than ``"0.0"``/``"2.0"``.

The old ablation-axis rendering used ``format(value, "g")``, which is
*lossy* past six significant digits: two distinct bisected premiums could
collide onto one axis label (and therefore one digest) while producing
different runs.  ``repr`` is exact, so distinct doubles always get
distinct labels.
"""

from __future__ import annotations

import math


def canon_float(value: float | int | str) -> float:
    """Normalize a number for digest/transport use.

    Coerces to ``float`` and collapses negative zero to positive zero;
    every other finite value (including the result of any bisection
    arithmetic) is already a canonical IEEE-754 double.  Non-finite values
    are rejected: ``json.dumps`` would emit the non-standard ``NaN`` /
    ``Infinity`` tokens, which strict parsers on other hosts refuse — a
    NaN axis or metric must fail at the source, not poison a report
    round-trip later.
    """
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(
            f"non-finite value {value!r} has no canonical form: digests "
            "and JSON transport require finite floats"
        )
    if value == 0.0:  # catches -0.0 too: they compare equal
        return 0.0
    return value


def canon_opt(value: float | int | str | None) -> float | None:
    """:func:`canon_float` with ``None`` passthrough, for optional fields
    (e.g. an undeterred row's ``pi_star``) feeding digests or JSON."""
    return None if value is None else canon_float(value)


def fmt_fraction(value: float | int | str) -> str:
    """Canonical text for a fraction axis: exact, shortest, repr-stable.

    ``0.025`` → ``"0.025"``, ``0.0`` → ``"0"``, ``-0.0`` → ``"0"``,
    ``0.0328125`` → ``"0.0328125"``; distinct doubles never collide.

    ``repr`` switches to scientific notation below 1e-4 (``repr(1e-05)``
    is ``"1e-05"``), which deeply-bisected premiums reach; those are
    re-rendered in fixed point (``"0.00001"``) so axis labels never mix
    decimal and exponent forms across a grid.  The rewrite shifts the
    exact repr digits, so it is value-preserving and injective: the label
    still parses back (``float``) to the identical double.
    """
    text = repr(canon_float(value))
    if "e" in text:
        return _fixed_point(text)
    if text.endswith(".0"):
        text = text[:-2]
    return text


def _fixed_point(text: str) -> str:
    """Rewrite a ``repr`` scientific-notation float in fixed point.

    The mantissa digits are repr's shortest round-tripping digits; moving
    the decimal point by the exponent re-renders the same decimal value,
    so distinct doubles keep distinct labels (no digits are dropped).
    """
    mantissa, _, exp = text.partition("e")
    exponent = int(exp)
    sign = ""
    if mantissa.startswith("-"):
        sign, mantissa = "-", mantissa[1:]
    whole, _, frac = mantissa.partition(".")
    digits = whole + frac
    point = len(whole) + exponent
    if point <= 0:
        out = "0." + "0" * (-point) + digits
    elif point >= len(digits):
        out = digits + "0" * (point - len(digits))
    else:
        out = digits[:point] + "." + digits[point:]
    return sign + out
