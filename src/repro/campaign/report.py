"""The common Report protocol: one serialization contract for every engine.

PRs 1–4 grew three parallel report types — :class:`~repro.campaign.runner.
CampaignReport`, :class:`~repro.campaign.ablation.frontier.FrontierReport`,
and :class:`~repro.campaign.ablation.refine.RefinedFrontierReport` — each
with its own JSON transport and its own merge entry point.  This module is
the spine that makes them one family:

- every report class registers under a short ``kind`` string
  (:func:`register_report`), which it stamps into its JSON payload,
- :func:`report_from_json` dispatches deserialization on that ``kind``
  (files written before the field existed are inferred from their shape,
  so old shard artifacts keep loading),
- :func:`merge_reports_any` is the kind-aware merge behind the CLI's
  single ``merge`` subcommand: homogeneous inputs dispatch to the class's
  own ``merge``; a reduced artifact (frontier, refined frontier) says
  explicitly that its *underlying campaign shards* are what merge.

Like the matrix-factory registry in :mod:`repro.campaign.pool`, the
standard report modules are imported lazily on first lookup, so this
module stays import-cycle-free while ``kind`` strings remain resolvable
from anywhere (CLI, tests, cross-host tooling).

Digest rules are unchanged by the protocol: each kind keeps computing its
digest exactly as before (the ``kind`` field rides in the JSON envelope
only), so every report digest produced since PR 1 is reproduced
byte-identically.
"""

from __future__ import annotations

import importlib
import json
from typing import Iterable, Protocol, Type, runtime_checkable


@runtime_checkable
class Report(Protocol):
    """What every campaign-engine report exposes.

    ``kind`` names the report type (the registry key), ``digest`` is the
    reproducibility digest provenance claims should cite, ``to_json`` /
    ``from_json`` round-trip the report with tamper detection, and
    ``merge`` recombines shard reports of the same kind (reduced
    artifacts raise with guidance instead).
    """

    kind: str

    @property
    def digest(self) -> str: ...  # pragma: no cover - protocol

    def to_json(self) -> str: ...  # pragma: no cover - protocol

    @classmethod
    def from_json(cls, text: str) -> "Report": ...  # pragma: no cover

    @classmethod
    def merge(cls, reports: "Iterable[Report]") -> "Report": ...  # pragma: no cover


_REPORT_KINDS: dict[str, Type] = {}

#: modules whose import registers the shipped report kinds; imported
#: lazily because each imports this module back for `register_report`.
_STANDARD_REPORT_MODULES = (
    "repro.campaign.runner",
    "repro.campaign.ablation.frontier",
    "repro.campaign.ablation.refine",
)


def register_report(kind: str):
    """Class decorator: register a report type under ``kind``.

    Stamps ``cls.kind`` so instances can label their own JSON envelope::

        @register_report("campaign")
        @dataclass
        class CampaignReport: ...
    """

    def decorate(cls):
        cls.kind = kind
        _REPORT_KINDS[kind] = cls
        return cls

    return decorate


def registered_report_kinds() -> tuple[str, ...]:
    """The currently registered kinds (sorted), for audits and errors."""
    for module in _STANDARD_REPORT_MODULES:
        importlib.import_module(module)
    return tuple(sorted(_REPORT_KINDS))


def report_class(kind: str) -> Type:
    """Resolve a kind to its report class, importing standard modules."""
    if kind not in _REPORT_KINDS:
        for module in _STANDARD_REPORT_MODULES:
            importlib.import_module(module)
    if kind not in _REPORT_KINDS:
        raise KeyError(
            f"unknown report kind {kind!r}; "
            f"registered: {list(registered_report_kinds())}"
        )
    return _REPORT_KINDS[kind]


def _infer_kind(data: dict) -> str:
    """Shape-infer the kind of a pre-protocol JSON file (no ``kind`` key)."""
    if "results" in data and "run_digest" in data:
        return "campaign"
    if "base_digest" in data:
        return "refined-frontier"
    if "rows" in data:
        return "frontier"
    raise ValueError(
        "not a recognizable report: no 'kind' field and the payload shape "
        "matches none of the known report kinds "
        f"({list(registered_report_kinds())})"
    )


def report_from_json(text: str) -> Report:
    """Deserialize any registered report, dispatching on its ``kind``."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise ValueError(f"not a JSON report: {err}")
    if not isinstance(data, dict):
        raise ValueError(f"not a JSON report object: got {type(data).__name__}")
    kind = data.get("kind") or _infer_kind(data)
    try:
        cls = report_class(kind)
    except KeyError as err:
        raise ValueError(str(err))
    try:
        return cls.from_json(text)
    except (KeyError, TypeError) as err:
        # e.g. a payload whose stamped kind does not match its shape
        raise ValueError(f"malformed {kind!r} report payload: {err!r}")


def check_kind(cls, data: dict) -> None:
    """Shared ``from_json`` guard: a stamped kind must match the class.

    Files written before the protocol carry no ``kind`` — those pass (the
    shape already matched the deserializer the caller chose).
    """
    stamped = data.get("kind")
    if stamped is not None and stamped != cls.kind:
        raise ValueError(
            f"report kind mismatch: payload says {stamped!r} but "
            f"{cls.__name__} deserializes {cls.kind!r} — use "
            "repro.campaign.report.report_from_json for kind dispatch"
        )


def merge_reports_any(reports: Iterable[Report]) -> Report:
    """Kind-aware merge: dispatch homogeneous reports to their own merge.

    This is what lets one CLI ``merge`` subcommand replace the old
    ``campaign-merge``/``ablate-merge`` pair: campaign shards (from either
    matrix shape) recombine via the class merge; mixed kinds, or reduced
    artifacts whose class merge raises, fail with guidance.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("nothing to merge: empty report list")
    kinds = {type(report).kind for report in reports}
    if len(kinds) > 1:
        raise ValueError(
            f"cannot merge mixed report kinds {sorted(kinds)}: merge each "
            "kind separately"
        )
    return type(reports[0]).merge(reports)
