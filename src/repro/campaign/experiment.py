"""Declarative experiments: one spec, one entry point, every engine.

PRs 1–4 grew three parallel engines — the adversarial campaign, the
rational-adversary ablation lattice, and the bisected frontier refinement
— each wired to its own CLI flags.  The two remaining ROADMAP scale items
(the incremental result cache, multi-host orchestration) both need the
same missing object: a *serializable, digest-covered description of an
entire experiment* that can key a store, ride over ssh, and replay
byte-identically.  That object is :class:`ExperimentSpec`:

- ``kind`` selects the engine (``campaign`` / ``ablate`` /
  ``ablate-refine``),
- ``matrix`` is a :class:`~repro.campaign.pool.MatrixSpec` — a registered
  factory name plus primitive parameters, the same rebuild recipe worker
  pools already audit by structural digest; every grid knob (premium and
  shock fractions, stages, coalitions, seed, families) lives in it,
- ``limit``/``shard`` carry the selection, ``backend``/``workers`` the
  execution layout, ``tol`` the refinement tolerance,
- ``expect`` carries optional ``(report kind → digest)`` assertions, so a
  spec can state the digests its run must reproduce.

:meth:`ExperimentSpec.digest` hashes only the *result-determining* fields
(kind, matrix, selection, tolerance) — backend, workers, and expectations
are excluded because scenario outcomes are backend-invariant (the
campaign engine's proven contract), so one spec digest names one result
regardless of where or how parallel it ran.

:class:`Experiment` is the facade: ``run()`` builds the matrix through
the audited factory registry, dispatches to the right engine, threads a
persistent :class:`~repro.campaign.pool.WorkerPool` and the incremental
:class:`~repro.campaign.cache.ResultCache` through every stage (lattice
and bisection probes alike), verifies ``expect``, and returns an
:class:`ExperimentResult` holding reports that all conform to the common
:mod:`~repro.campaign.report` protocol.

The legacy CLI subcommands construct these specs from their flags and run
through this facade, which is what makes ``spec``-driven and flag-driven
runs byte-identical by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import sha256
from typing import Iterable

from repro.campaign.ablation.refine import DEFAULT_TOL
from repro.campaign.cache import ResultCache
from repro.campaign.canon import canon_float
from repro.campaign.matrix import ScenarioMatrix, validate_shard
from repro.campaign.pool import MatrixSpec, WorkerPool

EXPERIMENT_KINDS = ("campaign", "ablate", "ablate-refine")

EXPERIMENT_BACKENDS = ("serial", "process", "pooled")

#: ``simulator`` replays every scenario through the full protocol engine;
#: ``kernel`` routes ablation scenarios through the vectorized payoff
#: kernels (:mod:`repro.campaign.ablation.kernels`), which produce
#: byte-identical results and digests.  The engine is recorded in the spec
#: digest (only when non-default, so pre-engine stamped specs still
#: verify); ``backend``/``workers`` are ignored under ``kernel`` — the
#: kernel engine is single-process by design.
EXPERIMENT_ENGINES = ("simulator", "kernel")


class ExperimentError(ValueError):
    """A spec could not be honored (bad fields, digest expectation miss)."""


def _tuplify(value):
    """Recursively turn JSON lists back into the tuples specs hash/pickle."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _jsonify(value):
    """The inverse: tuples to lists for JSON transport."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serializable description of one experiment."""

    kind: str
    matrix: MatrixSpec
    backend: str = "serial"
    workers: int | None = None
    limit: int | None = None
    shard: tuple[int, int] | None = None
    #: bisection tolerance; only meaningful (and only set) for ablate-refine.
    tol: float | None = None
    #: scenario engine: ``simulator`` or ``kernel`` (ablation kinds only).
    engine: str = "simulator"
    #: (report kind, digest) assertions the run must reproduce.
    expect: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EXPERIMENT_KINDS:
            raise ExperimentError(
                f"unknown experiment kind {self.kind!r}; "
                f"known: {list(EXPERIMENT_KINDS)}"
            )
        if self.backend not in EXPERIMENT_BACKENDS:
            raise ExperimentError(
                f"unknown backend {self.backend!r}; "
                f"known: {list(EXPERIMENT_BACKENDS)}"
            )
        if self.engine not in EXPERIMENT_ENGINES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; "
                f"known: {list(EXPERIMENT_ENGINES)}"
            )
        if self.engine == "kernel" and self.kind == "campaign":
            raise ExperimentError(
                "the kernel engine covers only the ablation kinds "
                "(ablate, ablate-refine); campaign specs run the simulator"
            )
        if not isinstance(self.matrix, MatrixSpec):
            raise ExperimentError(
                f"matrix must be a MatrixSpec, got {type(self.matrix).__name__}"
            )
        if self.limit is not None and self.limit < 1:
            raise ExperimentError(f"limit must be >= 1, got {self.limit}")
        if self.shard is not None:
            validate_shard(self.shard)
        if self.tol is not None and self.kind != "ablate-refine":
            raise ExperimentError("tol applies only to ablate-refine specs")
        if self.tol is not None and self.tol <= 0:
            raise ExperimentError(f"tol must be positive, got {self.tol}")
        if self.kind == "ablate-refine" and (
            self.limit is not None or self.shard is not None
        ):
            raise ExperimentError(
                "ablate-refine needs full lattice coverage: limit/shard "
                "selections cannot refine (shard the ablate lattice, merge, "
                "then refine the merged frontier)"
            )
        for pair in self.expect:
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise ExperimentError(
                    f"expect entries must be (report kind, digest) pairs, "
                    f"got {pair!r}"
                )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """The spec's identity: a hash of its result-determining fields.

        ``backend``/``workers`` are excluded (results are
        backend-invariant), and so is ``expect`` (assertions about the
        result are not part of what runs).  Two specs share a digest iff
        they describe the same scenarios, selection, and reduction.
        """
        payload = {
            "kind": self.kind,
            "matrix": {
                "factory": self.matrix.factory,
                "args": _jsonify(self.matrix.args),
                "kwargs": {
                    name: _jsonify(value) for name, value in self.matrix.kwargs
                },
            },
            "limit": self.limit,
            "shard": list(self.shard) if self.shard else None,
            "tol": canon_float(self.tol) if self.tol is not None else None,
        }
        if self.engine != "simulator":
            # Included only when non-default so specs stamped before the
            # engine field existed keep verifying their recorded digest.
            # The engine is nonetheless result-determining *in principle*
            # (it selects the execution path the digests must survive), so
            # a non-default choice is part of the spec's identity.
            payload["engine"] = self.engine
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return sha256(f"experiment-spec|{text}".encode()).hexdigest()

    def expected(self, report_kind: str) -> str | None:
        for kind, digest in self.expect:
            if kind == report_kind:
                return digest
        return None

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "matrix": {
                    "factory": self.matrix.factory,
                    "args": _jsonify(self.matrix.args),
                    "kwargs": {
                        name: _jsonify(value)
                        for name, value in self.matrix.kwargs
                    },
                },
                "backend": self.backend,
                "workers": self.workers,
                "limit": self.limit,
                "shard": list(self.shard) if self.shard else None,
                "tol": canon_float(self.tol) if self.tol is not None else None,
                "engine": self.engine,
                "expect": {kind: digest for kind, digest in self.expect},
                "digest": self.digest(),
            },
            indent=2,
            sort_keys=False,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ExperimentError(f"not a JSON experiment spec: {err}")
        try:
            matrix = MatrixSpec(
                factory=data["matrix"]["factory"],
                args=_tuplify(data["matrix"].get("args", [])),
                kwargs=tuple(
                    sorted(
                        (name, _tuplify(value))
                        for name, value in data["matrix"].get("kwargs", {}).items()
                    )
                ),
            )
            spec = cls(
                kind=data["kind"],
                matrix=matrix,
                backend=data.get("backend", "serial"),
                workers=data.get("workers"),
                limit=data.get("limit"),
                shard=tuple(data["shard"]) if data.get("shard") else None,
                tol=data.get("tol"),
                engine=data.get("engine", "simulator"),
                expect=tuple(sorted(data.get("expect", {}).items())),
            )
        except ExperimentError:
            raise
        except (KeyError, TypeError, ValueError) as err:
            # ValueError: field validation (e.g. a bad shard coordinate)
            raise ExperimentError(f"malformed experiment spec: {err}")
        stamped = data.get("digest")
        if stamped is not None and stamped != spec.digest():
            raise ExperimentError(
                "spec digest mismatch after deserialization: "
                f"{spec.digest()[:16]} != {stamped[:16]} — the spec was "
                "edited without re-stamping (re-emit it with the `spec` "
                "subcommand)"
            )
        return spec


# ----------------------------------------------------------------------
# spec builders (the CLI shims' and `spec` subcommand's constructors)
# ----------------------------------------------------------------------
def _exec_fields(backend, workers, limit, shard, expect):
    return dict(
        backend=backend,
        workers=workers,
        limit=limit,
        shard=shard,
        expect=tuple(sorted(expect)) if expect else (),
    )


def campaign_spec(
    families: Iterable[str] | None = None,
    seed: int = 0,
    max_adversaries: int | None = None,
    backend: str = "serial",
    workers: int | None = None,
    limit: int | None = None,
    shard: tuple[int, int] | None = None,
    expect: Iterable[tuple[str, str]] = (),
) -> ExperimentSpec:
    """A spec for the standard all-families adversarial campaign.

    The ``matrix`` recipe is the factory's own normalized rebuild recipe
    (:func:`~repro.campaign.families.default_matrix_spec`), computed
    without expanding any blocks — emitting a spec is cheap no matter how
    large the matrix it describes.
    """
    from repro.campaign.families import default_matrix_spec

    return ExperimentSpec(
        kind="campaign",
        matrix=default_matrix_spec(
            families=families, seed=seed, max_adversaries=max_adversaries
        ),
        **_exec_fields(backend, workers, limit, shard, expect),
    )


def _ablation_matrix_spec(
    families, premium_fractions, shock_fractions, stages, coalitions, seed
) -> MatrixSpec:
    from repro.campaign.ablation.grid import ablation_matrix_spec

    return ablation_matrix_spec(
        families=families,
        premium_fractions=premium_fractions,
        shock_fractions=shock_fractions,
        stages=stages,
        coalitions=coalitions,
        seed=seed,
    )


def ablate_spec(
    families: Iterable[str] | None = None,
    premium_fractions: Iterable[float] | None = None,
    shock_fractions: Iterable[float] | None = None,
    stages: Iterable[str] | None = None,
    coalitions: bool = False,
    seed: int = 0,
    backend: str = "serial",
    workers: int | None = None,
    shard: tuple[int, int] | None = None,
    engine: str = "kernel",
    expect: Iterable[tuple[str, str]] = (),
) -> ExperimentSpec:
    """A spec for the rational-adversary ablation lattice.

    ``engine`` defaults to the vectorized payoff kernels — the results
    and digests are byte-identical to the simulator's (a contract CI's
    parity audit enforces on every default-grid cell), so the fast path
    is the default; pass ``engine="simulator"`` for the audit path.
    """
    return ExperimentSpec(
        kind="ablate",
        matrix=_ablation_matrix_spec(
            families, premium_fractions, shock_fractions, stages, coalitions, seed
        ),
        engine=engine,
        **_exec_fields(backend, workers, None, shard, expect),
    )


def refine_spec(
    families: Iterable[str] | None = None,
    premium_fractions: Iterable[float] | None = None,
    shock_fractions: Iterable[float] | None = None,
    stages: Iterable[str] | None = None,
    coalitions: bool = False,
    seed: int = 0,
    tol: float = DEFAULT_TOL,
    backend: str = "serial",
    workers: int | None = None,
    engine: str = "kernel",
    expect: Iterable[tuple[str, str]] = (),
) -> ExperimentSpec:
    """A spec for the bisected (continuous) frontier refinement.

    ``engine`` defaults to the kernels (see :func:`ablate_spec`): both
    the lattice and every bisection probe run through one shared
    :class:`~repro.campaign.ablation.kernels.KernelEngine`, so probe
    cells reuse the lattice's calibrated templates.
    """
    return ExperimentSpec(
        kind="ablate-refine",
        matrix=_ablation_matrix_spec(
            families, premium_fractions, shock_fractions, stages, coalitions, seed
        ),
        tol=canon_float(tol),
        engine=engine,
        **_exec_fields(backend, workers, None, None, expect),
    )


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """Every report one experiment produced, primary last-reduced first."""

    spec: ExperimentSpec
    campaign: "object | None" = None
    frontier: "object | None" = None
    refined: "object | None" = None
    #: scenarios served from the result cache (lattice + bisection probes).
    cache_hits: int = 0

    @property
    def primary(self):
        """The most-reduced report the run produced — what ``--expect``
        and the CLI's headline digest refer to."""
        for report in (self.refined, self.frontier, self.campaign):
            if report is not None:
                return report
        raise ExperimentError("experiment produced no report")

    @property
    def reports(self) -> tuple:
        return tuple(
            report
            for report in (self.campaign, self.frontier, self.refined)
            if report is not None
        )

    @property
    def ok(self) -> bool:
        return self.campaign is None or self.campaign.ok


class Experiment:
    """Run an :class:`ExperimentSpec` through the right engine.

    ``pool`` supplies a caller-owned persistent worker pool (left open);
    with ``backend="pooled"`` and no pool, the facade creates one for the
    run and closes it after.  ``cache`` is the incremental result cache,
    threaded through the campaign run *and* every refinement probe; when
    attached, an ``ablate-refine`` run also stores its refined rows in
    the quote row store (:mod:`repro.campaign.ablation.rowstore`), so any
    refinement warms the quote engine's tier-2 path.
    ``matrix`` short-circuits the factory rebuild when the caller already
    built it (the CLI prints the breakdown first).  ``kernel`` supplies a
    caller-owned :class:`~repro.campaign.ablation.kernels.KernelEngine`
    so repeated narrow runs (the quote engine's tier-3 fallbacks) reuse
    calibrated cell templates across experiments.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        pool: WorkerPool | None = None,
        cache: ResultCache | None = None,
        matrix: ScenarioMatrix | None = None,
        tracer=None,
        progress=None,
        kernel=None,
    ) -> None:
        self.spec = spec
        self.pool = pool
        self.cache = cache
        self.kernel = kernel
        self._matrix = matrix
        #: optional repro.obs.Tracer / ProgressUpdate callback, threaded
        #: through the runner, cache, kernel engine, and refine probes.
        #: Observability only: traced runs are byte-identical to untraced.
        self.tracer = tracer
        self.progress = progress

    def matrix(self) -> ScenarioMatrix:
        """Build (or reuse) the spec's matrix via the audited registry."""
        if self._matrix is None:
            self._matrix = self.spec.matrix.build()
        return self._matrix

    def run(self) -> ExperimentResult:
        from repro.obs import maybe_span

        with maybe_span(self.tracer, "experiment", kind=self.spec.kind):
            return self._run_traced()

    def _run_traced(self) -> ExperimentResult:
        from repro.campaign.ablation.frontier import reduce_frontier
        from repro.campaign.ablation.refine import _CellProber, refine_frontier
        from repro.campaign.runner import CampaignRunner
        from repro.obs import maybe_span

        spec = self.spec
        with maybe_span(self.tracer, "experiment.build"):
            matrix = self.matrix()
        pool = self.pool
        own_pool: WorkerPool | None = None
        kernel = None
        if spec.engine == "kernel":
            # The kernel engine is single-process by design: ``backend``
            # and ``workers`` describe simulator process layout and are
            # ignored (results are engine-invariant, so the digests the
            # run must reproduce do not change).  One engine is shared by
            # the lattice run and every bisection probe, so probes reuse
            # the lattice's calibrated cell templates.
            from repro.campaign.ablation.kernels import KernelEngine

            kernel = self.kernel
            if kernel is None:
                kernel = KernelEngine(tracer=self.tracer)
            runner_backend = "kernel"
        else:
            if spec.backend == "pooled" and pool is None:
                pool = own_pool = WorkerPool(workers=spec.workers)
            runner_backend = (
                "process" if spec.backend == "pooled" else spec.backend
            )
        runner_pool = pool if kernel is None else None
        runner_workers = (
            spec.workers if kernel is None and runner_pool is None else None
        )
        try:
            runner = CampaignRunner(
                matrix,
                backend=runner_backend,
                workers=runner_workers,
                limit=spec.limit,
                shard=spec.shard,
                pool=runner_pool,
                cache=self.cache,
                kernel=kernel,
                tracer=self.tracer,
                progress=self.progress,
            )
            report = runner.run()
            result = ExperimentResult(
                spec, campaign=report, cache_hits=report.cache_hits
            )
            if spec.kind in ("ablate", "ablate-refine") and report.complete:
                with maybe_span(self.tracer, "experiment.reduce"):
                    result.frontier = reduce_frontier(report)
            if spec.kind == "ablate-refine" and report.ok:
                prober = _CellProber(
                    backend="process" if runner_pool is not None else "serial",
                    pool=runner_pool,
                    cache=self.cache,
                    kernel=kernel,
                    tracer=self.tracer,
                )
                with maybe_span(self.tracer, "experiment.refine"):
                    result.refined = refine_frontier(
                        result.frontier,
                        tol=spec.tol if spec.tol is not None else DEFAULT_TOL,
                        prober=prober,
                    )
                result.cache_hits += prober.cache_hits
                if self.cache is not None:
                    # Feed the quote row store: every refined row this run
                    # measured becomes a tier-2 answer for the quote
                    # engine (keyed by grid coordinates + tol + seed).
                    from repro.campaign.ablation.rowstore import (
                        store_refined_rows,
                    )

                    store_refined_rows(
                        self.cache,
                        result.refined,
                        seed=dict(spec.matrix.kwargs).get("seed", 0),
                    )
        finally:
            if own_pool is not None:
                own_pool.close()
        self._check_expectations(result)
        return result

    def _check_expectations(self, result: ExperimentResult) -> None:
        produced = {type(r).kind: r.digest for r in result.reports}
        for kind, expected in self.spec.expect:
            actual = produced.get(kind)
            if actual is None:
                raise ExperimentError(
                    f"spec expects a {kind!r} digest but the run produced "
                    f"only {sorted(produced)} (partial coverage? merge the "
                    "shards, then check)"
                )
            if actual != expected:
                raise ExperimentError(
                    f"digest mismatch for {kind!r}: run produced {actual} "
                    f"but the spec expects {expected}"
                )
