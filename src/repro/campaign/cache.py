"""The incremental result cache: skip scenario blocks already verified.

Scenario digests are stable across backends and process layouts, so a
block of scenarios that was executed and verified once — at a given code
version — need not run again: its :class:`~repro.campaign.scenario.
ScenarioResult` list *is* the outcome, byte for byte.  This is the
ROADMAP's incremental-campaign-cache item, and what makes 10^5+-scenario
matrices re-runnable after small grid edits: only the blocks the edit
touched miss.

**Keying.**  A cache entry is content-addressed by

- the **code version** — a digest over every ``repro`` source file, so any
  change to the engine or the protocols invalidates the whole cache (a
  stale hit can never mask a behavior change), and
- the **block descriptor** — :meth:`MatrixBlock.describe`
  (family, schedule, builder qualname, strategy labels, axes, property
  names) plus the block's scenario count.

The descriptor cannot see parameters captured inside builder closures
(see :meth:`ScenarioMatrix.digest`), so the runner only consults the cache
for matrices built by a *registered factory* (``matrix.spec`` set): those
build purely from primitive arguments, every one of which the shipped
factories render into the schedule label or the extra axes — the same
audit contract persistent worker pools rely on.  Keying on the block
rather than the whole spec is deliberate: a refinement probe
(``ablation_cell``) produces the identical block as the full grid's cell,
so a lattice run warms the bisection that follows it.

**Storage.**  One JSON file per block under the cache root, written
atomically (temp file + rename) with *block-local* scenario indices so an
entry is position-independent; the runner rebases to global indices on
load.  Only blocks whose every scenario passed its properties are stored
— the cache holds verified outcomes, a violating block re-runs live each
time so regressions keep reproducing with fresh traces.  A corrupt or
mismatched entry reads as a miss, never an error.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from hashlib import sha256
from pathlib import Path

from repro.campaign.scenario import (
    ScenarioResult,
    result_from_payload,
    result_payload,
)

_CODE_VERSION: str | None = None

#: orphaned ``.tmp-*`` writer files older than this are swept on cache open.
TEMP_SWEEP_AGE_SECONDS = 3600.0


def code_version(refresh: bool = False) -> str:
    """Digest of every ``repro`` source file: the cache's freshness key.

    Memoized per process — the hot path (one key per block) must not
    re-hash the tree.  Any edit anywhere in the package — engine,
    protocols, contracts — changes it, so cached results can never outlive
    the code that produced them.  The memo itself can outlive an edit in a
    long-lived process (a persistent pool, a future campaign service):
    pass ``refresh=True`` — or call :func:`invalidate_code_version` —
    to force a re-hash of the current on-disk sources.
    """
    global _CODE_VERSION
    if refresh:
        _CODE_VERSION = None
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        # sorted() here is load-bearing (and ORD001-guarded): rglob
        # yields filesystem enumeration order, which differs across
        # hosts and checkouts, and the digest below encodes file order.
        paths = sorted(root.rglob("*.py"), key=lambda p: _source_key(root, p))
        _CODE_VERSION = _hash_sources(root, paths)
    return _CODE_VERSION


def _source_key(root: Path, path: Path) -> str:
    """The canonical identity of one source file: posix relative path.

    Explicitly ``as_posix()`` so both the *sort order* and the *hashed
    name* are byte-identical across platforms — ``str(relative)`` would
    hash ``campaign\\cache.py`` on Windows and ``campaign/cache.py`` on
    POSIX, silently forking the code-version key (and with it every
    cache entry) between hosts sharing a cache directory.
    """
    return path.relative_to(root).as_posix()


def _hash_sources(root: Path, paths) -> str:
    """Digest source files by (posix relative name, content) pairs.

    Re-sorts by :func:`_source_key` regardless of input order — callers
    (and tests) may hand files in any order and must get the same
    digest, which is exactly the filesystem-order independence the
    cache's freshness key promises.
    """
    digest = sha256()
    for path in sorted(paths, key=lambda p: _source_key(root, p)):
        digest.update(_source_key(root, path).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def invalidate_code_version() -> None:
    """Drop the process-wide :func:`code_version` memo.

    The next :func:`code_version` call re-hashes the on-disk sources —
    what a long-lived process must do after the tree changes underneath
    it, so a stale freshness key never vouches for new code.
    """
    global _CODE_VERSION
    _CODE_VERSION = None


class ResultCache:
    """A content-addressed store of verified scenario-block results.

    Telemetry: when a tracer is attached (the runner binds its own via
    the ``tracer`` property) the cache counts ``cache.hit``,
    ``cache.miss.absent`` / ``.corrupt`` / ``.violating``,
    ``cache.store`` / ``cache.store.skipped`` and ``cache.sweep.removed``.
    Counters observed before a tracer attaches (the constructor's temp
    sweep) buffer and flush on attachment.  All of it is digest-inert:
    nothing counted here feeds a key, an entry, or a report digest.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._tracer = None
        self._pending_counts: dict[str, float] = {}
        self.sweep_temps()

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        if tracer is not None and self._pending_counts:
            for name, amount in sorted(self._pending_counts.items()):
                tracer.inc(name, amount)
            self._pending_counts = {}

    def _count(self, name: str, amount: float = 1) -> None:
        if self._tracer is not None:
            self._tracer.inc(name, amount)
        elif name.startswith("cache.sweep"):
            # Only the constructor's sweep fires before a tracer can
            # attach, so only sweep counts buffer; anything else observed
            # while untraced (an earlier warm-up run against the same
            # cache object) is deliberately dropped — a tracer must see
            # its own run's history, not its predecessors'.
            self._pending_counts[name] = (
                self._pending_counts.get(name, 0) + amount
            )

    def sweep_temps(
        self, max_age_seconds: float = TEMP_SWEEP_AGE_SECONDS
    ) -> int:
        """Remove orphaned ``.tmp-*`` files left by crashed writers.

        Only temps older than ``max_age_seconds`` go — a younger temp may
        belong to a concurrent campaign mid-write (the atomic-rename
        protocol makes in-flight temps short-lived, so an hour-old one is
        certainly dead).  Returns the number removed; every error is a
        skip, never a failure — sweeping is opportunistic hygiene.
        """
        # Wall time compares file mtimes for hygiene only; it never
        # reaches a digest or report.
        now = time.time()  # lint: disable=DET001
        removed = 0
        try:
            candidates = list(self.root.glob(".tmp-*"))
        except OSError:
            return 0
        for path in candidates:
            try:
                if now - path.stat().st_mtime >= max_age_seconds:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        if removed:
            self._count("cache.sweep.removed", removed)
        return removed

    def block_key(self, block_describe: str, size: int) -> str:
        """The content address of one matrix block's result list."""
        return sha256(
            f"v={code_version()}|n={size}|{block_describe}".encode()
        ).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str, size: int) -> list[ScenarioResult] | None:
        """The cached results (block-local indices), or None on any miss.

        A malformed entry, a key mismatch, a size mismatch, or an entry
        recording a violation all read as misses — the cache only ever
        short-circuits work it can vouch for.  The stored ``"key"`` field
        must equal the requested key: a copied or renamed entry file would
        otherwise be served under an address its contents never earned.
        """
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self._count("cache.miss.absent")
            return None
        except (OSError, ValueError):
            self._count("cache.miss.corrupt")
            return None
        try:
            if data.get("key") != key:
                self._count("cache.miss.corrupt")
                return None
            results = [result_from_payload(r) for r in data["results"]]
        except (ValueError, KeyError, TypeError):
            self._count("cache.miss.corrupt")
            return None
        if len(results) != size:
            self._count("cache.miss.corrupt")
            return None
        if any(result.violations for result in results):
            self._count("cache.miss.violating")
            return None
        self._count("cache.hit")
        return results

    def put(self, key: str, results: list[ScenarioResult]) -> bool:
        """Store one fully-verified block; returns False when ineligible.

        Blocks with violations are never stored (see the module doc).  The
        write is atomic so concurrent campaigns sharing a cache root can
        only ever observe complete entries.
        """
        if any(result.violations for result in results):
            self._count("cache.store.skipped")
            return False
        payload = json.dumps(
            {"key": key, "results": [result_payload(r) for r in results]},
            indent=None,
            separators=(",", ":"),
        )
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._count("cache.store.skipped")
            return False
        self._count("cache.store")
        return True

    # ------------------------------------------------------------------
    # generic JSON entries (refined-row store, future derived artifacts)
    # ------------------------------------------------------------------
    def get_entry(self, key: str) -> "dict | None":
        """A generic JSON payload stored under ``key``, or None on a miss.

        Same miss discipline as :meth:`get`: malformed entries and
        key mismatches read as misses, never errors — a derived-artifact
        store can only ever short-circuit work it can vouch for.
        """
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self._count("cache.miss.absent")
            return None
        except (OSError, ValueError):
            self._count("cache.miss.corrupt")
            return None
        if not isinstance(data, dict) or data.get("key") != key:
            self._count("cache.miss.corrupt")
            return None
        payload = data.get("payload")
        if not isinstance(payload, dict):
            self._count("cache.miss.corrupt")
            return None
        self._count("cache.hit")
        return payload

    def put_entry(self, key: str, payload: dict) -> bool:
        """Store a generic JSON payload under ``key`` (atomic write)."""
        text = json.dumps(
            {"key": key, "payload": payload},
            indent=None,
            separators=(",", ":"),
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._count("cache.store.skipped")
            return False
        self._count("cache.store")
        return True


_SHARED_CACHES: dict[Path, ResultCache] = {}


def shared_cache(root: str | os.PathLike) -> ResultCache:
    """The process-wide :class:`ResultCache` for ``root`` (memoized).

    Every in-process consumer of one cache directory — a CLI run, the
    quote engine's tier-2/3 ladder, refinement probes — must share one
    warm object, both so cheap re-lookups stay in the same open store and
    so a tracer attached by one consumer sees the whole run's counters.
    Keyed on the resolved path, so ``.cache`` and ``./cache`` coalesce.
    """
    resolved = Path(root).resolve()
    cache = _SHARED_CACHES.get(resolved)
    if cache is None:
        cache = ResultCache(resolved)
        _SHARED_CACHES[resolved] = cache
    return cache
