"""The protocol-family registry for campaigns.

Each ``add_*`` helper contributes one family's blocks to a
:class:`repro.campaign.matrix.ScenarioMatrix`: the protocol builder(s),
the premium/timeout schedules worth sweeping, the per-party adversary
strategy space, and the paper properties to assert on every outcome.
:func:`default_matrix` assembles the standard all-families campaign — the
matrix the CLI, the benchmarks, and the smoke tests run — and registers
itself as the ``default`` worker-pool factory so persistent pools can
rebuild it on the far side of a fork.

The swept axes (beyond adversary subset × strategy × deviation round):

- **two-party** — a premium-growth *grid* (``premium_a`` × ``premium_b``,
  not just the paper's two example points) and stretched ``k·Δ`` timeout
  schedules (every deadline multiplied by ``k``, modelling slower chains),
- **multi-party** — the paper's Figure-3 graph plus ``ring:N`` and
  ``complete:N`` topologies up to 8 parties,
- **broker** — premium schedules,
- **auction** / **sealed-auction** — every auctioneer strategy × bidder
  halts, open-bid and commit–reveal forms, hedged and unhedged,
- **bootstrap** — halts at every rung of the two-stage ladder.

Imports from ``repro.checker`` and the protocol cores are deliberately
function-local: the checker is a *client* of the campaign engine, so the
campaign package must not depend on it at import time.
"""

from __future__ import annotations

from typing import Iterable

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.pool import MatrixSpec, register_matrix_factory

FAMILY_NAMES = (
    "two-party",
    "multi-party",
    "broker",
    "auction",
    "sealed-auction",
    "bootstrap",
)

TWO_PARTY_METHODS = ("deposit_premium", "escrow_principal", "redeem")

#: the premium-growth grid: every (p_a, p_b) pair swept by `add_two_party`.
TWO_PARTY_PREMIUM_GRID = tuple(
    (premium_a, premium_b) for premium_a in (1, 2, 3) for premium_b in (1, 2)
)

#: deadline stretch factors (k·Δ schedules) swept by `add_two_party`.
TWO_PARTY_STRETCH_FACTORS = (2, 3)


def add_two_party(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Hedged two-party swap (§5.2): halts, skips, lags; premium grid and
    stretched k·Δ timeout schedules."""
    from repro.checker import properties as props
    from repro.checker.strategies import full_strategy_space
    from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap

    schedules = [
        (f"p{premium_a}:{premium_b}", HedgedTwoPartySpec(
            premium_a=premium_a, premium_b=premium_b))
        for premium_a, premium_b in TWO_PARTY_PREMIUM_GRID
    ]
    schedules += [
        (f"p2:1/k{k}", HedgedTwoPartySpec().stretched(k))
        for k in TWO_PARTY_STRETCH_FACTORS
    ]
    for name, spec in schedules:
        instance = HedgedTwoPartySwap(spec).build()
        space = full_strategy_space(
            instance.horizon, TWO_PARTY_METHODS, max_skip_subset=2, max_lag=2
        )
        matrix.add_block(
            family="two-party",
            schedule=name,
            builder=lambda spec=spec: HedgedTwoPartySwap(spec).build(),
            properties=(props.no_stuck_escrow, props.two_party_hedged),
            strategies={party: space for party in instance.actors},
            max_adversaries=2 if max_adversaries is None else max_adversaries,
        )


def add_multi_party(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Hedged multi-party swap (§7.1): halts over graph/premium mixes, from
    the paper's Figure 3 up to 8-party rings and 8-party cliques (the
    memoized Equation-1 evaluation in ``repro.core.premiums`` makes dense
    sizing affordable, and the member-subset worst-case funding enumeration
    unlocks ``complete:7``/``complete:8``; the densest cliques run on
    progressively coarsened halt grids to keep matrix growth
    proportionate)."""
    from repro.checker import properties as props
    from repro.checker.strategies import halt_strategies
    from repro.core.hedged_multi_party import HedgedMultiPartySwap
    from repro.graph.digraph import complete_graph, figure3_graph, ring_graph

    schedules = (
        ("figure3/p1", figure3_graph, 1, 1),
        ("ring3/p2", lambda: ring_graph(3), 2, 1),
        ("ring5/p1", lambda: ring_graph(5), 1, 1),
        ("ring8/p1", lambda: ring_graph(8), 1, 1),
        ("complete3/p1", lambda: complete_graph(3), 1, 1),
        ("complete4/p1", lambda: complete_graph(4), 1, 1),
        ("complete5/p2", lambda: complete_graph(5), 2, 1),
        ("complete6/p1", lambda: complete_graph(6), 1, 2),
        ("complete7/p1", lambda: complete_graph(7), 1, 5),
        ("complete8/p1", lambda: complete_graph(8), 1, 7),
    )
    for name, graph_fn, premium, halt_step in schedules:
        instance = HedgedMultiPartySwap(graph=graph_fn(), premium=premium).build()
        matrix.add_block(
            family="multi-party",
            schedule=name,
            builder=lambda g=graph_fn, p=premium: HedgedMultiPartySwap(
                graph=g(), premium=p
            ).build(),
            properties=(props.no_stuck_escrow, props.multi_party_lemmas),
            strategies={
                party: halt_strategies(instance.horizon, step=halt_step)
                for party in instance.actors
            },
            max_adversaries=1 if max_adversaries is None else max_adversaries,
        )


def add_broker(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Hedged broker deal (§8.2): halts over two premium schedules."""
    from repro.checker import properties as props
    from repro.checker.strategies import halt_strategies
    from repro.core.hedged_broker import HedgedBrokerDeal

    for premium in (1, 2):
        instance = HedgedBrokerDeal(premium=premium).build()
        matrix.add_block(
            family="broker",
            schedule=f"p{premium}",
            builder=lambda p=premium: HedgedBrokerDeal(premium=p).build(),
            properties=(props.no_stuck_escrow, props.broker_bounds),
            strategies={
                party: halt_strategies(instance.horizon) for party in instance.actors
            },
            max_adversaries=1 if max_adversaries is None else max_adversaries,
        )


def _add_auction_blocks(
    matrix: ScenarioMatrix,
    family: str,
    auction_cls,
    max_adversaries: int | None,
) -> None:
    """Shared §9 sweep: every auctioneer strategy × bidder halts, plus the
    unhedged base form, for either auction variant."""
    from repro.checker import properties as props
    from repro.checker.strategies import halt_strategies
    from repro.core.hedged_auction import AuctioneerStrategy, AuctionSpec

    hedged = AuctionSpec()
    base = AuctionSpec(premium=0)
    for spec, premium_name in ((hedged, "p1"), (base, "p0")):
        for strategy in AuctioneerStrategy:
            if premium_name == "p0" and strategy is not AuctioneerStrategy.HONEST:
                continue  # base form: deviant declarations only swept hedged
            instance = auction_cls(spec=spec, strategy=strategy).build()
            honest = strategy is AuctioneerStrategy.HONEST
            halting = (
                instance.actors
                if honest
                else [p for p in instance.actors if p != spec.auctioneer]
            )
            matrix.add_block(
                family=family,
                schedule=f"{premium_name}/{strategy.value}",
                builder=lambda spec=spec, strategy=strategy, cls=auction_cls: cls(
                    spec=spec, strategy=strategy
                ).build(),
                properties=(props.no_stuck_escrow, props.auction_lemmas),
                strategies={
                    party: halt_strategies(instance.horizon) for party in halting
                },
                max_adversaries=1 if max_adversaries is None else max_adversaries,
                extra_adversaries=() if honest else (spec.auctioneer,),
            )


def add_auction(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Open-bid ticket auction (§9): every auctioneer strategy × bidder
    halts, plus the unhedged base form."""
    from repro.core.hedged_auction import HedgedAuction

    _add_auction_blocks(matrix, "auction", HedgedAuction, max_adversaries)


def add_sealed_auction(
    matrix: ScenarioMatrix, max_adversaries: int | None = None
) -> None:
    """Sealed-bid (commit–reveal) auction — §9's footnote-8 extension, same
    lemma properties, one extra Δ in the schedule for the reveal phase."""
    from repro.core.hedged_auction import SealedBidAuction

    _add_auction_blocks(matrix, "sealed-auction", SealedBidAuction, max_adversaries)


def add_bootstrap(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Bootstrapped swap (§6): halts at every round of a two-stage ladder."""
    from repro.checker import properties as props
    from repro.core.bootstrap import BootstrappedSwap, BootstrapSpec
    from repro.checker.strategies import halt_strategies

    spec = BootstrapSpec(amount_a=10_000, amount_b=10_000, rate=10, rounds=2)
    instance = BootstrappedSwap(spec).build()
    matrix.add_block(
        family="bootstrap",
        schedule="10k/P10/r2",
        builder=lambda spec=spec: BootstrappedSwap(spec).build(),
        properties=(props.no_stuck_escrow, props.bootstrap_hedged),
        strategies={
            party: halt_strategies(instance.horizon) for party in instance.actors
        },
        max_adversaries=1 if max_adversaries is None else max_adversaries,
    )


_FAMILY_ADDERS = {
    "two-party": add_two_party,
    "multi-party": add_multi_party,
    "broker": add_broker,
    "auction": add_auction,
    "sealed-auction": add_sealed_auction,
    "bootstrap": add_bootstrap,
}


def default_matrix_spec(
    families: Iterable[str] | None = None,
    seed: int = 0,
    max_adversaries: int | None = None,
) -> MatrixSpec:
    """The (validated, normalized) rebuild recipe of :func:`default_matrix`
    — computable without expanding a single block, which is what lets
    experiment specs be emitted cheaply.  :func:`default_matrix` builds
    from this same recipe, so ``default_matrix(...).spec`` and
    ``default_matrix_spec(...)`` are always equal.
    """
    chosen = (
        tuple(dict.fromkeys(families)) if families is not None else FAMILY_NAMES
    )
    unknown = set(chosen) - set(_FAMILY_ADDERS)
    if unknown:
        raise ValueError(
            f"unknown families {sorted(unknown)}; known: {sorted(_FAMILY_ADDERS)}"
        )
    return MatrixSpec(
        factory="default",
        kwargs=(
            ("families", chosen),
            ("max_adversaries", max_adversaries),
            ("seed", seed),
        ),
    )


def default_matrix(
    families: Iterable[str] | None = None,
    seed: int = 0,
    max_adversaries: int | None = None,
) -> ScenarioMatrix:
    """The standard adversarial campaign over the requested families.

    The returned matrix carries a ``spec`` (its rebuild recipe), so it can
    be dispatched through a persistent :class:`repro.campaign.pool.WorkerPool`.
    """
    spec = default_matrix_spec(
        families=families, seed=seed, max_adversaries=max_adversaries
    )
    matrix = ScenarioMatrix(seed=seed)
    for name in dict(spec.kwargs)["families"]:
        _FAMILY_ADDERS[name](matrix, max_adversaries)
    matrix.spec = spec
    return matrix


register_matrix_factory("default", default_matrix)
