"""The protocol-family registry for campaigns.

Each ``add_*`` helper contributes one family's blocks to a
:class:`repro.campaign.matrix.ScenarioMatrix`: the protocol builder(s),
the premium schedules worth sweeping, the per-party adversary strategy
space, and the paper properties to assert on every outcome.
:func:`default_matrix` assembles the standard all-families campaign — the
matrix the CLI, the benchmarks, and the smoke tests run.

Imports from ``repro.checker`` and the protocol cores are deliberately
function-local: the checker is a *client* of the campaign engine, so the
campaign package must not depend on it at import time.
"""

from __future__ import annotations

from typing import Iterable

from repro.campaign.matrix import ScenarioMatrix

FAMILY_NAMES = ("two-party", "multi-party", "broker", "auction", "bootstrap")

TWO_PARTY_METHODS = ("deposit_premium", "escrow_principal", "redeem")


def add_two_party(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Hedged two-party swap (§5.2): halts, skips, lags; premium schedules."""
    from repro.checker import properties as props
    from repro.checker.strategies import full_strategy_space
    from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap

    schedules = (
        ("p2:1", HedgedTwoPartySpec()),
        ("p3:2", HedgedTwoPartySpec(premium_a=3, premium_b=2)),
    )
    for name, spec in schedules:
        instance = HedgedTwoPartySwap(spec).build()
        space = full_strategy_space(
            instance.horizon, TWO_PARTY_METHODS, max_skip_subset=2, max_lag=2
        )
        matrix.add_block(
            family="two-party",
            schedule=name,
            builder=lambda spec=spec: HedgedTwoPartySwap(spec).build(),
            properties=(props.no_stuck_escrow, props.two_party_hedged),
            strategies={party: space for party in instance.actors},
            max_adversaries=2 if max_adversaries is None else max_adversaries,
        )


def add_multi_party(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Hedged multi-party swap (§7.1): halts over three graph/premium mixes."""
    from repro.checker import properties as props
    from repro.checker.strategies import halt_strategies
    from repro.core.hedged_multi_party import HedgedMultiPartySwap
    from repro.graph.digraph import complete_graph, figure3_graph, ring_graph

    schedules = (
        ("figure3/p1", figure3_graph, 1),
        ("ring3/p2", lambda: ring_graph(3), 2),
        ("complete3/p1", lambda: complete_graph(3), 1),
    )
    for name, graph_fn, premium in schedules:
        instance = HedgedMultiPartySwap(graph=graph_fn(), premium=premium).build()
        matrix.add_block(
            family="multi-party",
            schedule=name,
            builder=lambda g=graph_fn, p=premium: HedgedMultiPartySwap(
                graph=g(), premium=p
            ).build(),
            properties=(props.no_stuck_escrow, props.multi_party_lemmas),
            strategies={
                party: halt_strategies(instance.horizon) for party in instance.actors
            },
            max_adversaries=1 if max_adversaries is None else max_adversaries,
        )


def add_broker(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Hedged broker deal (§8.2): halts over two premium schedules."""
    from repro.checker import properties as props
    from repro.checker.strategies import halt_strategies
    from repro.core.hedged_broker import HedgedBrokerDeal

    for premium in (1, 2):
        instance = HedgedBrokerDeal(premium=premium).build()
        matrix.add_block(
            family="broker",
            schedule=f"p{premium}",
            builder=lambda p=premium: HedgedBrokerDeal(premium=p).build(),
            properties=(props.no_stuck_escrow, props.broker_bounds),
            strategies={
                party: halt_strategies(instance.horizon) for party in instance.actors
            },
            max_adversaries=1 if max_adversaries is None else max_adversaries,
        )


def add_auction(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Ticket auction (§9): every auctioneer strategy × bidder halts, plus
    the unhedged base form."""
    from repro.checker import properties as props
    from repro.checker.strategies import halt_strategies
    from repro.core.hedged_auction import AuctioneerStrategy, AuctionSpec, HedgedAuction

    hedged = AuctionSpec()
    base = AuctionSpec(premium=0)
    for spec, premium_name in ((hedged, "p1"), (base, "p0")):
        for strategy in AuctioneerStrategy:
            if premium_name == "p0" and strategy is not AuctioneerStrategy.HONEST:
                continue  # base form: deviant declarations only swept hedged
            instance = HedgedAuction(spec=spec, strategy=strategy).build()
            honest = strategy is AuctioneerStrategy.HONEST
            halting = (
                instance.actors
                if honest
                else [p for p in instance.actors if p != spec.auctioneer]
            )
            matrix.add_block(
                family="auction",
                schedule=f"{premium_name}/{strategy.value}",
                builder=lambda spec=spec, strategy=strategy: HedgedAuction(
                    spec=spec, strategy=strategy
                ).build(),
                properties=(props.no_stuck_escrow, props.auction_lemmas),
                strategies={
                    party: halt_strategies(instance.horizon) for party in halting
                },
                max_adversaries=1 if max_adversaries is None else max_adversaries,
                extra_adversaries=() if honest else (spec.auctioneer,),
            )


def add_bootstrap(matrix: ScenarioMatrix, max_adversaries: int | None = None) -> None:
    """Bootstrapped swap (§6): halts at every round of a two-stage ladder."""
    from repro.checker import properties as props
    from repro.core.bootstrap import BootstrappedSwap, BootstrapSpec
    from repro.checker.strategies import halt_strategies

    spec = BootstrapSpec(amount_a=10_000, amount_b=10_000, rate=10, rounds=2)
    instance = BootstrappedSwap(spec).build()
    matrix.add_block(
        family="bootstrap",
        schedule="10k/P10/r2",
        builder=lambda spec=spec: BootstrappedSwap(spec).build(),
        properties=(props.no_stuck_escrow, props.bootstrap_hedged),
        strategies={
            party: halt_strategies(instance.horizon) for party in instance.actors
        },
        max_adversaries=1 if max_adversaries is None else max_adversaries,
    )


_FAMILY_ADDERS = {
    "two-party": add_two_party,
    "multi-party": add_multi_party,
    "broker": add_broker,
    "auction": add_auction,
    "bootstrap": add_bootstrap,
}


def default_matrix(
    families: Iterable[str] | None = None,
    seed: int = 0,
    max_adversaries: int | None = None,
) -> ScenarioMatrix:
    """The standard adversarial campaign over the requested families."""
    chosen = (
        tuple(dict.fromkeys(families)) if families is not None else FAMILY_NAMES
    )
    unknown = set(chosen) - set(_FAMILY_ADDERS)
    if unknown:
        raise ValueError(
            f"unknown families {sorted(unknown)}; known: {sorted(_FAMILY_ADDERS)}"
        )
    matrix = ScenarioMatrix(seed=seed)
    for name in chosen:
        _FAMILY_ADDERS[name](matrix, max_adversaries)
    return matrix
