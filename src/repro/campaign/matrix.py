"""Scenario matrices: deterministic expansion of campaign axes.

A :class:`ScenarioMatrix` is a list of *blocks*.  Each block fixes the
protocol-level axes — family, premium/timeout schedule, builder, properties
— and carries a per-party strategy space; expansion enumerates every
adversary subset (up to ``max_adversaries``) crossed with every strategy
assignment, in a deterministic order, yielding :class:`Scenario` specs with
stable global indices and labels.

The matrix also knows its own identity: :meth:`ScenarioMatrix.digest`
hashes the seed and every block descriptor (family, schedule, strategy
labels, property names), so a campaign report can state exactly *which*
matrix produced it.

Selection semantics (:meth:`ScenarioMatrix.selection`): ``limit=N``
deterministically subsamples **exactly** ``min(N, total)`` scenarios,
*stratified by block*: whenever ``N`` is at least the number of blocks,
every block contributes at least one scenario, with the remaining picks
apportioned over each block's remaining capacity — proportional to
``size - 1``, by largest-remainder rounding — and spread evenly inside
each block.  An even spread over the raw index range
— the previous policy — could skip an entire small family whenever ``N``
fell below ``total / family size``; stratification makes a limited run a
guaranteed cross-family smoke sample.  Below the block count the picks
spread evenly across *blocks* (one scenario from each of ``N`` evenly
spaced blocks), which is still the best stratification ``N`` scenarios can
buy.  ``shard=(i, n)`` then takes the ``i``-th of ``n`` contiguous
index-range slices of the (possibly limited) selection; the ``n`` shards
partition the selection exactly, so per-scenario digests from all shards
recombine — via :func:`repro.campaign.runner.merge_reports` — into the
unsharded run digest, byte for byte.  The stratified policy is recorded in
the selection label (``limit=N:stratified``) and hence in the
selection-honest run-digest preamble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from itertools import combinations, product
from typing import Iterable, Iterator

from repro.campaign.scenario import (
    Builder,
    LabelledStrategy,
    MetricsFn,
    Property,
    Scenario,
)


def enumerate_profiles(
    strategies: dict[str, list[LabelledStrategy]],
    max_adversaries: int = 1,
    include_compliant: bool = True,
    min_adversaries: int = 1,
) -> Iterator[dict[str, LabelledStrategy]]:
    """All adversary profiles in deterministic order.

    The all-compliant profile (if included) comes first, then subsets by
    ascending size — from ``min_adversaries`` up to ``max_adversaries`` —
    parties sorted, strategy assignments in product order — the ordering
    contract ``ModelChecker.profiles`` has always had.  A block that
    models only *joint* deviations (e.g. a two-party coalition arm) sets
    ``min_adversaries == max_adversaries == 2`` so the spurious
    single-member profiles never expand.
    """
    if include_compliant:
        yield {}
    parties = sorted(strategies)
    for size in range(max(1, min_adversaries), max_adversaries + 1):
        for subset in combinations(parties, size):
            spaces = [strategies[p] for p in subset]
            for combo in product(*spaces):
                yield dict(zip(subset, combo))


def profile_label(profile: dict[str, LabelledStrategy]) -> str:
    """Human-readable profile name (stable across runs)."""
    return (
        "; ".join(f"{p}:{s.label}" for p, s in sorted(profile.items()))
        or "all-compliant"
    )


def validate_shard(shard: tuple[int, int]) -> tuple[int, int]:
    """Check a 1-based ``(i, n)`` shard coordinate; returns it unchanged."""
    i, n = shard
    if n < 1:
        raise ValueError(f"shard count must be >= 1, got {n}")
    if not 1 <= i <= n:
        raise ValueError(f"shard index must be in 1..{n}, got {i}")
    return i, n


def _strategy_kind(label: str) -> str:
    """"halt@3" → "halt", "skip:redeem" → "skip", "lag+2" → "lag"."""
    for sep in ("@", ":", "+"):
        label = label.split(sep)[0]
    return label


def _strategy_axes(profile: dict[str, LabelledStrategy]) -> list[tuple[str, str]]:
    """Strategy-kind and deviation-round coordinates for aggregation."""
    if not profile:
        return [("strategy", "compliant"), ("round", "-")]
    if len(profile) > 1:
        kinds = sorted({_strategy_kind(s.label) for s in profile.values()})
        return [("strategy", "&".join(kinds)), ("round", "multi")]
    (strategy,) = profile.values()
    rnd = strategy.label.split("@", 1)[1] if "@" in strategy.label else "-"
    return [("strategy", _strategy_kind(strategy.label)), ("round", rnd)]


@dataclass(frozen=True)
class MatrixBlock:
    """One protocol-level cell of the matrix (family × schedule)."""

    family: str
    schedule: str
    builder: Builder = field(repr=False)
    properties: tuple[Property, ...] = field(repr=False)
    strategies: tuple[tuple[str, tuple[LabelledStrategy, ...]], ...] = field(repr=False)
    max_adversaries: int = 1
    #: smallest adversary subset expanded; 2 with ``max_adversaries=2``
    #: models joint-only deviations (coalition arms).
    min_adversaries: int = 1
    include_compliant: bool = True
    #: builder-level deviants (counted adversarial in every scenario).
    extra_adversaries: tuple[str, ...] = ()
    #: extra (axis, value) coordinates stamped on every scenario of the
    #: block, e.g. the ablation grid's premium fraction and shock size.
    extra_axes: tuple[tuple[str, str], ...] = ()
    #: optional per-scenario metric extractor (see ``repro.campaign.scenario``).
    metrics: MetricsFn | None = field(default=None, repr=False)

    def strategy_map(self) -> dict[str, list[LabelledStrategy]]:
        return {party: list(space) for party, space in self.strategies}

    def size(self) -> int:
        count = 1 if self.include_compliant else 0
        spaces = self.strategy_map()
        parties = sorted(spaces)
        for size in range(max(1, self.min_adversaries), self.max_adversaries + 1):
            for subset in combinations(parties, size):
                block = 1
                for p in subset:
                    block *= len(spaces[p])
                count += block
        return count

    def describe(self) -> str:
        parts = [
            self.family,
            self.schedule,
            # The builder's qualified name weakly identifies the protocol
            # even when family/schedule are blank (ModelChecker blocks);
            # closures hash as their defining scope, not their captures.
            getattr(self.builder, "__qualname__", type(self.builder).__name__),
            str(self.max_adversaries),
            str(self.min_adversaries),
            str(self.include_compliant),
            ",".join(self.extra_adversaries),
            ",".join(getattr(p, "__name__", repr(p)) for p in self.properties),
            ",".join(f"{axis}={value}" for axis, value in self.extra_axes),
            getattr(self.metrics, "__qualname__", type(self.metrics).__name__)
            if self.metrics is not None
            else "",
        ]
        for party, space in self.strategies:
            parts.append(party + "=" + ",".join(s.label for s in space))
        return "|".join(parts)


class ScenarioMatrix:
    """Axis expansion: (family × schedule × adversaries × strategy)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.blocks: list[MatrixBlock] = []
        #: picklable rebuild recipe (:class:`repro.campaign.pool.MatrixSpec`)
        #: set by registered factories like ``default_matrix``; lets a
        #: persistent :class:`~repro.campaign.pool.WorkerPool` rebuild the
        #: matrix worker-side instead of inheriting it through fork.
        self.spec = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_block(
        self,
        family: str,
        schedule: str,
        builder: Builder,
        properties: Iterable[Property],
        strategies: dict[str, Iterable[LabelledStrategy]],
        max_adversaries: int = 1,
        min_adversaries: int = 1,
        include_compliant: bool = True,
        extra_adversaries: Iterable[str] = (),
        extra_axes: Iterable[tuple[str, str]] = (),
        metrics: MetricsFn | None = None,
    ) -> "ScenarioMatrix":
        if not 1 <= min_adversaries <= max(1, max_adversaries):
            raise ValueError(
                f"min_adversaries must be in 1..max_adversaries, got "
                f"{min_adversaries} (max {max_adversaries})"
            )
        self.spec = None  # any rebuild recipe no longer describes this matrix
        self.blocks.append(
            MatrixBlock(
                family=family,
                schedule=schedule,
                builder=builder,
                properties=tuple(properties),
                strategies=tuple(
                    (party, tuple(space)) for party, space in sorted(strategies.items())
                ),
                max_adversaries=max_adversaries,
                min_adversaries=min_adversaries,
                include_compliant=include_compliant,
                extra_adversaries=tuple(extra_adversaries),
                extra_axes=tuple(extra_axes),
                metrics=metrics,
            )
        )
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(block.size() for block in self.blocks)

    def families(self) -> list[str]:
        seen: dict[str, None] = {}
        for block in self.blocks:
            seen.setdefault(block.family, None)
        return list(seen)

    def block_sizes(self) -> dict[str, int]:
        """Scenario count per family (for --list style reporting)."""
        sizes: dict[str, int] = {}
        for block in self.blocks:
            sizes[block.family] = sizes.get(block.family, 0) + block.size()
        return sizes

    def block_ranges(self) -> list[tuple[int, int, MatrixBlock]]:
        """``(start index, size, block)`` per block, in expansion order.

        The global-index geometry of the matrix — what the incremental
        result cache partitions a selection against.
        """
        ranges = []
        start = 0
        for block in self.blocks:
            size = block.size()
            ranges.append((start, size, block))
            start += size
        return ranges

    def digest(self) -> str:
        """*Structural* identity: seed + every block descriptor.

        Covers the axes, strategy labels, property names, and builder
        qualnames — not parameters captured inside builder closures, which
        no hash of the matrix can see.  Two matrices differing only in a
        closure-captured spec share a structural digest; their *run*
        digests still differ, because per-scenario digests hash the actual
        outcomes (final ledgers, premium flows).  Provenance claims should
        therefore cite the run digest; this one names the campaign shape.
        """
        h = sha256(f"seed={self.seed}".encode())
        for block in self.blocks:
            h.update(b"\n")
            h.update(block.describe().encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def _stratified_counts(self, sizes: list[int], count: int) -> list[int]:
        """Apportion ``count`` picks over blocks: one guaranteed pick per
        block, the rest spread over each block's *remaining capacity*
        (``size - 1``, the scenarios above the guaranteed pick) by
        largest-remainder rounding.

        Requires ``len(sizes) <= count < sum(sizes)``.  Deterministic:
        remainders tie-break on block index.
        """
        blocks = len(sizes)
        pool = sum(sizes) - blocks  # distributable slack above the floors
        counts = [1] * blocks
        remaining = count - blocks
        if remaining and pool:
            shares = [remaining * (size - 1) for size in sizes]
            extras = [share // pool for share in shares]
            leftover = remaining - sum(extras)
            order = sorted(range(blocks), key=lambda j: (-(shares[j] % pool), j))
            while leftover:
                for j in order:
                    if not leftover:
                        break
                    if counts[j] + extras[j] < sizes[j]:
                        extras[j] += 1
                        leftover -= 1
            counts = [base + extra for base, extra in zip(counts, extras)]
        assert sum(counts) == count, "stratified apportionment lost picks"
        return counts

    def selection(
        self,
        limit: int | None = None,
        shard: tuple[int, int] | None = None,
    ) -> list[int]:
        """The global scenario indices a ``(limit, shard)`` run executes.

        ``limit=N`` picks exactly ``min(N, total)`` indices, stratified by
        block: with ``N`` at or above the block count every block yields at
        least one scenario (remaining picks apportioned over the blocks'
        remaining capacity, spread evenly inside each block); below the
        block count one scenario is taken from each of ``N`` evenly spaced
        blocks.  Either
        way the picks are strictly increasing global indices and the count
        is exact.  ``shard=(i, n)`` (1-based) then takes the *i*-th of *n*
        contiguous slices; the slices partition the selection exactly, each
        within one scenario of ``count / n`` in length (some shards are
        empty when ``n`` exceeds the selection size).
        """
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        total = len(self)
        count = total if limit is None else min(limit, total)
        if count == total:
            indices = list(range(total))
        else:
            sizes = [block.size() for block in self.blocks]
            offsets = []
            offset = 0
            for size in sizes:
                offsets.append(offset)
                offset += size
            indices = []
            if count >= len(sizes):
                per_block = self._stratified_counts(sizes, count)
                for offset, size, picks in zip(offsets, sizes, per_block):
                    # (i * size) // picks is strictly increasing for
                    # picks <= size, so the block contributes exactly
                    # ``picks`` distinct local indices.
                    indices.extend(
                        offset + (i * size) // picks for i in range(picks)
                    )
            else:
                # Fewer picks than blocks: spread over the *blocks*, taking
                # each chosen block's first scenario.
                chosen = [(i * len(sizes)) // count for i in range(count)]
                indices = [offsets[j] for j in chosen]
            assert len(set(indices)) == count, "subsampler collapsed picks"
            assert indices == sorted(indices), "subsampler disordered picks"
        if shard is not None:
            i, n = validate_shard(shard)
            lo = ((i - 1) * len(indices)) // n
            hi = (i * len(indices)) // n
            indices = indices[lo:hi]
        return indices

    def scenarios(
        self,
        limit: int | None = None,
        shard: tuple[int, int] | None = None,
        indices: Iterable[int] | None = None,
    ) -> Iterator[Scenario]:
        """Expand the matrix; ``limit``/``shard`` select per :meth:`selection`.

        ``indices`` names an explicit global-index subset instead (the
        runner's cache-miss path); it is mutually exclusive with
        ``limit``/``shard``.  Every yielded :class:`Scenario` keeps its
        *global* matrix index, so sharded results interleave back into
        full-matrix order.
        """
        total = len(self)
        selected: set[int] | None = None
        if indices is not None:
            if limit is not None or shard is not None:
                raise ValueError("indices= is exclusive with limit=/shard=")
            chosen = set(indices)
            if len(chosen) != total:
                selected = chosen
        elif limit is not None or shard is not None:
            chosen = self.selection(limit=limit, shard=shard)
            if len(chosen) != total:
                selected = set(chosen)
        index = 0
        for block in self.blocks:
            label_prefix = (
                f"{block.family}/{block.schedule}/" if block.family else ""
            )
            base_axes = [("family", block.family), ("schedule", block.schedule)]
            base_axes += list(block.extra_axes)
            for profile in enumerate_profiles(
                block.strategy_map(),
                block.max_adversaries,
                block.include_compliant,
                block.min_adversaries,
            ):
                if selected is not None and index not in selected:
                    index += 1
                    continue
                adversaries = tuple(
                    sorted(set(profile) | set(block.extra_adversaries))
                )
                strategy_axes = _strategy_axes(profile)
                if not profile and block.extra_adversaries:
                    # The deviation is baked into the builder (e.g. a
                    # cheating auctioneer): not a compliant scenario.
                    strategy_axes = [("strategy", "builder-deviant"), ("round", "-")]
                yield Scenario(
                    index=index,
                    label=label_prefix + profile_label(profile),
                    builder=block.builder,
                    properties=block.properties,
                    profile=tuple(sorted(profile.items())),
                    adversaries=adversaries,
                    axes=tuple(
                        base_axes
                        + strategy_axes
                        + [("adversaries", ",".join(adversaries) or "none")]
                    ),
                    metrics_fn=block.metrics,
                )
                index += 1
        # size() mirrors enumerate_profiles' combinatorics; keep them honest.
        assert index == total, f"matrix size {total} != enumerated {index}"
