"""Batched adversarial scenario campaigns.

The campaign engine is the scale substrate the ROADMAP asks for: it turns
the paper's "a hedged compliant party is compensated at *every* deviation
point" claim into something executable at thousands-of-scenarios scale.

- :mod:`repro.campaign.scenario` — one scenario = one full deterministic
  simulation (builder + adversary profile + properties) condensed into a
  picklable :class:`ScenarioResult` with a stable content digest,
- :mod:`repro.campaign.matrix` — :class:`ScenarioMatrix` expands axes
  (protocol family × premium/timeout schedule × adversary subset × named
  strategy × deviation round) into scenario specs in a deterministic order,
- :mod:`repro.campaign.runner` — :class:`CampaignRunner` executes a matrix
  through a pluggable serial or ``multiprocessing`` backend and aggregates
  per-axis violation counts, payoff distributions, throughput, and a
  reproducible run digest,
- :mod:`repro.campaign.families` — the registry of protocol families
  (two-party, multi-party, broker, auction, bootstrap) with their default
  adversary spaces and premium schedules; :func:`default_matrix` builds the
  standard all-families campaign.

``repro.checker.ModelChecker`` is a thin client of this package: profile
enumeration, execution, and property evaluation all live here.
"""

from repro.campaign.matrix import ScenarioMatrix, enumerate_profiles
from repro.campaign.runner import CampaignReport, CampaignRunner, ScenarioViolation
from repro.campaign.scenario import Scenario, ScenarioResult, run_scenario
from repro.campaign.families import FAMILY_NAMES, default_matrix

__all__ = [
    "CampaignReport",
    "CampaignRunner",
    "FAMILY_NAMES",
    "Scenario",
    "ScenarioMatrix",
    "ScenarioResult",
    "ScenarioViolation",
    "default_matrix",
    "enumerate_profiles",
    "run_scenario",
]
