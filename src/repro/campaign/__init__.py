"""Batched adversarial scenario campaigns.

The campaign engine is the scale substrate the ROADMAP asks for: it turns
the paper's "a hedged compliant party is compensated at *every* deviation
point" claim into something executable at thousands-of-scenarios scale.

- :mod:`repro.campaign.scenario` — one scenario = one full deterministic
  simulation (builder + adversary profile + properties) condensed into a
  picklable :class:`ScenarioResult` with a stable content digest,
- :mod:`repro.campaign.matrix` — :class:`ScenarioMatrix` expands axes
  (protocol family × premium/timeout schedule × adversary subset × named
  strategy × deviation round) into scenario specs in a deterministic order,
- :mod:`repro.campaign.runner` — :class:`CampaignRunner` executes a matrix
  (or one ``shard=(i, n)`` slice of it) through a pluggable serial or
  ``multiprocessing`` backend and aggregates per-axis violation counts,
  payoff distributions, throughput, and a reproducible run digest whose
  preamble records the effective selection; :func:`merge_reports`
  recombines shard reports into the byte-identical unsharded digest,
- :mod:`repro.campaign.pool` — :class:`WorkerPool`, a persistent fork pool
  shared across runs, fed by picklable :class:`MatrixSpec` rebuild recipes,
- :mod:`repro.campaign.families` — the registry of protocol families
  (two-party, multi-party, broker, auction, sealed-auction, bootstrap)
  with their default adversary spaces and premium/timeout/graph schedules;
  :func:`default_matrix` builds the standard all-families campaign,
- :mod:`repro.campaign.ablation` — the rational-adversary ablation engine:
  :func:`ablation_matrix` crosses families with utility-driven pivots
  (single and coalition) over premium fractions × price shocks × shock
  stages (named, per-round, or the dense ``all`` sweep),
  :func:`reduce_frontier` reduces the resulting report into the
  deviation-profitability frontier (the measured π-threshold of §5.2), and
  :func:`refine_frontier` bisects between lattice points — via
  :func:`ablation_cell` probe matrices — for a continuous π* that
  brackets the closed forms.

``repro.checker.ModelChecker`` is a thin client of this package: profile
enumeration, execution, and property evaluation all live here.
"""

from repro.campaign.matrix import ScenarioMatrix, enumerate_profiles
from repro.campaign.pool import MatrixSpec, WorkerPool, register_matrix_factory
from repro.campaign.cache import ResultCache, code_version, shared_cache
from repro.campaign.report import (
    Report,
    merge_reports_any,
    register_report,
    registered_report_kinds,
    report_from_json,
)
from repro.campaign.runner import (
    CampaignReport,
    CampaignRunner,
    ScenarioViolation,
    merge_reports,
)
from repro.campaign.scenario import Scenario, ScenarioResult, run_scenario
from repro.campaign.families import (
    FAMILY_NAMES,
    default_matrix,
    default_matrix_spec,
)
from repro.campaign.ablation import (
    AblationGrid,
    FrontierReport,
    KernelEngine,
    KernelUnsupported,
    RefinedFrontierReport,
    ablation_cell,
    ablation_matrix,
    reduce_frontier,
    refine_frontier,
)
from repro.campaign.experiment import (
    EXPERIMENT_KINDS,
    Experiment,
    ExperimentError,
    ExperimentResult,
    ExperimentSpec,
    ablate_spec,
    campaign_spec,
    refine_spec,
)

__all__ = [
    "AblationGrid",
    "CampaignReport",
    "CampaignRunner",
    "EXPERIMENT_KINDS",
    "Experiment",
    "ExperimentError",
    "ExperimentResult",
    "ExperimentSpec",
    "FAMILY_NAMES",
    "FrontierReport",
    "KernelEngine",
    "KernelUnsupported",
    "MatrixSpec",
    "RefinedFrontierReport",
    "Report",
    "ResultCache",
    "Scenario",
    "ScenarioMatrix",
    "ScenarioResult",
    "ScenarioViolation",
    "WorkerPool",
    "ablate_spec",
    "ablation_cell",
    "ablation_matrix",
    "campaign_spec",
    "code_version",
    "default_matrix",
    "default_matrix_spec",
    "enumerate_profiles",
    "merge_reports",
    "merge_reports_any",
    "reduce_frontier",
    "refine_frontier",
    "refine_spec",
    "register_matrix_factory",
    "register_report",
    "registered_report_kinds",
    "report_from_json",
    "run_scenario",
    "shared_cache",
]
