"""The refined-row store: content-addressed single rows of a refined frontier.

The quote engine's tier-2 ladder needs to answer "what is π* for this
(family, coalition, stage, shock) at this tolerance?" in one cache
lookup, not one refinement run.  The :class:`~repro.campaign.cache.
ResultCache` already holds the *probe blocks* a refinement executed —
which makes a re-refinement cheap — but a quote must skip the bisection
loop entirely, so this module stores the refinement's *answer* rows as
first-class cache entries:

- the descriptor (:func:`row_descriptor`) names one refined row by its
  grid coordinates, the bisection tolerance, and the matrix identity
  seed — exactly the result-determining inputs of a narrow
  ``ablate-refine`` run of that single cell,
- the key prefixes the descriptor with the :func:`~repro.campaign.cache.
  code_version`, so a row can never outlive the engine that measured it
  (the same freshness discipline the probe-block cache enforces),
- the stored payload is :func:`~repro.campaign.ablation.refine.
  refined_row_payload` — byte-identical to the row's embedding in a
  :class:`~repro.campaign.ablation.refine.RefinedFrontierReport`, so a
  row loaded by a quote carries the same probes and provenance digests
  the refinement report published.

:func:`store_refined_rows` is the warm path's feeder: the experiment
facade calls it after every cached ``ablate-refine`` run, so any prior
refinement — a CLI sweep, a tier-3 quote fallback — turns the next
identical quote into a tier-2 hit.
"""

from __future__ import annotations

from hashlib import sha256

from repro.campaign.cache import ResultCache, code_version
from repro.campaign.canon import canon_float, fmt_fraction
from repro.campaign.ablation.refine import (
    RefinedFrontierReport,
    RefinedRow,
    refined_row_from_payload,
    refined_row_payload,
)


def row_descriptor(
    family: str,
    coalition: str,
    stage: str,
    shock: float,
    tol: float,
    seed: int = 0,
) -> str:
    """The canonical name of one refined row's result-determining inputs.

    Everything a narrow single-cell ``ablate-refine`` run's answer depends
    on, in one pipe-joined line: the cell coordinates, the bisection
    tolerance, and the matrix identity seed.  Floats render through
    :func:`~repro.campaign.canon.fmt_fraction`, the same canonical form
    the grid's schedule labels use, so two descriptors are equal exactly
    when the runs they name are.
    """
    return (
        f"refined-row|family={family}|coalition={coalition}|stage={stage}"
        f"|shock={fmt_fraction(canon_float(shock))}"
        f"|tol={fmt_fraction(canon_float(tol))}|seed={seed}"
    )


def row_key(descriptor: str) -> str:
    """The content address of one refined row (code-version prefixed)."""
    return sha256(f"v={code_version()}|{descriptor}".encode()).hexdigest()


def store_row(cache: ResultCache, descriptor: str, row: RefinedRow) -> bool:
    """Store one refined row under its descriptor; False when ineligible.

    Two kinds of row are final answers a quote may serve: a converged
    bracket (``pi_star`` within tol of the boundary) and an *undeterred*
    row (``pi_hi is None`` — every probe up to the expansion ceiling
    still walked, the "un-hedgeable" verdict).  The one ineligible shape
    is an unconverged bracket: bisection ran out of iterations mid-way,
    so the midpoint is a partial answer tier 3 must re-measure.
    """
    if not row.converged and row.pi_hi is not None:
        return False
    return cache.put_entry(row_key(descriptor), refined_row_payload(row))


def load_row(cache: ResultCache, descriptor: str) -> RefinedRow | None:
    """The stored refined row for ``descriptor``, or None on any miss."""
    payload = cache.get_entry(row_key(descriptor))
    if payload is None:
        return None
    try:
        row = refined_row_from_payload(payload)
    except (KeyError, TypeError, ValueError):
        return None
    return row


def store_refined_rows(
    cache: ResultCache, report: RefinedFrontierReport, seed: int = 0
) -> int:
    """Store every row of a refined frontier; returns the rows stored.

    The experiment facade's post-refine hook: a cached ``ablate-refine``
    run — whatever grid it swept — leaves one row entry per cell, so the
    quote engine's tier 2 answers any cell a prior refinement measured.
    """
    stored = 0
    for row in report.rows:
        descriptor = row_descriptor(
            row.family, row.coalition, row.stage, row.shock, report.tol, seed
        )
        if store_row(cache, descriptor, row):
            stored += 1
    return stored
