"""Rational-adversary ablations: the deviation-profitability frontier.

The campaign engine asks whether *named* adversary strategies can hurt a
compliant party; this subsystem asks the complementary economic question —
**when does deviating pay?**  The paper's central quantitative claim (§5.2)
is that a hedged premium of fraction π makes walking away irrational for
any relative price drop smaller than π; here that claim becomes an
executable grid:

- :mod:`~repro.campaign.ablation.grid` crosses protocol families with
  utility-driven pivots (`repro.parties.rational`) over premium fractions
  × shock sizes × shock stages.  Each cell runs a *comply* and a
  *rational* arm as ordinary campaign scenarios, with digest-covered
  metrics recording completion and the pivot's realized utility at
  post-shock prices.  :func:`ablation_matrix` is a registered worker-pool
  factory, so the grid runs through the serial backend, one-shot process
  pools, and persistent :class:`~repro.campaign.pool.WorkerPool` reuse
  alike — and shards/merges with the standard campaign transport,
- :mod:`~repro.campaign.ablation.frontier` reduces the campaign report to
  a :class:`FrontierReport`: per (family, stage, shock) the smallest swept
  premium ``pi_star`` at which the rational pivot completes, plus each
  cell's measured deviation gain and victim compensation.

**Frontier semantics.**  ``pi_star`` is a *measured* quantity — the pivot
walks exactly when its live walk-forfeit (premium stake plus abandoned
escrows) is smaller than the shocked value drop — so at the ``staked``
stage it reproduces the closed-form thresholds (two-party: π itself;
other families: the stake :func:`~repro.campaign.ablation.grid.deterrence_stake`
computes from the paper's premium equations).  At the ``pre-stake`` stage
nothing is forfeit, walking is always rational, and every row reports
``pi_star = None`` — premiums deter only staked parties, which is itself a
statement of the paper's model.

**Digest rules.**  The frontier digest hashes the underlying campaign
``run_digest`` (which already binds the matrix identity and the effective
limit/shard selection) plus coverage and every cell in canonical order.
Serial, pooled, and sharded-then-merged runs of the same grid therefore
produce byte-identical frontier digests, and a partial run can never
masquerade as full coverage.
"""

from repro.campaign.ablation.frontier import (
    CoalitionFrontierRow,
    FrontierCell,
    FrontierReport,
    FrontierRow,
    reduce_frontier,
)
from repro.campaign.ablation.grid import (
    ABLATION_COALITIONS,
    ABLATION_FAMILIES,
    DEFAULT_PREMIUM_FRACTIONS,
    DEFAULT_SHOCK_FRACTIONS,
    DEFAULT_STAGES,
    AblationGrid,
    ablation_cell,
    ablation_matrix,
    ablation_matrix_spec,
    closed_form_coalition_pi_star,
    closed_form_pi_star,
    coalition_deterrence_stake,
    deterrence_stake,
    is_graph_family,
    parse_graph_family,
    premium_base,
    shocked_notional,
)
from repro.campaign.ablation.kernels import (
    KERNEL_FACTORIES,
    KernelEngine,
    KernelUnsupported,
)
from repro.campaign.ablation.refine import (
    DEFAULT_TOL,
    EXPAND_CEILING,
    RefinedFrontierReport,
    RefinedRow,
    refine_frontier,
    refined_row_from_payload,
    refined_row_payload,
)
from repro.campaign.ablation.rowstore import (
    load_row,
    row_descriptor,
    row_key,
    store_refined_rows,
    store_row,
)

__all__ = [
    "ABLATION_COALITIONS",
    "ABLATION_FAMILIES",
    "AblationGrid",
    "CoalitionFrontierRow",
    "DEFAULT_PREMIUM_FRACTIONS",
    "DEFAULT_SHOCK_FRACTIONS",
    "DEFAULT_STAGES",
    "DEFAULT_TOL",
    "EXPAND_CEILING",
    "FrontierCell",
    "FrontierReport",
    "FrontierRow",
    "KERNEL_FACTORIES",
    "KernelEngine",
    "KernelUnsupported",
    "RefinedFrontierReport",
    "RefinedRow",
    "ablation_cell",
    "ablation_matrix",
    "ablation_matrix_spec",
    "closed_form_coalition_pi_star",
    "closed_form_pi_star",
    "coalition_deterrence_stake",
    "deterrence_stake",
    "is_graph_family",
    "load_row",
    "parse_graph_family",
    "premium_base",
    "reduce_frontier",
    "refine_frontier",
    "refined_row_from_payload",
    "refined_row_payload",
    "row_descriptor",
    "row_key",
    "shocked_notional",
    "store_refined_rows",
    "store_row",
]
