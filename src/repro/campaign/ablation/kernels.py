"""Vectorized payoff kernels: the ablation grid without per-cell replays.

The frontier and refine engines replay the full object-oriented protocol
(contracts, ledger, parties) once per scenario, yet across a premium ×
shock × stage grid almost everything repeats: at a fixed ``(family,
coalition, integer premium)`` the *transactions* of a run depend only on
the rounds the pivot participates — prices are exogenous, so a shock
changes decisions, never trajectories.  The §5.2 outcomes are therefore
piecewise constant in trajectory and closed-form in payoff, which is what
this module exploits:

1. **Template calibration.**  One real simulation per cell context
   (:func:`repro.campaign.ablation.grid.family_cell`) runs the compliant
   trajectory with the pivot wrapped in a pass-through recorder.  Each
   round it captures the pivot (set)'s walk-forfeit stake — price-
   independent by construction — and the symbolic completion-gain terms
   (:func:`repro.parties.rational.completion_gain_terms`), i.e. the exact
   ``(sign, amount, asset)`` folds the live
   :class:`~repro.parties.rational.UtilityModel` would price.
2. **Vectorized decisions.**  For a whole vector of shock fractions at
   once, the recorded folds are replayed with numpy in the *identical
   floating-point operation order* the simulator uses (same term order,
   same ``0.0 +``/``-=`` fold, same ``value * (1 - s)`` shock step), so
   the per-round rule ``gain >= -stake`` — and hence the walk round —
   is bit-for-bit the simulator's.  IEEE-754 elementwise numpy arithmetic
   makes "vectorized" and "replayed scalar" the same computation.
3. **Trajectory templates.**  A rational arm that never walks *is* the
   comply run; one that walks at round ``w`` is reproduced once per
   distinct ``w`` by a scripted :class:`~repro.parties.rational.
   Opportunist` (``continue iff rnd < w``) and then shared by every
   scenario that walks there.  Violations, premium flows, transaction
   counts, and the ledger fingerprint are condensed per template; the
   ``utility`` metric is replayed vectorized per (template, shock height)
   from the final balance deltas.

The result: per-scenario work collapses to a metrics fold, a summary
join, and a sha256 — identical :class:`~repro.campaign.scenario.
ScenarioResult` objects (digests included) at orders of magnitude the
simulator cannot reach.  The simulator stays the audit path:
``benchmarks/parity_audit.py`` runs every default-grid cell through both
engines and fails on any metric or digest divergence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import sha256

import numpy as np

from repro.campaign.scenario import (
    Scenario,
    ScenarioResult,
    _ledger_fingerprint,
)
from repro.obs import maybe_span
from repro.parties.base import Actor
from repro.parties.rational import Opportunist, TokenPrices
from repro.protocols.instance import execute

#: matrix factories whose scenarios the kernel engine understands.
KERNEL_FACTORIES = ("ablation", "ablation_cell")


class KernelUnsupported(ValueError):
    """A scenario (or matrix) the kernel engine cannot reproduce."""


# ----------------------------------------------------------------------
# calibration: one recorded compliant run per cell context
# ----------------------------------------------------------------------
@dataclass
class _Recording:
    """Per-round decision ingredients captured on the compliant path.

    Valid for any rational trajectory's *pre-walk prefix*: until the
    pivot walks it acts compliantly, so the chain state (and hence the
    stake and the gain terms) each round equals the compliant run's.
    """

    heights: list = field(default_factory=list)
    stakes: list = field(default_factory=list)
    #: per round: per member fold of (sign, amount, is_native, symbol).
    folds: list = field(default_factory=list)


class _RecordingActor(Actor):
    """Pass-through wrapper: behaves compliantly, records the calculus."""

    def __init__(self, inner: Actor, cell, recording: _Recording) -> None:
        super().__init__(inner.name, inner.keypair)
        self._inner = inner
        self._cell = cell
        # walk_cost never reads prices, so any TokenPrices instance works.
        self._stake = cell.model_factory(TokenPrices()).walk_cost
        self._recording = recording

    def on_round(self, rnd: int, view):
        rec = self._recording
        rec.heights.append(view.height)
        rec.stakes.append(self._stake(view))
        rec.folds.append(
            [
                [
                    (
                        sign,
                        amount,
                        getattr(asset, "is_native", False),
                        getattr(asset, "symbol", str(asset)),
                    )
                    for sign, amount, asset in fold
                ]
                for fold in self._cell.gain_terms(view)
            ]
        )
        return self._inner.on_round(rnd, view)


@dataclass
class _Template:
    """One finished trajectory, condensed once and shared by scenarios."""

    instance: object
    result: object
    ntx: int
    ntx_str: str
    reverted: int
    premium_net: tuple
    premium_net_str: str
    fingerprint: str
    completed: float
    #: per metrics party: ((change, is_native, symbol), ...) delta terms.
    utility_terms: tuple
    #: adversaries tuple -> (violations, violations_str, trace), lazily.
    checks: dict = field(default_factory=dict)


def _condense_template(cell, instance, result) -> _Template:
    payoffs = result.payoffs
    premium_net = tuple(
        (party, payoffs.premium_net(party)) for party in sorted(instance.actors)
    )
    terms = tuple(
        tuple(
            (
                change,
                getattr(asset, "is_native", False),
                getattr(asset, "symbol", str(asset)),
            )
            for asset, change in payoffs.delta(party).items()
        )
        for party in cell.metrics_parties
    )
    ntx = len(result.transactions)
    return _Template(
        instance=instance,
        result=result,
        ntx=ntx,
        ntx_str=str(ntx),
        reverted=len(result.reverted()),
        premium_net=premium_net,
        premium_net_str=",".join(f"{p}:{net}" for p, net in premium_net),
        fingerprint=_ledger_fingerprint(instance),
        completed=1.0 if cell.completed(instance) else 0.0,
        utility_terms=terms,
    )


# ----------------------------------------------------------------------
# one cell context's kernel: templates + vectorized decision replay
# ----------------------------------------------------------------------
class _CellKernel:
    """Everything cached for one ``(family, coalition, premium)`` cell."""

    def __init__(self, cell) -> None:
        self.cell = cell
        self.base_map = dict(cell.base_values)
        self.recording = _Recording()
        instance = cell.builder()
        result = execute(
            instance,
            {
                cell.pivots[0]: (
                    lambda actor: _RecordingActor(actor, cell, self.recording)
                )
            },
        )
        #: the compliant trajectory — also every never-walks rational arm.
        self.comply = _condense_template(cell, instance, result)
        self._walks: dict[int, _Template] = {}

    def walk_template(self, walk_round: int) -> _Template:
        """The trajectory where every pivot member walks at ``walk_round``.

        Reproduced with a scripted :class:`Opportunist` (``rnd < w``):
        identical transactions to the live rational arm, because the
        utility model's decisions — already replayed vectorized — are
        True exactly on the pre-walk prefix.
        """
        template = self._walks.get(walk_round)
        if template is None:
            cell = self.cell

            def scripted(actor):
                return Opportunist(
                    actor, lambda rnd, view, w=walk_round: rnd < w
                )

            instance = cell.builder()
            result = execute(
                instance, {member: scripted for member in cell.pivots}
            )
            template = _condense_template(cell, instance, result)
            self._walks[walk_round] = template
        return template

    # ------------------------------------------------------------------
    # bit-exact replays
    # ------------------------------------------------------------------
    def _price(self, is_native, symbol, round_height, shock_height, s_arr):
        """Replay ``TokenPrices.__call__`` over a shock vector.

        Same op order: native short-circuits to 1.0, base lookup, then
        one ``value * (1 - s)`` step when the shocked token is past its
        shock height.  Returns a scalar when the shock does not apply.
        """
        if is_native:
            return 1.0
        value = self.base_map.get(symbol, 1.0)
        if self.cell.shocked == symbol and round_height >= shock_height:
            return value * (1.0 - s_arr)
        return value

    def _fold(self, terms, round_height, shock_height, s_arr):
        """Replay one member's ``pending_completion_gain`` fold."""
        total = 0.0
        for sign, amount, is_native, symbol in terms:
            value = amount * self._price(
                is_native, symbol, round_height, shock_height, s_arr
            )
            if sign > 0:
                total = total + value
            else:
                total = total - value
        return total

    def _gain(self, folds, round_height, shock_height, s_arr):
        """Replay the cell's completion gain for one recorded round."""
        shape = self.cell.gain_shape
        if shape == "single":
            return self._fold(folds[0], round_height, shock_height, s_arr)
        if shape == "sum":
            total = 0.0
            for terms in folds:
                total = total + self._fold(
                    terms, round_height, shock_height, s_arr
                )
            return total
        # "diff": the auction's two bare-product legs, first minus second.
        (sign0, amount0, native0, symbol0) = folds[0][0]
        (sign1, amount1, native1, symbol1) = folds[1][0]
        leg0 = amount0 * self._price(
            native0, symbol0, round_height, shock_height, s_arr
        )
        leg1 = amount1 * self._price(
            native1, symbol1, round_height, shock_height, s_arr
        )
        return leg0 - leg1

    def walk_rounds(self, shock_height: int, s_arr) -> "np.ndarray":
        """First round where ``gain < -stake`` per shock, or -1 (complete).

        Replays the recorded per-round rule over the whole shock vector;
        the :class:`Opportunist` halts permanently at its first False, so
        the first failing round is the walk round.
        """
        n = len(s_arr)
        walked = np.full(n, -1, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        rec = self.recording
        for rnd in range(len(rec.stakes)):
            gain = self._gain(
                rec.folds[rnd], rec.heights[rnd], shock_height, s_arr
            )
            cont = np.broadcast_to(
                np.asarray(gain >= -rec.stakes[rnd]), (n,)
            )
            newly = undecided & ~cont
            walked[newly] = rnd
            undecided = undecided & cont
            if not undecided.any():
                break
        return walked

    def utilities(self, template: _Template, shock_height: int, s_arr):
        """Replay the metrics utility (joint realized value) per shock.

        Mirrors ``_make_metrics``: sum over the metrics parties of
        ``realized_utility`` at the horizon — each party a fold of
        ``price * change`` over its final balance deltas, in delta order.
        """
        horizon = self.cell.horizon
        total = 0.0
        for terms in template.utility_terms:
            utility = 0.0
            for change, is_native, symbol in terms:
                price = self._price(
                    is_native, symbol, horizon, shock_height, s_arr
                )
                utility = utility + price * change
            total = total + utility
        return np.broadcast_to(
            np.asarray(total, dtype=np.float64), (len(s_arr),)
        )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class KernelEngine:
    """Execute ablation scenarios through the vectorized payoff kernels.

    Drop-in for the serial scenario loop: ``run(scenarios)`` returns the
    same :class:`ScenarioResult` list (same digests, same metrics, same
    violations) the simulator would produce.  Cell templates are cached
    on the engine, so a long-lived engine amortizes calibration across
    grid runs and refinement probes alike.
    """

    def __init__(self, tracer=None) -> None:
        self._kernels: dict[tuple[str, str, int], _CellKernel] = {}
        #: axes tuple -> (family, coalition, premium, shock, height,
        #: rational) — parsing is per distinct cell coordinate, not per
        #: scenario execution, so re-runs and refine loops skip it.
        self._coords: dict[tuple, tuple] = {}
        #: optional repro.obs.Tracer — counts calibrations vs cell-cache
        #: hits and vectorized replays, and wraps each cell group in a
        #: "block" span.  Digest-inert: write-only from here, never read.
        self.tracer = tracer

    def _count(self, name: str, amount: float = 1) -> None:
        if self.tracer is not None:
            self.tracer.inc(name, amount)

    # ------------------------------------------------------------------
    def _parse(self, scenario: Scenario) -> tuple:
        coords = self._coords.get(scenario.axes)
        if coords is not None:
            return coords
        axes = dict(scenario.axes)
        try:
            family = axes["family"]
            premium = int(axes["premium"])
            shock = float(axes["shock"])
            shock_height = int(axes["shock_height"])
            strategy = axes["strategy"]
        except (KeyError, ValueError) as err:
            raise KernelUnsupported(
                f"scenario {scenario.label!r} lacks ablation axes ({err}); "
                "the kernel engine runs only ablation_matrix/ablation_cell "
                "scenarios"
            )
        if strategy not in ("comply", "compliant", "rational"):
            raise KernelUnsupported(
                f"scenario {scenario.label!r} has unknown strategy arm "
                f"{strategy!r}"
            )
        coords = (
            family,
            axes.get("coalition", ""),
            premium,
            shock,
            shock_height,
            strategy == "rational",
        )
        self._coords[scenario.axes] = coords
        return coords

    def _kernel_for(self, family: str, coalition: str, premium: int) -> _CellKernel:
        key = (family, coalition, premium)
        kernel = self._kernels.get(key)
        if kernel is None:
            from repro.campaign.ablation.grid import family_cell

            try:
                cell = family_cell(family, coalition, premium)
            except ValueError as err:
                raise KernelUnsupported(str(err))
            kernel = _CellKernel(cell)
            self._kernels[key] = kernel
            self._count("kernel.calibrations")
        else:
            self._count("kernel.cell_hits")
        return kernel

    # ------------------------------------------------------------------
    def run(self, scenarios: list[Scenario], meter=None) -> list[ScenarioResult]:
        """Run every scenario; results in input order.

        ``meter`` (a :class:`repro.obs.ProgressMeter`) ticks once per
        scenario as each cell group completes; with a tracer attached,
        every cell group is wrapped in a ``block`` span and calibration /
        replay / cell-hit counters accumulate.  Both are observational
        only — results are byte-identical with or without them.
        """
        results: list[ScenarioResult | None] = [None] * len(scenarios)
        groups: dict[tuple[str, str, int], list] = {}
        for position, scenario in enumerate(scenarios):
            coords = self._parse(scenario)
            groups.setdefault(coords[:3], []).append(
                (position, scenario, coords)
            )
        self._count("kernel.scenarios", len(scenarios))
        for (family, coalition, premium), members in groups.items():
            label = f"{family}:{coalition or '-'}[premium={premium}]"
            with maybe_span(
                self.tracer, "block", label=label, scenarios=len(members)
            ):
                self._run_group(results, family, coalition, premium, members)
            if meter is not None:
                meter.advance(len(members))
        return results  # type: ignore[return-value]

    def _run_group(
        self,
        results: list,
        family: str,
        coalition: str,
        premium: int,
        members: list,
    ) -> None:
        """Execute one (family, coalition, premium) cell group in place."""
        start = time.perf_counter()
        kernel = self._kernel_for(family, coalition, premium)
        comply = kernel.comply
        # Bucket scenarios by (template, shock height): the utility
        # metric is one vectorized replay per bucket.
        buckets: dict[tuple[int, int], tuple] = {}
        pending: dict[int, list] = {}
        for position, scenario, coords in members:
            shock, shock_height, rational = coords[3], coords[4], coords[5]
            if rational:
                pending.setdefault(shock_height, []).append(
                    (position, scenario, shock)
                )
            else:
                buckets.setdefault(
                    # Identity keys an in-process bucket of shared
                    # templates; never digested or serialized.
                    (id(comply), shock_height),  # lint: disable=DET001
                    (comply, shock_height, []),
                )[2].append((position, scenario, shock))
        for shock_height, entries in pending.items():
            s_arr = np.array([e[2] for e in entries], dtype=np.float64)
            walked = kernel.walk_rounds(shock_height, s_arr)
            self._count("kernel.replays")
            for entry, w in zip(entries, walked.tolist()):
                template = (
                    comply if w < 0 else kernel.walk_template(w)
                )
                buckets.setdefault(
                    # Same in-process bucket keying as above.
                    (id(template), shock_height),  # lint: disable=DET001
                    (template, shock_height, []),
                )[2].append(entry)
        # Decisions and trajectory templates are in hand; distribute
        # the group's shared cost (elapsed is reported, not digested).
        elapsed_each = (time.perf_counter() - start) / max(1, len(members))
        # Per-scenario marginal work, inlined and hoisted: a cached
        # property check, the utility repr, one string concat, the
        # sha256, and a direct ScenarioResult construction (the
        # frozen-dataclass __init__ — one object.__setattr__ per
        # field — is bypassed; the field set mirrors condense_run).
        new = ScenarioResult.__new__
        for template, shock_height, entries in buckets.values():
            s_arr = np.array([e[2] for e in entries], dtype=np.float64)
            utilities = kernel.utilities(template, shock_height, s_arr)
            self._count("kernel.replays")
            checks = template.checks
            ntx = template.ntx
            reverted = template.reverted
            premium_net = template.premium_net
            for (position, scenario, _), utility in zip(
                entries, utilities.tolist()
            ):
                static = checks.get(scenario.adversaries)
                if static is None:
                    static = self._check(kernel, template, scenario)
                violations, trace, completed_pair, middle, suffix = static
                if utility == 0.0:
                    utility = 0.0  # collapse -0.0, as canon_float does
                summary = f"{scenario.label}|{middle}{utility!r}{suffix}"
                result = new(ScenarioResult)
                result.__dict__.update({
                    "index": scenario.index,
                    "label": scenario.label,
                    "axes": scenario.axes,
                    "violations": violations,
                    "transactions": ntx,
                    "reverted": reverted,
                    "premium_net": premium_net,
                    "elapsed_seconds": elapsed_each,
                    # Same conservative flow-pass artifact as condense_run:
                    # properties only membership-test the adversary
                    # frozenset, so its order never reaches the summary.
                    "digest": sha256(summary.encode()).hexdigest(),  # lint: disable=FLOW002
                    "metrics": (completed_pair, ("utility", utility)),
                    "trace": trace,
                })
                results[position] = result

    # ------------------------------------------------------------------
    def _check(
        self, kernel: _CellKernel, template: _Template, scenario: Scenario
    ) -> tuple:
        """Evaluate properties once per (template, adversary set) and
        condense everything scenario-invariant about the outcome.

        Everything in ``condense_run``'s summary line except the label
        and the utility value is fixed per (template, adversary set), so
        the middle and suffix fragments are pre-rendered here.
        """
        adversary_set = frozenset(scenario.adversaries)
        violations: list[str] = []
        for prop in kernel.cell.properties:
            violations.extend(
                prop(template.instance, template.result, adversary_set)
            )
        trace = ""
        if violations:
            from repro.sim.trace import render_lanes

            trace = render_lanes(template.result)
        completed = template.completed
        static = (
            tuple(violations),
            trace,
            ("completed", completed),
            f"{','.join(violations)}|{template.ntx_str}"
            f"|{template.premium_net_str}"
            f"|completed={completed!r},utility=",
            f"|{template.fingerprint}",
        )
        template.checks[scenario.adversaries] = static
        return static
