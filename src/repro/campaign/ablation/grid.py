"""The rational-adversary ablation grid.

:func:`ablation_matrix` crosses protocol families with utility-driven
actors (`repro.parties.rational`) over premium fractions × price-shock
sizes × shock stages, producing an ordinary
:class:`repro.campaign.matrix.ScenarioMatrix` that runs through every
existing backend (serial, one-shot process pool, persistent
:class:`~repro.campaign.pool.WorkerPool`).

Each grid cell ``(family, π, s, stage)`` becomes one matrix block holding
two scenarios for the family's *pivot* party (the one whose incoming asset
takes the shock):

- the **comply** arm — an identity transform; the protocol completes and
  the pivot's realized utility under the shocked price path is the cost of
  honoring the deal,
- the **rational** arm — the pivot wrapped in a
  :class:`~repro.parties.rational.UtilityModel`; it walks away exactly
  when quitting beats finishing given its live premium stake.

Both arms carry a metrics hook recording ``completed`` and the pivot's
``utility`` (final balance deltas valued at the post-shock prices), which
is what :func:`repro.campaign.ablation.frontier.reduce_frontier` pairs
into deviation-profitability cells.

Premium sizing maps the grid fraction π onto each family's integer premium
knob against the pivot's principal value (e.g. two-party:
``p_b = round(π · amount_b)``); :func:`deterrence_stake` exposes the
resulting closed-form walk-forfeit at the staked stage, and
:func:`closed_form_pi_star` the continuous §5.2-style threshold the
refinement engine's bisected π* must bracket.

**Shock stages.**  A stage pins the shock height to protocol structure:

- the named stages ``pre-stake`` (before the pivot deposited anything —
  walking is free, no premium can deter it) and ``staked`` (premiums held,
  principal not yet locked — the window the paper's premiums are sized
  for) survive as aliases into each family's schedule,
- ``round:K`` pins the shock to height ``K`` directly, and the pseudo
  stage ``all`` expands to one ``round:K`` arm per protocol round of each
  family — the *dense stage sweep* that charts how the deterrent decays
  round by round.  Nothing is hard-coded per family: the binding deviation
  (e.g. the broker's escrow-then-withhold-the-key walk) emerges from the
  per-round utility rule, not from a named stage.

**Coalitions.**  With ``coalitions=True`` the grid adds *joint* pivot
blocks for the named two-party coalitions in :data:`ABLATION_COALITIONS`
(adjacent ring members walking together; seller + buyer squeezing the
broker).  Both members share one
:func:`~repro.parties.rational.coalition_model`, so they walk in the same
round exactly when the joint utility says collusion pays; the blocks carry
a ``coalition`` axis and expand only the compliant and the joint-rational
profile (``min_adversaries == max_adversaries == 2``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.canon import canon_float, fmt_fraction
from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.pool import MatrixSpec, register_matrix_factory

ABLATION_FAMILIES = ("two-party", "multi-party", "broker", "auction")

#: premium fractions π swept by the default grid (0 = unhedged baseline).
DEFAULT_PREMIUM_FRACTIONS = (0.0, 0.01, 0.02, 0.03, 0.05, 0.08)

#: relative price drops s; chosen off the grid's stake values so the
#: walk/complete decision is never a floating-point tie.
DEFAULT_SHOCK_FRACTIONS = (0.005, 0.015, 0.025, 0.045, 0.065, 0.105)

DEFAULT_STAGES = ("pre-stake", "staked")

#: the pseudo-stage expanding to one ``round:K`` arm per protocol round.
STAGE_ALL = "all"

#: the named two-party coalitions swept when ``coalitions=True``.
ABLATION_COALITIONS = {
    "multi-party": ("P1+P2",),
    "broker": ("seller+buyer",),
}

#: the principal notional every family's π is sized against.
PRINCIPAL = 100

#: graph-shaped family kinds the grid prices beyond the named §5.2 four:
#: ``ring:N`` / ``complete:N`` (plus the literal ``figure3``) name a
#: multi-party swap over that digraph, hedged by the generic §7.1
#: Equations 1–2 schedule.
GRAPH_FAMILY_KINDS = ("ring", "complete")


def parse_graph_family(family: str):
    """``(graph, leaders)`` for a graph-shaped family name, else ``None``.

    ``ring:N`` pins the canonical single leader ``P0`` (any one vertex
    breaks the only cycle); ``figure3`` pins the paper's leader ``A``;
    ``complete:N`` needs a genuine feedback vertex set, so it takes the
    deterministic :func:`~repro.graph.feedback.minimum_feedback_vertex_set`.
    The leaders are part of the family's identity: the same graph under a
    different leader set prices differently, and a name must mean one cell.
    """
    from repro.graph.digraph import complete_graph, figure3_graph, ring_graph

    if family == "figure3":
        return figure3_graph(), ("A",)
    kind, sep, count = family.partition(":")
    if not sep or kind not in GRAPH_FAMILY_KINDS or not count.isdigit():
        return None
    n = int(count)
    if n < 2:
        return None
    if kind == "ring":
        return ring_graph(n), ("P0",)
    from repro.graph.feedback import minimum_feedback_vertex_set

    graph = complete_graph(n)
    return graph, minimum_feedback_vertex_set(graph)


def is_graph_family(family: str) -> bool:
    """True iff ``family`` names a graph-shaped multi-party cell."""
    return parse_graph_family(family) is not None


def scaled_premium(fraction: float, base: int = PRINCIPAL) -> int:
    """The integer premium a fraction π buys on a ``base`` principal."""
    return int(round(fraction * base))


def valid_stage(stage: str) -> bool:
    """True iff ``stage`` is a named stage, ``round:K``, or ``all``."""
    if stage in DEFAULT_STAGES or stage == STAGE_ALL:
        return True
    if stage.startswith("round:"):
        suffix = stage.split(":", 1)[1]
        return suffix.isdigit()
    return False


def stage_heights(
    stages: tuple[str, ...], named: dict[str, int], horizon: int
) -> list[tuple[str, int]]:
    """Resolve stage labels into ``(stage, shock height)`` arms.

    ``named`` maps a family's named stages to their schedule heights;
    ``all`` expands to every protocol round ``round:0 .. round:horizon-1``;
    ``round:K`` passes through.  Duplicate labels collapse, order is
    preserved.
    """
    out: list[tuple[str, int]] = []
    seen: set[str] = set()
    for stage in stages:
        if stage == STAGE_ALL:
            expanded = [(f"round:{h}", h) for h in range(horizon)]
        elif stage.startswith("round:"):
            expanded = [(stage, int(stage.split(":", 1)[1]))]
        else:
            expanded = [(stage, named[stage])]
        for label, height in expanded:
            if label not in seen:
                seen.add(label)
                out.append((label, height))
    return out


def _comply(actor):
    return actor


def _make_strategies(party: str, transform):
    """The two arms of one cell, as checker-style named strategies."""
    from repro.checker.strategies import NamedStrategy

    return {
        party: (
            NamedStrategy(label="comply", transform=_comply),
            NamedStrategy(label="rational", transform=transform),
        )
    }


def _make_coalition_strategies(transforms: dict[str, object]):
    """One joint-rational strategy per member; the comply arm is the
    block's all-compliant profile (``min_adversaries=2`` suppresses the
    spurious single-member profiles)."""
    from repro.checker.strategies import NamedStrategy

    return {
        party: (NamedStrategy(label="rational", transform=transform),)
        for party, transform in transforms.items()
    }


def _make_metrics(parties, prices, completed):
    """The cell's digest-covered metrics: completion flag + pivot utility.

    ``parties`` may be one pivot or a coalition tuple; the utility metric
    is the (joint) realized value of the pivot set at post-shock prices.
    """
    if isinstance(parties, str):
        parties = (parties,)

    def metrics(instance, result):
        return (
            ("completed", 1.0 if completed(instance) else 0.0),
            (
                "utility",
                sum(
                    result.payoffs.realized_utility(p, prices, instance.horizon)
                    for p in parties
                ),
            ),
        )

    return metrics


def _axes(
    pi: float,
    premium: int,
    shock: float,
    stage: str,
    height: int,
    coalition: str = "",
):
    """Cell coordinates; ``premium`` is the *effective* integer premium the
    fraction π bought after rounding, recorded so a quantized grid (e.g.
    π = 0.025 on a 100 principal → premium 2) can never misstate what
    actually hedged the run.  Coalition cells carry their pivot-set name as
    an extra axis so the frontier reducer prices them separately."""
    axes = [
        ("pi", fmt_fraction(pi)),
        ("premium", str(premium)),
        ("shock", fmt_fraction(shock)),
        ("stage", stage),
        ("shock_height", str(height)),
    ]
    if coalition:
        axes.append(("coalition", coalition))
    return tuple(axes)


# ----------------------------------------------------------------------
# family cells
# ----------------------------------------------------------------------
@dataclass
class FamilyCell:
    """One family's fully-wired cell context at one integer premium.

    Everything a ``(family, coalition, premium)`` point of the grid needs
    — builder, contract directory, pivot set, price-path ingredients,
    stage schedule, properties, metrics parties, the utility model, and
    the symbolic per-round gain terms — in one object shared by the matrix
    adders (which expand it into comply/rational blocks per shock × stage)
    and the vectorized kernel engine (which calibrates payoff templates
    from it).  Building both from the same context is what makes the two
    engines agree cell-by-cell: same closures, same float op order, same
    block descriptors.
    """

    family: str
    coalition: str  #: "" for the family's single pivot
    premium: int  #: the effective integer premium π bought after rounding
    pivots: tuple[str, ...]  #: parties the rational arm wraps
    metrics_parties: tuple[str, ...]  #: utility-metric party set, in order
    builder: object
    contracts: tuple[tuple[str, str], ...]
    base_values: tuple[tuple[str, float], ...]  #: TokenPrices ``base``
    shocked: str  #: the token symbol the shock applies to
    named: dict  #: named stage → shock height
    horizon: int
    properties: tuple
    completed: object  #: instance -> bool, the cell's completion predicate
    schedule_prefix: str  #: e.g. "" / "ring3/" / "ring3/P1+P2/"
    model_factory: object  #: prices -> UtilityModel (the rational arm)
    gain_terms: object  #: view -> list of per-member (sign, amount, asset) folds
    #: how the folds combine into the model's completion gain:
    #: "single" (one fold, as-is), "sum" (0 + fold_1 + ...), or "diff"
    #: (fold_1 − fold_2, single-term folds — the auction's two legs).
    gain_shape: str


def _two_party_cell(premium: int) -> FamilyCell:
    """§5.2 swap: rational Bob, shock on Alice's (incoming) token."""
    from repro.checker import properties as props
    from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
    from repro.parties.rational import completion_gain_terms, two_party_model

    spec = HedgedTwoPartySpec(premium_a=2, premium_b=premium)
    builder = lambda spec=spec: HedgedTwoPartySwap(spec).build()
    probe = builder()
    contracts = tuple(probe.contracts.values())

    def completed(instance) -> bool:
        return (
            instance.contract("apricot_escrow").principal_state == "redeemed"
            and instance.contract("banana_escrow").principal_state == "redeemed"
        )

    def model_factory(prices):
        return two_party_model(spec, prices, contracts)

    def gain_terms(view):
        return [list(completion_gain_terms(spec.bob, view, contracts))]

    return FamilyCell(
        family="two-party",
        coalition="",
        premium=premium,
        pivots=(spec.bob,),
        metrics_parties=(spec.bob,),
        builder=builder,
        contracts=contracts,
        base_values=(),
        shocked=spec.token_a,
        # Bob's premium lands at height 2; Alice escrows at height 3 and
        # Bob's own escrow would land at height 4.
        named={"pre-stake": 1, "staked": 3},
        horizon=probe.horizon,
        properties=(props.no_stuck_escrow, props.two_party_hedged),
        completed=completed,
        schedule_prefix="",
        model_factory=model_factory,
        gain_terms=gain_terms,
        gain_shape="single",
    )


def _multi_party_probe(premium: int):
    """Shared ring:3 builder/probe for pivot and coalition blocks."""
    from repro.core.hedged_multi_party import HedgedMultiPartySwap
    from repro.graph.digraph import ring_graph

    builder = lambda p=premium: HedgedMultiPartySwap(
        graph=ring_graph(3), premium=p, leaders=("P0",)
    ).build()
    return builder, builder()


def _multi_party_completed(probe):
    arc_labels = tuple(sorted(probe.contracts))

    def completed(instance, labels=arc_labels) -> bool:
        return all(
            instance.contract(label).principal_state == "redeemed"
            for label in labels
        )

    return completed


def _multi_party_cell(premium: int) -> FamilyCell:
    """§7.1 ring:3 swap: rational P1, shock on the leader's token."""
    from repro.checker import properties as props
    from repro.parties.rational import completion_gain_terms, swap_party_model

    party = "P1"
    builder, probe = _multi_party_probe(premium)
    contracts = tuple(probe.contracts.values())
    schedule = probe.meta["schedule"]

    def model_factory(prices):
        return swap_party_model(party, prices, contracts)

    def gain_terms(view):
        return [list(completion_gain_terms(party, view, contracts))]

    return FamilyCell(
        family="multi-party",
        coalition="",
        premium=premium,
        pivots=(party,),
        metrics_parties=(party,),
        builder=builder,
        contracts=contracts,
        base_values=(),
        shocked="p0-token",
        # By phase 3 the pivot's escrow premium and its redemption premium
        # for the leader's key are both held; its principal is not yet
        # escrowed (followers escrow one round after the leaders).
        named={"pre-stake": 0, "staked": schedule.p3_start},
        horizon=schedule.horizon,
        properties=(props.no_stuck_escrow, props.multi_party_lemmas),
        completed=_multi_party_completed(probe),
        schedule_prefix="ring3/",
        model_factory=model_factory,
        gain_terms=gain_terms,
        gain_shape="single",
    )


def _multi_party_coalition_cell(premium: int) -> FamilyCell:
    """Adjacent ring members P1+P2 walking together (coalition ``P1+P2``).

    The members' shared arc (P1, P2) is internal: its escrow premium and
    redemption deposits forfeit member-to-member, so the joint walk is
    deterred only by the premiums facing P0 — a strictly smaller stake
    than either single pivot's, which is what prices the collusive π*.
    """
    from repro.checker import properties as props
    from repro.parties.rational import coalition_model, completion_gain_terms

    members = ("P1", "P2")
    coalition = "P1+P2"
    builder, probe = _multi_party_probe(premium)
    contracts = tuple(probe.contracts.values())
    schedule = probe.meta["schedule"]
    member_set = frozenset(members)

    def model_factory(prices):
        return coalition_model(members, prices, contracts)

    def gain_terms(view):
        # Mirrors coalition_model's joint gain: one fold per member in
        # sorted order, each with the member set's internal-flow rule.
        return [
            list(
                completion_gain_terms(p, view, contracts, coalition=member_set)
            )
            for p in sorted(member_set)
        ]

    return FamilyCell(
        family="multi-party",
        coalition=coalition,
        premium=premium,
        pivots=members,
        metrics_parties=members,
        builder=builder,
        contracts=contracts,
        base_values=(),
        shocked="p0-token",
        named={"pre-stake": 0, "staked": schedule.p3_start},
        horizon=schedule.horizon,
        properties=(props.no_stuck_escrow, props.multi_party_lemmas),
        completed=_multi_party_completed(probe),
        schedule_prefix=f"ring3/{coalition}/",
        model_factory=model_factory,
        gain_terms=gain_terms,
        gain_shape="sum",
    )


def _broker_prices_base(spec):
    return (
        # A ticket trades for seller_price coins: that is its fair value.
        (spec.ticket_token, float(spec.seller_price) / spec.tickets),
        (spec.coin_token, 1.0),
    )


def _broker_completed(instance) -> bool:
    return (
        instance.contract("ticket").escrow_state == "redeemed"
        and instance.contract("coin").escrow_state == "redeemed"
    )


def _broker_cell(premium: int) -> FamilyCell:
    """§8.2 deal: rational seller Bob, shock on the coin he is paid in."""
    from repro.checker import properties as props
    from repro.core.hedged_broker import HedgedBrokerDeal
    from repro.parties.rational import completion_gain_terms, swap_party_model
    from repro.protocols.base_broker import BrokerSpec

    spec = BrokerSpec()
    builder = lambda p=premium: HedgedBrokerDeal(premium=p).build()
    probe = builder()
    contracts = tuple(probe.contracts.values())
    deadlines = probe.meta["deadlines"]

    def model_factory(prices):
        return swap_party_model(spec.seller, prices, contracts)

    def gain_terms(view):
        return [list(completion_gain_terms(spec.seller, view, contracts))]

    return FamilyCell(
        family="broker",
        coalition="",
        premium=premium,
        pivots=(spec.seller,),
        metrics_parties=(spec.seller,),
        builder=builder,
        contracts=contracts,
        base_values=_broker_prices_base(spec),
        shocked=spec.coin_token,
        # Activation height: all E/T/R premiums held, asset escrows still
        # one round out.
        named={"pre-stake": 0, "staked": deadlines.activation},
        horizon=deadlines.horizon,
        properties=(props.no_stuck_escrow, props.broker_bounds),
        completed=_broker_completed,
        schedule_prefix="",
        model_factory=model_factory,
        gain_terms=gain_terms,
        gain_shape="single",
    )


def _broker_coalition_cell(premium: int) -> FamilyCell:
    """Seller + buyer squeezing the broker (coalition ``seller+buyer``).

    Bob and Carol trade with each other *through* Alice; colluding, the
    ticket-for-coins exchange is internal, so only their E deposits (which
    reimburse the broker's passthrough) and the redemption deposits facing
    Alice still deter the joint walk.
    """
    from repro.checker import properties as props
    from repro.core.hedged_broker import HedgedBrokerDeal
    from repro.parties.rational import coalition_model, completion_gain_terms
    from repro.protocols.base_broker import BrokerSpec

    spec = BrokerSpec()
    members = (spec.seller, spec.buyer)
    coalition = "seller+buyer"
    builder = lambda p=premium: HedgedBrokerDeal(premium=p).build()
    probe = builder()
    contracts = tuple(probe.contracts.values())
    deadlines = probe.meta["deadlines"]
    member_set = frozenset(members)

    def model_factory(prices):
        return coalition_model(members, prices, contracts)

    def gain_terms(view):
        return [
            list(
                completion_gain_terms(p, view, contracts, coalition=member_set)
            )
            for p in sorted(member_set)
        ]

    return FamilyCell(
        family="broker",
        coalition=coalition,
        premium=premium,
        pivots=members,
        metrics_parties=members,
        builder=builder,
        contracts=contracts,
        base_values=_broker_prices_base(spec),
        shocked=spec.coin_token,
        named={"pre-stake": 0, "staked": deadlines.activation},
        horizon=deadlines.horizon,
        properties=(props.no_stuck_escrow, props.broker_bounds),
        completed=_broker_completed,
        schedule_prefix=f"{coalition}/",
        model_factory=model_factory,
        gain_terms=gain_terms,
        gain_shape="sum",
    )


def _auction_cell(premium: int) -> FamilyCell:
    """§9 auction: rational auctioneer, shock on the bid coin.

    Her walk-forfeit is p per bid placed, so π prices n·p against the
    best bid: threshold s* = n·p / best_bid ≈ π (the caller quantizes π
    with :func:`premium_base`).
    """
    from repro.checker import properties as props
    from repro.core.hedged_auction import AuctionSpec, HedgedAuction
    from repro.parties.rational import auction_model

    spec = AuctionSpec(premium=premium)
    best_bid = max(spec.bids.values(), default=0)
    base_values = (
        # Tickets are worth what the best bidder will pay for them.
        (spec.ticket_token, float(best_bid) / spec.tickets),
        (spec.coin_token, 1.0),
    )
    builder = lambda spec=spec: HedgedAuction(spec=spec).build()
    probe = builder()
    contracts = tuple(probe.contracts.values())

    def completed(instance) -> bool:
        return instance.contract("coin").outcome == "completed"

    def model_factory(prices):
        return auction_model(spec, prices, contracts)

    def gain_terms(view):
        # The model's two legs — best_bid · price(coin) − tickets ·
        # price(ticket) — as one single-term fold per leg ("diff" shape).
        coin = view.chain(spec.coin_chain).asset(spec.coin_token)
        ticket = view.chain(spec.ticket_chain).asset(spec.ticket_token)
        return [[(1, best_bid, coin)], [(1, spec.tickets, ticket)]]

    return FamilyCell(
        family="auction",
        coalition="",
        premium=premium,
        pivots=(spec.auctioneer,),
        metrics_parties=(spec.auctioneer,),
        builder=builder,
        contracts=contracts,
        base_values=base_values,
        shocked=spec.coin_token,
        # Bids land at height 2; the declaration round is round 2.
        named={"pre-stake": 0, "staked": 2},
        horizon=probe.horizon,
        properties=(props.no_stuck_escrow, props.auction_lemmas),
        completed=completed,
        schedule_prefix="",
        model_factory=model_factory,
        gain_terms=gain_terms,
        gain_shape="diff",
    )


def _graph_cell(family: str, premium: int) -> FamilyCell:
    """A multi-party cell over an arbitrary deal graph (``ring:N``,
    ``complete:N``, ``figure3``).

    The generalization of :func:`_multi_party_cell`: same rational pivot
    construction, same stage aliases, same properties — only the digraph
    (and with it the Equations 1–2 premium schedule the builder derives)
    varies.  The pivot is the first follower in sorted order, and the
    shock lands on its incoming asset from its first sorted in-neighbor,
    mirroring the ring:3 cell's ``p0-token`` choice.
    """
    from repro.checker import properties as props
    from repro.core.hedged_multi_party import HedgedMultiPartySwap
    from repro.parties.rational import completion_gain_terms, swap_party_model

    parsed = parse_graph_family(family)
    if parsed is None:
        raise ValueError(
            f"not a graph-shaped family {family!r}: use ring:N, "
            "complete:N, or figure3"
        )
    graph, leaders = parsed
    builder = lambda p=premium, g=graph, l=leaders: HedgedMultiPartySwap(
        graph=g, premium=p, leaders=l
    ).build()
    probe = builder()
    contracts = tuple(probe.contracts.values())
    schedule = probe.meta["schedule"]
    pivot = min(p for p in graph.parties if p not in leaders)
    shocked_neighbor = min(graph.in_neighbors(pivot))
    shocked = f"{shocked_neighbor.lower()}-token"

    def model_factory(prices):
        return swap_party_model(pivot, prices, contracts)

    def gain_terms(view):
        return [list(completion_gain_terms(pivot, view, contracts))]

    return FamilyCell(
        family=family,
        coalition="",
        premium=premium,
        pivots=(pivot,),
        metrics_parties=(pivot,),
        builder=builder,
        contracts=contracts,
        base_values=(),
        shocked=shocked,
        # Same stage aliases as ring:3: followers hold their escrow and
        # redemption premiums by phase 3, principals are not yet locked.
        named={"pre-stake": 0, "staked": schedule.p3_start},
        horizon=schedule.horizon,
        properties=(props.no_stuck_escrow, props.multi_party_lemmas),
        completed=_multi_party_completed(probe),
        schedule_prefix=f"{family}/",
        model_factory=model_factory,
        gain_terms=gain_terms,
        gain_shape="single",
    )


_CELL_BUILDERS = {
    ("two-party", ""): _two_party_cell,
    ("multi-party", ""): _multi_party_cell,
    ("multi-party", "P1+P2"): _multi_party_coalition_cell,
    ("broker", ""): _broker_cell,
    ("broker", "seller+buyer"): _broker_coalition_cell,
    ("auction", ""): _auction_cell,
}


def family_cell(family: str, coalition: str, premium: int) -> FamilyCell:
    """Build the shared cell context for ``(family, coalition, premium)``.

    ``premium`` is the *effective integer* premium (what
    :func:`scaled_premium` quantizes a fraction π into against the
    family's :func:`premium_base`) — the same quantization the recorded
    ``premium`` axis carries, so the kernel engine can rebuild a cell's
    context from a scenario's axes alone.
    """
    builder = _CELL_BUILDERS.get((family, coalition))
    if builder is None:
        if not coalition and is_graph_family(family):
            return _graph_cell(family, premium)
        raise ValueError(
            f"unknown ablation cell ({family!r}, {coalition!r}); "
            f"known: {sorted(_CELL_BUILDERS)} or a graph-shaped family "
            "(ring:N, complete:N, figure3) with no coalition"
        )
    return builder(premium)


def _add_cell_blocks(matrix, cell: FamilyCell, pi, shock_fractions, stages) -> None:
    """Expand one cell context into its comply/rational blocks."""
    from repro.parties.rational import TokenPrices, rational_party

    for shock in shock_fractions:
        for stage, height in stage_heights(stages, cell.named, cell.horizon):
            prices = TokenPrices(
                base=cell.base_values,
                shocked=cell.shocked,
                fraction=shock,
                at_height=height,
            )

            def transform(actor, cell=cell, prices=prices):
                return rational_party(actor, cell.model_factory(prices))

            if cell.coalition:
                strategies = _make_coalition_strategies(
                    {member: transform for member in cell.pivots}
                )
                expansion = dict(
                    max_adversaries=2, min_adversaries=2, include_compliant=True
                )
            else:
                strategies = _make_strategies(cell.pivots[0], transform)
                expansion = dict(max_adversaries=1, include_compliant=False)
            matrix.add_block(
                family=cell.family,
                schedule=(
                    f"{cell.schedule_prefix}pi{fmt_fraction(pi)}"
                    f"/s{fmt_fraction(shock)}@{stage}"
                ),
                builder=cell.builder,
                properties=cell.properties,
                strategies=strategies,
                extra_axes=_axes(
                    pi, cell.premium, shock, stage, height, cell.coalition
                ),
                metrics=_make_metrics(cell.metrics_parties, prices, cell.completed),
                **expansion,
            )


def _make_adder(family: str, coalition: str = ""):
    """An adder over π for one (family, coalition) pair of cell contexts."""

    def add(matrix, premium_fractions, shock_fractions, stages) -> None:
        base = premium_base(family)
        for pi in premium_fractions:
            cell = family_cell(family, coalition, scaled_premium(pi, base))
            _add_cell_blocks(matrix, cell, pi, shock_fractions, stages)

    return add


_FAMILY_ADDERS = {family: _make_adder(family) for family in ABLATION_FAMILIES}

_COALITION_ADDERS = {
    (family, coalition): _make_adder(family, coalition)
    for family, coalitions in ABLATION_COALITIONS.items()
    for coalition in coalitions
}


# ----------------------------------------------------------------------
# closed-form thresholds (for the deterrence-theorem tests)
# ----------------------------------------------------------------------
def deterrence_stake(family: str, pi: float) -> float:
    """The pivot's walk-forfeit at the ``staked`` stage, in value units.

    The rational pivot walks iff the shocked value drop exceeds this stake
    (``PRINCIPAL · s > stake`` for the swap families, ``best_bid · s`` for
    the auction), so ``stake / principal_value`` is the closed-form
    deterrence threshold the measured frontier must reproduce.
    """
    if family == "two-party":
        return float(scaled_premium(pi))
    if family == "multi-party":
        from repro.core.premiums import (
            escrow_premium_amounts,
            redemption_premium_amount,
        )
        from repro.graph.digraph import ring_graph

        graph, p = ring_graph(3), scaled_premium(pi)
        # P1's escrow premium on (P1,P2) plus its redemption premium for
        # P0's key on (P0,P1), both still held at phase 3.
        return float(
            escrow_premium_amounts(graph, ("P0",), p)[("P1", "P2")]
            + redemption_premium_amount(graph, ("P1", "P2", "P0"), "P0", p)
        )
    if family == "broker":
        from repro.core.hedged_broker import broker_premium_tables
        from repro.core.premiums import pruned_redemption_premium_amount
        from repro.protocols.base_broker import BrokerSpec

        spec, p = BrokerSpec(), scaled_premium(pi)
        tables = broker_premium_tables(spec, p)
        # The binding deviation is *escrow, then withhold the key*: deal
        # redemption needs every party's hashkey, so Bob can still wreck
        # the trade after escrowing — at which point his escrow premium
        # E(B,A) has already refunded and only his redemption premium
        # deposits (as redeemer of (A,B)) are forfeit.  The rational pivot
        # finds that cheaper walk, so it is the measured frontier.
        keys = tables["required_keys"][(spec.broker, spec.seller)]
        graph, contract_of = spec.graph(), tables["contract_of"]
        stake = 0
        for leader in keys:
            # every (seller → leader) path is unique in the deal digraph
            (path,) = graph.simple_paths(spec.seller, leader)
            stake += pruned_redemption_premium_amount(
                graph, path, spec.broker, p, contract_of
            )
        return float(stake)
    if family == "auction":
        from repro.core.hedged_auction import AuctionSpec

        spec = AuctionSpec()
        best_bid = max(spec.bids.values())
        p = scaled_premium(pi, best_bid // len(spec.bidders))
        return float(p * len(spec.bidders))
    raise ValueError(f"unknown ablation family {family!r}")


def shocked_notional(family: str) -> float:
    """The value the staked-stage shock applies to (denominator of s*)."""
    if family == "auction":
        from repro.core.hedged_auction import AuctionSpec

        return float(max(AuctionSpec().bids.values()))
    return float(PRINCIPAL)


def premium_base(family: str) -> int:
    """The base notional a family's π is quantized against: the integer
    premium a fraction buys is ``round(π · premium_base)``."""
    if family == "auction":
        from repro.core.hedged_auction import AuctionSpec

        spec = AuctionSpec()
        return max(spec.bids.values()) // len(spec.bidders)
    return PRINCIPAL


def coalition_deterrence_stake(family: str, coalition: str, pi: float) -> float | None:
    """The coalition's *outsider-facing* walk-forfeit at the staked stage.

    Internal deposits (member-to-member forfeits) are excluded — they
    move value inside the coalition, so they deter nothing.  Returns
    ``None`` when no finite stake deters the joint walk at any premium
    (the broker coalition; see :func:`closed_form_coalition_pi_star`).
    """
    if (family, coalition) == ("multi-party", "P1+P2"):
        from repro.core.premiums import (
            escrow_premium_amounts,
            redemption_premium_amount,
        )
        from repro.graph.digraph import ring_graph

        graph, p = ring_graph(3), scaled_premium(pi)
        # P1's escrow premium on (P1,P2) forfeits to P2 — internal.  What
        # faces the outsider P0: P2's escrow premium on (P2,P0), plus P1's
        # redemption premium for P0's key on (P0,P1).  (P2's redemption
        # deposits sit on (P1,P2), facing P1 — internal.)
        return float(
            escrow_premium_amounts(graph, ("P0",), p)[("P2", "P0")]
            + redemption_premium_amount(graph, ("P1", "P2", "P0"), "P0", p)
        )
    if (family, coalition) == ("broker", "seller+buyer"):
        # Deal redemption needs every party's hashkey, and the E/T/R
        # deposits all resolve *before* the payout round — so the seller
        # and buyer can always wait for the stake-free tail and then
        # withhold their keys together.  At that point walking forfeits
        # nothing while completing still costs them the broker's markup:
        # no finite premium deters the joint walk.
        return None
    raise ValueError(
        f"unknown coalition ({family!r}, {coalition!r}); "
        f"known: {sorted((f, c) for f, cs in ABLATION_COALITIONS.items() for c in cs)}"
    )


def closed_form_coalition_pi_star(
    family: str, coalition: str, shock: float
) -> float | None:
    """The continuous collusive deterrence threshold, or ``None``.

    Same construction as :func:`closed_form_pi_star`, but over the
    coalition's outsider-facing stake sum
    (:func:`coalition_deterrence_stake`): the joint pivot walks iff the
    shocked value drop on its external flows exceeds the external stake.
    For the ring-adjacent ``P1+P2`` pair the external stake (``3p``
    escrow toward P0 plus ``p`` redemption) happens to equal the single
    pivot's ``4p``, so the collusive threshold coincides with the single
    one — collusion never pays a discount.  ``None`` means the walk is
    un-hedgeable rent: the broker's ``seller+buyer`` pair always finds a
    stake-free round from which withholding keys strands the markup, so
    the refined frontier must report the row undeterred at every probed
    premium.
    """
    base = premium_base(family)
    ref_premium = 4  # exactly representable: ref_pi · base == 4 for all bases
    stake = coalition_deterrence_stake(family, coalition, ref_premium / base)
    if stake is None:
        return None
    slope = stake / ref_premium
    return shocked_notional(family) * shock / (slope * base)


def closed_form_pi_star(family: str, shock: float) -> float:
    """The continuous §5.2-style deterrence threshold for a staked shock.

    :func:`deterrence_stake` is linear in the integer premium π buys
    (two-party ``p_b``, ring ``4p``, broker ``3p``, auction ``n·p``); the
    un-quantized threshold is the π at which that stake equals the shocked
    value drop.  The *measured* (bisected) π* differs from this by at most
    half a premium unit of quantization, ``0.5 / premium_base`` — well
    inside the refinement engine's default tolerance of 1/64.
    """
    base = premium_base(family)
    ref_premium = 4  # exactly representable: ref_pi · base == 4 for all bases
    slope = deterrence_stake(family, ref_premium / base) / ref_premium
    return shocked_notional(family) * shock / (slope * base)


# ----------------------------------------------------------------------
# the grid and its registered factories
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationGrid:
    """A declarative (families × π × s × stage) grid specification."""

    families: tuple[str, ...] = ABLATION_FAMILIES
    premium_fractions: tuple[float, ...] = DEFAULT_PREMIUM_FRACTIONS
    shock_fractions: tuple[float, ...] = DEFAULT_SHOCK_FRACTIONS
    stages: tuple[str, ...] = DEFAULT_STAGES
    coalitions: bool = False
    seed: int = 0

    def cells(self) -> int:
        """Single-pivot cell count (exact for named stages; the ``all``
        pseudo-stage and coalition blocks add more — build the matrix and
        count its blocks for those)."""
        return (
            len(self.families)
            * len(self.premium_fractions)
            * len(self.shock_fractions)
            * len(self.stages)
        )

    def matrix(self) -> ScenarioMatrix:
        return ablation_matrix(
            families=self.families,
            premium_fractions=self.premium_fractions,
            shock_fractions=self.shock_fractions,
            stages=self.stages,
            coalitions=self.coalitions,
            seed=self.seed,
        )


def _family_adder(family: str):
    """The matrix adder for ``family``: a registered named family's, or a
    fresh generic one for a graph-shaped family."""
    adder = _FAMILY_ADDERS.get(family)
    if adder is not None:
        return adder
    return _make_adder(family)


def _validate_grid(families, stages) -> None:
    unknown = {
        family
        for family in families
        if family not in _FAMILY_ADDERS and not is_graph_family(family)
    }
    if unknown:
        raise ValueError(
            f"unknown ablation families {sorted(unknown)}; "
            f"known: {sorted(_FAMILY_ADDERS)} or graph-shaped "
            "(ring:N, complete:N, figure3)"
        )
    bad_stages = [stage for stage in stages if not valid_stage(stage)]
    if bad_stages:
        raise ValueError(
            f"unknown shock stages {sorted(bad_stages)}; "
            f"known: {list(DEFAULT_STAGES)}, 'round:K', or 'all'"
        )


def ablation_matrix_spec(
    families: tuple[str, ...] | None = None,
    premium_fractions: tuple[float, ...] | None = None,
    shock_fractions: tuple[float, ...] | None = None,
    stages: tuple[str, ...] | None = None,
    coalitions: bool = False,
    seed: int = 0,
) -> MatrixSpec:
    """The (validated, normalized) rebuild recipe of :func:`ablation_matrix`
    — computable without expanding a single block, which is what lets
    experiment specs be emitted cheaply.  :func:`ablation_matrix` builds
    from this same recipe, so ``ablation_matrix(...).spec`` and
    ``ablation_matrix_spec(...)`` are always equal.
    """
    families = tuple(families) if families is not None else ABLATION_FAMILIES
    premium_fractions = (
        tuple(canon_float(p) for p in premium_fractions)
        if premium_fractions is not None
        else DEFAULT_PREMIUM_FRACTIONS
    )
    shock_fractions = (
        tuple(canon_float(s) for s in shock_fractions)
        if shock_fractions is not None
        else DEFAULT_SHOCK_FRACTIONS
    )
    stages = tuple(stages) if stages is not None else DEFAULT_STAGES
    _validate_grid(families, stages)
    return MatrixSpec(
        factory="ablation",
        kwargs=(
            ("coalitions", coalitions),
            ("families", families),
            ("premium_fractions", premium_fractions),
            ("seed", seed),
            ("shock_fractions", shock_fractions),
            ("stages", stages),
        ),
    )


@register_matrix_factory("ablation")
def ablation_matrix(
    families: tuple[str, ...] | None = None,
    premium_fractions: tuple[float, ...] | None = None,
    shock_fractions: tuple[float, ...] | None = None,
    stages: tuple[str, ...] | None = None,
    coalitions: bool = False,
    seed: int = 0,
) -> ScenarioMatrix:
    """Build the rational-adversary ablation matrix for the given grid.

    Registered as the ``ablation`` worker-pool factory: the returned
    matrix carries a :class:`~repro.campaign.pool.MatrixSpec` rebuild
    recipe made only of the primitive grid parameters, so persistent pools
    rebuild it worker-side and verify the structural digest before running
    anything.
    """
    spec = ablation_matrix_spec(
        families=families,
        premium_fractions=premium_fractions,
        shock_fractions=shock_fractions,
        stages=stages,
        coalitions=coalitions,
        seed=seed,
    )
    kwargs = dict(spec.kwargs)
    families = kwargs["families"]
    premium_fractions = kwargs["premium_fractions"]
    shock_fractions = kwargs["shock_fractions"]
    stages = kwargs["stages"]
    matrix = ScenarioMatrix(seed=seed)
    for family in families:
        _family_adder(family)(matrix, premium_fractions, shock_fractions, stages)
        if coalitions:
            for coalition in ABLATION_COALITIONS.get(family, ()):
                _COALITION_ADDERS[(family, coalition)](
                    matrix, premium_fractions, shock_fractions, stages
                )
    matrix.spec = spec
    return matrix


@register_matrix_factory("ablation_cell")
def ablation_cell(
    family: str,
    pi: float,
    shock: float,
    stage: str,
    coalition: str = "",
    seed: int = 0,
) -> ScenarioMatrix:
    """One ``(family, π, shock, stage)`` cell as a standalone matrix.

    The refinement engine's probe unit: a two-scenario (comply/rational)
    matrix at an arbitrary — typically bisected — premium fraction,
    registered as its own pool factory so probes dispatch through a
    persistent :class:`~repro.campaign.pool.WorkerPool` with the same
    worker-side digest audit as full grids.  ``coalition`` selects a named
    joint-pivot cell instead of the family's single pivot.
    """
    if family not in _FAMILY_ADDERS and not is_graph_family(family):
        raise ValueError(
            f"unknown ablation family {family!r}; known: "
            f"{sorted(_FAMILY_ADDERS)} or graph-shaped "
            "(ring:N, complete:N, figure3)"
        )
    if not valid_stage(stage) or stage == STAGE_ALL:
        raise ValueError(
            f"ablation_cell needs one concrete stage, got {stage!r} "
            f"(known: {list(DEFAULT_STAGES)} or 'round:K')"
        )
    pi = canon_float(pi)
    shock = canon_float(shock)
    matrix = ScenarioMatrix(seed=seed)
    if coalition:
        adder = _COALITION_ADDERS.get((family, coalition))
        if adder is None:
            raise ValueError(
                f"unknown coalition {coalition!r} for family {family!r}; "
                f"known: {sorted(ABLATION_COALITIONS.get(family, ()))}"
            )
        adder(matrix, (pi,), (shock,), (stage,))
    else:
        _family_adder(family)(matrix, (pi,), (shock,), (stage,))
    matrix.spec = MatrixSpec(
        factory="ablation_cell",
        kwargs=(
            ("coalition", coalition),
            ("family", family),
            ("pi", pi),
            ("seed", seed),
            ("shock", shock),
            ("stage", stage),
        ),
    )
    return matrix
