"""The rational-adversary ablation grid.

:func:`ablation_matrix` crosses protocol families with utility-driven
actors (`repro.parties.rational`) over premium fractions × price-shock
sizes × shock stages, producing an ordinary
:class:`repro.campaign.matrix.ScenarioMatrix` that runs through every
existing backend (serial, one-shot process pool, persistent
:class:`~repro.campaign.pool.WorkerPool`).

Each grid cell ``(family, π, s, stage)`` becomes one matrix block holding
two scenarios for the family's *pivot* party (the one whose incoming asset
takes the shock):

- the **comply** arm — an identity transform; the protocol completes and
  the pivot's realized utility under the shocked price path is the cost of
  honoring the deal,
- the **rational** arm — the pivot wrapped in a
  :class:`~repro.parties.rational.UtilityModel`; it walks away exactly
  when quitting beats finishing given its live premium stake.

Both arms carry a metrics hook recording ``completed`` and the pivot's
``utility`` (final balance deltas valued at the post-shock prices), which
is what :func:`repro.campaign.ablation.frontier.reduce_frontier` pairs
into deviation-profitability cells.

Premium sizing maps the grid fraction π onto each family's integer premium
knob against the pivot's principal value (e.g. two-party:
``p_b = round(π · amount_b)``); :func:`deterrence_stake` exposes the
resulting closed-form walk-forfeit at the staked stage, so tests can check
the measured frontier against the paper's π-threshold claim exactly.

Shock *stages* pin the shock height to protocol structure rather than raw
numbers: ``pre-stake`` hits before the pivot has deposited anything
(walking is free — no premium can deter it, and no victim has escrowed),
``staked`` hits after its premiums are held but before its principal is
locked — the window the paper's premiums are sized for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.pool import MatrixSpec, register_matrix_factory

ABLATION_FAMILIES = ("two-party", "multi-party", "broker", "auction")

#: premium fractions π swept by the default grid (0 = unhedged baseline).
DEFAULT_PREMIUM_FRACTIONS = (0.0, 0.01, 0.02, 0.03, 0.05, 0.08)

#: relative price drops s; chosen off the grid's stake values so the
#: walk/complete decision is never a floating-point tie.
DEFAULT_SHOCK_FRACTIONS = (0.005, 0.015, 0.025, 0.045, 0.065, 0.105)

DEFAULT_STAGES = ("pre-stake", "staked")

#: the principal notional every family's π is sized against.
PRINCIPAL = 100


def fmt(value: float) -> str:
    """Canonical axis rendering of a grid fraction ("0.025", "0")."""
    return format(value, "g")


def scaled_premium(fraction: float, base: int = PRINCIPAL) -> int:
    """The integer premium a fraction π buys on a ``base`` principal."""
    return int(round(fraction * base))


def _comply(actor):
    return actor


def _make_strategies(party: str, transform):
    """The two arms of one cell, as checker-style named strategies."""
    from repro.checker.strategies import NamedStrategy

    return {
        party: (
            NamedStrategy(label="comply", transform=_comply),
            NamedStrategy(label="rational", transform=transform),
        )
    }


def _make_metrics(party: str, prices, completed):
    """The cell's digest-covered metrics: completion flag + pivot utility."""

    def metrics(instance, result):
        return (
            ("completed", 1.0 if completed(instance) else 0.0),
            (
                "utility",
                result.payoffs.realized_utility(party, prices, instance.horizon),
            ),
        )

    return metrics


def _axes(pi: float, premium: int, shock: float, stage: str, height: int):
    """Cell coordinates; ``premium`` is the *effective* integer premium the
    fraction π bought after rounding, recorded so a quantized grid (e.g.
    π = 0.025 on a 100 principal → premium 2) can never misstate what
    actually hedged the run."""
    return (
        ("pi", fmt(pi)),
        ("premium", str(premium)),
        ("shock", fmt(shock)),
        ("stage", stage),
        ("shock_height", str(height)),
    )


# ----------------------------------------------------------------------
# family cells
# ----------------------------------------------------------------------
def _add_two_party(matrix, premium_fractions, shock_fractions, stages) -> None:
    """§5.2 swap: rational Bob, shock on Alice's (incoming) token."""
    from repro.checker import properties as props
    from repro.core.hedged_two_party import HedgedTwoPartySpec, HedgedTwoPartySwap
    from repro.parties.rational import TokenPrices, rational_party, two_party_model

    for pi in premium_fractions:
        spec = HedgedTwoPartySpec(premium_a=2, premium_b=scaled_premium(pi))
        builder = lambda spec=spec: HedgedTwoPartySwap(spec).build()
        probe = builder()
        contracts = tuple(probe.contracts.values())
        # Bob's premium lands at height 2; Alice escrows at height 3 and
        # Bob's own escrow would land at height 4.
        heights = {"pre-stake": 1, "staked": 3}

        def completed(instance) -> bool:
            return (
                instance.contract("apricot_escrow").principal_state == "redeemed"
                and instance.contract("banana_escrow").principal_state == "redeemed"
            )

        for shock in shock_fractions:
            for stage in stages:
                height = heights[stage]
                prices = TokenPrices(
                    shocked=spec.token_a, fraction=shock, at_height=height
                )

                def transform(actor, spec=spec, prices=prices, contracts=contracts):
                    return rational_party(
                        actor, two_party_model(spec, prices, contracts)
                    )

                matrix.add_block(
                    family="two-party",
                    schedule=f"pi{fmt(pi)}/s{fmt(shock)}@{stage}",
                    builder=builder,
                    properties=(props.no_stuck_escrow, props.two_party_hedged),
                    strategies=_make_strategies(spec.bob, transform),
                    max_adversaries=1,
                    include_compliant=False,
                    extra_axes=_axes(pi, spec.premium_b, shock, stage, height),
                    metrics=_make_metrics(spec.bob, prices, completed),
                )


def _add_multi_party(matrix, premium_fractions, shock_fractions, stages) -> None:
    """§7.1 ring:3 swap: rational P1, shock on the leader's token."""
    from repro.checker import properties as props
    from repro.core.hedged_multi_party import HedgedMultiPartySwap
    from repro.graph.digraph import ring_graph
    from repro.parties.rational import TokenPrices, rational_party, swap_party_model

    party, leaders = "P1", ("P0",)
    for pi in premium_fractions:
        premium = scaled_premium(pi)
        builder = lambda p=premium: HedgedMultiPartySwap(
            graph=ring_graph(3), premium=p, leaders=leaders
        ).build()
        probe = builder()
        contracts = tuple(probe.contracts.values())
        schedule = probe.meta["schedule"]
        # By phase 3 the pivot's escrow premium and its redemption premium
        # for the leader's key are both held; its principal is not yet
        # escrowed (followers escrow one round after the leaders).
        heights = {"pre-stake": 0, "staked": schedule.p3_start}
        arc_labels = tuple(sorted(probe.contracts))

        def completed(instance, labels=arc_labels) -> bool:
            return all(
                instance.contract(label).principal_state == "redeemed"
                for label in labels
            )

        for shock in shock_fractions:
            for stage in stages:
                height = heights[stage]
                prices = TokenPrices(
                    shocked="p0-token", fraction=shock, at_height=height
                )

                def transform(actor, prices=prices, contracts=contracts):
                    return rational_party(
                        actor, swap_party_model(party, prices, contracts)
                    )

                matrix.add_block(
                    family="multi-party",
                    schedule=f"ring3/pi{fmt(pi)}/s{fmt(shock)}@{stage}",
                    builder=builder,
                    properties=(props.no_stuck_escrow, props.multi_party_lemmas),
                    strategies=_make_strategies(party, transform),
                    max_adversaries=1,
                    include_compliant=False,
                    extra_axes=_axes(pi, premium, shock, stage, height),
                    metrics=_make_metrics(party, prices, completed),
                )


def _add_broker(matrix, premium_fractions, shock_fractions, stages) -> None:
    """§8.2 deal: rational seller Bob, shock on the coin he is paid in."""
    from repro.checker import properties as props
    from repro.core.hedged_broker import HedgedBrokerDeal
    from repro.parties.rational import TokenPrices, rational_party, swap_party_model
    from repro.protocols.base_broker import BrokerSpec

    spec = BrokerSpec()
    base_values = (
        # A ticket trades for seller_price coins: that is its fair value.
        (spec.ticket_token, float(spec.seller_price) / spec.tickets),
        (spec.coin_token, 1.0),
    )
    for pi in premium_fractions:
        premium = scaled_premium(pi)
        builder = lambda p=premium: HedgedBrokerDeal(premium=p).build()
        probe = builder()
        contracts = tuple(probe.contracts.values())
        # Activation height: all E/T/R premiums held, asset escrows still
        # one round out.
        heights = {"pre-stake": 0, "staked": probe.meta["deadlines"].activation}

        def completed(instance) -> bool:
            return (
                instance.contract("ticket").escrow_state == "redeemed"
                and instance.contract("coin").escrow_state == "redeemed"
            )

        for shock in shock_fractions:
            for stage in stages:
                height = heights[stage]
                prices = TokenPrices(
                    base=base_values,
                    shocked=spec.coin_token,
                    fraction=shock,
                    at_height=height,
                )

                def transform(
                    actor, spec=spec, prices=prices, contracts=contracts
                ):
                    return rational_party(
                        actor, swap_party_model(spec.seller, prices, contracts)
                    )

                matrix.add_block(
                    family="broker",
                    schedule=f"pi{fmt(pi)}/s{fmt(shock)}@{stage}",
                    builder=builder,
                    properties=(props.no_stuck_escrow, props.broker_bounds),
                    strategies=_make_strategies(spec.seller, transform),
                    max_adversaries=1,
                    include_compliant=False,
                    extra_axes=_axes(pi, premium, shock, stage, height),
                    metrics=_make_metrics(spec.seller, prices, completed),
                )


def _add_auction(matrix, premium_fractions, shock_fractions, stages) -> None:
    """§9 auction: rational auctioneer, shock on the bid coin."""
    from repro.checker import properties as props
    from repro.core.hedged_auction import AuctionSpec, HedgedAuction
    from repro.parties.rational import TokenPrices, auction_model, rational_party

    probe_spec = AuctionSpec()
    best_bid = max(probe_spec.bids.values())
    bidders = len(probe_spec.bidders)
    base_values = (
        # Tickets are worth what the best bidder will pay for them.
        (probe_spec.ticket_token, float(best_bid) / probe_spec.tickets),
        (probe_spec.coin_token, 1.0),
    )
    for pi in premium_fractions:
        # Her walk-forfeit is p per bid placed, so π prices n·p against the
        # best bid: threshold s* = n·p / best_bid ≈ π.
        premium = scaled_premium(pi, best_bid // bidders)
        spec = AuctionSpec(premium=premium)
        builder = lambda spec=spec: HedgedAuction(spec=spec).build()
        probe = builder()
        contracts = tuple(probe.contracts.values())
        # Bids land at height 2; the declaration round is round 2.
        heights = {"pre-stake": 0, "staked": 2}

        def completed(instance) -> bool:
            return instance.contract("coin").outcome == "completed"

        for shock in shock_fractions:
            for stage in stages:
                height = heights[stage]
                prices = TokenPrices(
                    base=base_values,
                    shocked=spec.coin_token,
                    fraction=shock,
                    at_height=height,
                )

                def transform(actor, spec=spec, prices=prices, contracts=contracts):
                    return rational_party(
                        actor, auction_model(spec, prices, contracts)
                    )

                matrix.add_block(
                    family="auction",
                    schedule=f"pi{fmt(pi)}/s{fmt(shock)}@{stage}",
                    builder=builder,
                    properties=(props.no_stuck_escrow, props.auction_lemmas),
                    strategies=_make_strategies(spec.auctioneer, transform),
                    max_adversaries=1,
                    include_compliant=False,
                    extra_axes=_axes(pi, premium, shock, stage, height),
                    metrics=_make_metrics(spec.auctioneer, prices, completed),
                )


_FAMILY_ADDERS = {
    "two-party": _add_two_party,
    "multi-party": _add_multi_party,
    "broker": _add_broker,
    "auction": _add_auction,
}


# ----------------------------------------------------------------------
# closed-form thresholds (for the deterrence-theorem tests)
# ----------------------------------------------------------------------
def deterrence_stake(family: str, pi: float) -> float:
    """The pivot's walk-forfeit at the ``staked`` stage, in value units.

    The rational pivot walks iff the shocked value drop exceeds this stake
    (``PRINCIPAL · s > stake`` for the swap families, ``best_bid · s`` for
    the auction), so ``stake / principal_value`` is the closed-form
    deterrence threshold the measured frontier must reproduce.
    """
    if family == "two-party":
        return float(scaled_premium(pi))
    if family == "multi-party":
        from repro.core.premiums import (
            escrow_premium_amounts,
            redemption_premium_amount,
        )
        from repro.graph.digraph import ring_graph

        graph, p = ring_graph(3), scaled_premium(pi)
        # P1's escrow premium on (P1,P2) plus its redemption premium for
        # P0's key on (P0,P1), both still held at phase 3.
        return float(
            escrow_premium_amounts(graph, ("P0",), p)[("P1", "P2")]
            + redemption_premium_amount(graph, ("P1", "P2", "P0"), "P0", p)
        )
    if family == "broker":
        from repro.core.hedged_broker import broker_premium_tables
        from repro.core.premiums import pruned_redemption_premium_amount
        from repro.protocols.base_broker import BrokerSpec

        spec, p = BrokerSpec(), scaled_premium(pi)
        tables = broker_premium_tables(spec, p)
        # The binding deviation is *escrow, then withhold the key*: deal
        # redemption needs every party's hashkey, so Bob can still wreck
        # the trade after escrowing — at which point his escrow premium
        # E(B,A) has already refunded and only his redemption premium
        # deposits (as redeemer of (A,B)) are forfeit.  The rational pivot
        # finds that cheaper walk, so it is the measured frontier.
        keys = tables["required_keys"][(spec.broker, spec.seller)]
        graph, contract_of = spec.graph(), tables["contract_of"]
        stake = 0
        for leader in keys:
            # every (seller → leader) path is unique in the deal digraph
            (path,) = graph.simple_paths(spec.seller, leader)
            stake += pruned_redemption_premium_amount(
                graph, path, spec.broker, p, contract_of
            )
        return float(stake)
    if family == "auction":
        from repro.core.hedged_auction import AuctionSpec

        spec = AuctionSpec()
        best_bid = max(spec.bids.values())
        p = scaled_premium(pi, best_bid // len(spec.bidders))
        return float(p * len(spec.bidders))
    raise ValueError(f"unknown ablation family {family!r}")


def shocked_notional(family: str) -> float:
    """The value the staked-stage shock applies to (denominator of s*)."""
    if family == "auction":
        from repro.core.hedged_auction import AuctionSpec

        return float(max(AuctionSpec().bids.values()))
    return float(PRINCIPAL)


# ----------------------------------------------------------------------
# the grid and its registered factory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationGrid:
    """A declarative (families × π × s × stage) grid specification."""

    families: tuple[str, ...] = ABLATION_FAMILIES
    premium_fractions: tuple[float, ...] = DEFAULT_PREMIUM_FRACTIONS
    shock_fractions: tuple[float, ...] = DEFAULT_SHOCK_FRACTIONS
    stages: tuple[str, ...] = DEFAULT_STAGES
    seed: int = 0

    def cells(self) -> int:
        return (
            len(self.families)
            * len(self.premium_fractions)
            * len(self.shock_fractions)
            * len(self.stages)
        )

    def matrix(self) -> ScenarioMatrix:
        return ablation_matrix(
            families=self.families,
            premium_fractions=self.premium_fractions,
            shock_fractions=self.shock_fractions,
            stages=self.stages,
            seed=self.seed,
        )


@register_matrix_factory("ablation")
def ablation_matrix(
    families: tuple[str, ...] | None = None,
    premium_fractions: tuple[float, ...] | None = None,
    shock_fractions: tuple[float, ...] | None = None,
    stages: tuple[str, ...] | None = None,
    seed: int = 0,
) -> ScenarioMatrix:
    """Build the rational-adversary ablation matrix for the given grid.

    Registered as the ``ablation`` worker-pool factory: the returned
    matrix carries a :class:`~repro.campaign.pool.MatrixSpec` rebuild
    recipe made only of the primitive grid parameters, so persistent pools
    rebuild it worker-side and verify the structural digest before running
    anything.
    """
    families = tuple(families) if families is not None else ABLATION_FAMILIES
    premium_fractions = (
        tuple(float(p) for p in premium_fractions)
        if premium_fractions is not None
        else DEFAULT_PREMIUM_FRACTIONS
    )
    shock_fractions = (
        tuple(float(s) for s in shock_fractions)
        if shock_fractions is not None
        else DEFAULT_SHOCK_FRACTIONS
    )
    stages = tuple(stages) if stages is not None else DEFAULT_STAGES
    unknown = set(families) - set(_FAMILY_ADDERS)
    if unknown:
        raise ValueError(
            f"unknown ablation families {sorted(unknown)}; "
            f"known: {sorted(_FAMILY_ADDERS)}"
        )
    unknown_stages = set(stages) - set(DEFAULT_STAGES)
    if unknown_stages:
        raise ValueError(
            f"unknown shock stages {sorted(unknown_stages)}; "
            f"known: {list(DEFAULT_STAGES)}"
        )
    matrix = ScenarioMatrix(seed=seed)
    for family in families:
        _FAMILY_ADDERS[family](matrix, premium_fractions, shock_fractions, stages)
    matrix.spec = MatrixSpec(
        factory="ablation",
        kwargs=(
            ("families", families),
            ("premium_fractions", premium_fractions),
            ("seed", seed),
            ("shock_fractions", shock_fractions),
            ("stages", stages),
        ),
    )
    return matrix
