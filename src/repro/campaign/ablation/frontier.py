"""Reduce an ablation campaign into a deviation-profitability frontier.

:func:`reduce_frontier` consumes the :class:`~repro.campaign.runner.CampaignReport`
an ablation matrix produced — on any backend, merged from any shards — and
pairs each grid cell's two arms into a :class:`FrontierCell`:

- ``walked``: did the rational pivot abandon the protocol?
- ``deviation_gain``: rational-arm utility minus comply-arm utility, both
  measured on live runs at post-shock prices — deviating *paid* iff this
  is positive,
- ``victim_net``: the best premium compensation any counterparty collected
  in the rational arm (zero when the walk was victimless).

Cells aggregate into :class:`FrontierRow` per ``(family, stage, shock)``:
``pi_star`` is the smallest swept premium fraction at which the rational
pivot completes — the measured deterrence frontier.  ``None`` means no
swept premium deters that shock (always the case at the ``pre-stake``
stage, where walking forfeits nothing).

Digest rules: the frontier digest hashes a preamble naming the underlying
run digest and coverage, then every cell in canonical order.  The run
digest already folds in the matrix identity and the effective selection,
so a frontier from a partial run can never collide with one from full
coverage, and serial/pooled/sharded-then-merged runs of the same grid
yield byte-identical frontier digests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from hashlib import sha256

from repro.campaign.runner import CampaignReport


@dataclass(frozen=True)
class FrontierCell:
    """One measured grid cell: a (family, stage, shock, π) pair of arms."""

    family: str
    stage: str
    shock: float
    pi: float
    walked: bool
    rational_utility: float
    comply_utility: float
    victim_net: int

    @property
    def deviation_gain(self) -> float:
        return self.rational_utility - self.comply_utility

    @property
    def deviation_profitable(self) -> bool:
        return self.deviation_gain > 0

    def describe(self) -> str:
        return "|".join(
            (
                self.family,
                self.stage,
                repr(self.shock),
                repr(self.pi),
                "walked" if self.walked else "completed",
                repr(self.rational_utility),
                repr(self.comply_utility),
                str(self.victim_net),
            )
        )


@dataclass(frozen=True)
class FrontierRow:
    """The frontier along π for one (family, stage, shock) line."""

    family: str
    stage: str
    shock: float
    #: smallest swept π at which the rational pivot completes; None if the
    #: shock stays profitable to walk from at every swept premium.
    pi_star: float | None
    cells: tuple[FrontierCell, ...]

    @property
    def deterred(self) -> bool:
        return self.pi_star is not None


@dataclass(frozen=True)
class FrontierReport:
    """The reduced frontier plus its reproducibility digest."""

    matrix_digest: str
    run_digest: str
    complete: bool
    scenarios: int
    total_scenarios: int
    rows: tuple[FrontierRow, ...]
    digest: str = ""

    @property
    def cells(self) -> tuple[FrontierCell, ...]:
        return tuple(cell for row in self.rows for cell in row.cells)

    def families(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.family, None)
        return tuple(seen)

    def row(self, family: str, stage: str, shock: float) -> FrontierRow:
        for candidate in self.rows:
            if (candidate.family, candidate.stage, candidate.shock) == (
                family,
                stage,
                shock,
            ):
                return candidate
        raise KeyError(f"no frontier row ({family}, {stage}, {shock})")

    def summary(self) -> str:
        deterred = sum(1 for row in self.rows if row.deterred)
        coverage = (
            "full coverage"
            if self.complete
            else f"PARTIAL coverage {self.scenarios}/{self.total_scenarios}"
        )
        return (
            f"frontier: {len(self.rows)} (family × stage × shock) lines over "
            f"{len(self.cells)} cells, {deterred} deterred ({coverage})"
        )

    def table(self) -> str:
        """A printable frontier table (one line per row)."""
        lines = [
            f"{'family':<12} {'stage':<10} {'shock':>7}  {'pi*':>6}  "
            f"{'walk premiums':<24} profitable-deviation span"
        ]
        for row in self.rows:
            walked = [cell.pi for cell in row.cells if cell.walked]
            profitable = [
                cell.pi for cell in row.cells if cell.deviation_profitable
            ]
            lines.append(
                f"{row.family:<12} {row.stage:<10} {row.shock:>7g}  "
                f"{'-' if row.pi_star is None else format(row.pi_star, 'g'):>6}  "
                f"{','.join(format(p, 'g') for p in walked) or '-':<24} "
                f"{','.join(format(p, 'g') for p in profitable) or '-'}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "matrix_digest": self.matrix_digest,
                "run_digest": self.run_digest,
                "complete": self.complete,
                "scenarios": self.scenarios,
                "total_scenarios": self.total_scenarios,
                "rows": [
                    {
                        "family": row.family,
                        "stage": row.stage,
                        "shock": row.shock,
                        "pi_star": row.pi_star,
                        "cells": [
                            {
                                "pi": cell.pi,
                                "walked": cell.walked,
                                "rational_utility": cell.rational_utility,
                                "comply_utility": cell.comply_utility,
                                "victim_net": cell.victim_net,
                            }
                            for cell in row.cells
                        ],
                    }
                    for row in self.rows
                ],
                "digest": self.digest,
            },
            indent=None,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FrontierReport":
        data = json.loads(text)
        rows = tuple(
            FrontierRow(
                family=row["family"],
                stage=row["stage"],
                shock=float(row["shock"]),
                pi_star=None if row["pi_star"] is None else float(row["pi_star"]),
                cells=tuple(
                    FrontierCell(
                        family=row["family"],
                        stage=row["stage"],
                        shock=float(row["shock"]),
                        pi=float(cell["pi"]),
                        walked=bool(cell["walked"]),
                        rational_utility=float(cell["rational_utility"]),
                        comply_utility=float(cell["comply_utility"]),
                        victim_net=int(cell["victim_net"]),
                    )
                    for cell in row["cells"]
                ),
            )
            for row in data["rows"]
        )
        report = cls(
            matrix_digest=data["matrix_digest"],
            run_digest=data["run_digest"],
            complete=bool(data["complete"]),
            scenarios=int(data["scenarios"]),
            total_scenarios=int(data["total_scenarios"]),
            rows=rows,
        )
        report = _with_digest(report)
        if report.digest != data["digest"]:
            raise ValueError(
                "frontier digest mismatch after deserialization: "
                f"{report.digest[:16]} != {data['digest'][:16]}"
            )
        return report


def _with_digest(report: FrontierReport) -> FrontierReport:
    """Stamp the canonical digest: every header field and every row/cell.

    The preamble binds the matrix identity, the run digest, and the
    coverage claim; each row line binds its ``pi_star``.  Tampering with
    any headline value in a serialized frontier therefore fails
    :meth:`FrontierReport.from_json`'s recomputation.
    """
    digest = sha256(
        f"frontier|matrix={report.matrix_digest}|run={report.run_digest}"
        f"|complete={report.complete}"
        f"|coverage={report.scenarios}/{report.total_scenarios}".encode()
    )
    for row in report.rows:
        digest.update(b"\n")
        digest.update(
            f"row|{row.family}|{row.stage}|{row.shock!r}"
            f"|pi_star={row.pi_star!r}".encode()
        )
        for cell in row.cells:
            digest.update(b"\n")
            digest.update(cell.describe().encode())
    return replace(report, digest=digest.hexdigest())


def reduce_frontier(report: CampaignReport) -> FrontierReport:
    """Pair arms and reduce a campaign report into the frontier.

    Requires an ablation-shaped report: every result carries ``pi``,
    ``shock``, and ``stage`` axes and a ``comply``/``rational`` strategy
    coordinate.  A cell missing one arm (e.g. a lone shard) raises —
    merge the shards first (:func:`repro.campaign.runner.merge_reports`).
    """
    arms: dict[tuple[str, str, float, float], dict[str, object]] = {}
    for result in report.results:
        axes = dict(result.axes)
        if "pi" not in axes or "shock" not in axes or "stage" not in axes:
            raise ValueError(
                f"not an ablation result: {result.label!r} lacks pi/shock/stage "
                "axes — reduce_frontier needs a report from ablation_matrix"
            )
        key = (
            axes["family"],
            axes["stage"],
            float(axes["shock"]),
            float(axes["pi"]),
        )
        arms.setdefault(key, {})[axes["strategy"]] = result
    cells = []
    for key in sorted(arms):
        pair = arms[key]
        missing = {"comply", "rational"} - set(pair)
        if missing:
            raise ValueError(
                f"cell {key} is missing its {sorted(missing)} arm(s): merge "
                "all shards before reducing the frontier"
            )
        family, stage, shock, pi = key
        rational = pair["rational"]
        comply = pair["comply"]
        r_metrics = dict(rational.metrics)
        c_metrics = dict(comply.metrics)
        pivot = dict(rational.axes)["adversaries"]
        cells.append(
            FrontierCell(
                family=family,
                stage=stage,
                shock=shock,
                pi=pi,
                walked=r_metrics["completed"] == 0.0,
                rational_utility=r_metrics["utility"],
                comply_utility=c_metrics["utility"],
                victim_net=max(
                    (net for party, net in rational.premium_net if party != pivot),
                    default=0,
                ),
            )
        )

    by_line: dict[tuple[str, str, float], list[FrontierCell]] = {}
    for cell in cells:
        by_line.setdefault((cell.family, cell.stage, cell.shock), []).append(cell)
    rows = []
    for line_key in sorted(by_line):
        line = sorted(by_line[line_key], key=lambda cell: cell.pi)
        deterring = [cell.pi for cell in line if not cell.walked]
        rows.append(
            FrontierRow(
                family=line_key[0],
                stage=line_key[1],
                shock=line_key[2],
                pi_star=min(deterring) if deterring else None,
                cells=tuple(line),
            )
        )
    return _with_digest(
        FrontierReport(
            matrix_digest=report.matrix_digest,
            run_digest=report.run_digest,
            complete=report.complete,
            scenarios=report.scenarios,
            total_scenarios=report.total_scenarios,
            rows=tuple(rows),
        )
    )
