"""Reduce an ablation campaign into a deviation-profitability frontier.

:func:`reduce_frontier` consumes the :class:`~repro.campaign.runner.CampaignReport`
an ablation matrix produced — on any backend, merged from any shards — and
pairs each grid cell's two arms into a :class:`FrontierCell`:

- ``walked``: did the rational pivot (or pivot coalition) abandon the
  protocol?
- ``deviation_gain``: rational-arm utility minus comply-arm utility, both
  measured on live runs at post-shock prices — deviating *paid* iff this
  is positive,
- ``victim_net``: the best premium compensation any non-pivot party
  collected in the rational arm (zero when the walk was victimless); for
  coalition cells every member counts as a pivot, so compensation flowing
  *inside* the coalition can never masquerade as victim relief.

Cells aggregate into :class:`FrontierRow` per ``(family, stage, shock)``
and — when the grid swept coalitions — into :class:`CoalitionFrontierRow`
per ``(family, coalition, stage, shock)``: ``pi_star`` is the smallest
swept premium fraction at which the (joint) pivot completes — the measured
deterrence frontier.  ``None`` means no swept premium deters that shock
(always the case at the ``pre-stake`` stage, where walking forfeits
nothing).

Digest rules: the frontier digest hashes a preamble naming the underlying
run digest and coverage, then every row and cell in canonical order —
coalition rows included.  The run digest already folds in the matrix
identity and the effective selection, so a frontier from a partial run can
never collide with one from full coverage, and serial/pooled/sharded-then-
merged runs of the same grid yield byte-identical frontier digests.  All
float fields pass through :func:`repro.campaign.canon.canon_float`, so a
bisected premium deserialized on another host hashes identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from hashlib import sha256
from typing import Iterable

from repro.campaign.canon import canon_float, canon_opt, fmt_fraction
from repro.campaign.report import check_kind, register_report
from repro.campaign.runner import CampaignReport


@dataclass(frozen=True)
class FrontierCell:
    """One measured grid cell: a (family, stage, shock, π) pair of arms."""

    family: str
    stage: str
    shock: float
    pi: float
    walked: bool
    rational_utility: float
    comply_utility: float
    victim_net: int
    #: the joint-pivot name for coalition cells ("" = single pivot).
    coalition: str = ""

    @property
    def deviation_gain(self) -> float:
        return self.rational_utility - self.comply_utility

    @property
    def deviation_profitable(self) -> bool:
        return self.deviation_gain > 0

    def describe(self) -> str:
        return "|".join(
            (
                self.family,
                self.coalition,
                self.stage,
                repr(canon_float(self.shock)),
                repr(canon_float(self.pi)),
                "walked" if self.walked else "completed",
                repr(canon_float(self.rational_utility)),
                repr(canon_float(self.comply_utility)),
                str(self.victim_net),
            )
        )


@dataclass(frozen=True)
class FrontierRow:
    """The frontier along π for one (family, stage, shock) line."""

    family: str
    stage: str
    shock: float
    #: smallest swept π at which the rational pivot completes; None if the
    #: shock stays profitable to walk from at every swept premium.
    pi_star: float | None
    cells: tuple[FrontierCell, ...]

    @property
    def deterred(self) -> bool:
        return self.pi_star is not None


@dataclass(frozen=True)
class CoalitionFrontierRow:
    """The frontier along π for one *joint* pivot set.

    Same reduction as :class:`FrontierRow`, keyed additionally by the
    coalition name; its ``pi_star`` prices the collusive walk — at least
    the single-pivot threshold, since member-to-member forfeits deter
    nothing.
    """

    family: str
    coalition: str
    stage: str
    shock: float
    pi_star: float | None
    cells: tuple[FrontierCell, ...]

    @property
    def deterred(self) -> bool:
        return self.pi_star is not None


@register_report("frontier")
@dataclass(frozen=True)
class FrontierReport:
    """The reduced frontier plus its reproducibility digest.

    A registered :class:`~repro.campaign.report.Report` of kind
    ``"frontier"``.  It is a *reduced* artifact: ``merge`` raises with
    guidance, because the mergeable unit is the underlying campaign shard
    report (merge those, then :func:`reduce_frontier` the result).
    """

    matrix_digest: str
    run_digest: str
    complete: bool
    scenarios: int
    total_scenarios: int
    rows: tuple[FrontierRow, ...]
    coalition_rows: tuple[CoalitionFrontierRow, ...] = ()
    digest: str = ""

    @property
    def cells(self) -> tuple[FrontierCell, ...]:
        return tuple(cell for row in self.rows for cell in row.cells)

    @property
    def coalition_cells(self) -> tuple[FrontierCell, ...]:
        return tuple(cell for row in self.coalition_rows for cell in row.cells)

    def families(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.family, None)
        for row in self.coalition_rows:
            seen.setdefault(row.family, None)
        return tuple(seen)

    def row(self, family: str, stage: str, shock: float) -> FrontierRow:
        for candidate in self.rows:
            if (candidate.family, candidate.stage, candidate.shock) == (
                family,
                stage,
                shock,
            ):
                return candidate
        raise KeyError(f"no frontier row ({family}, {stage}, {shock})")

    def coalition_row(
        self, family: str, coalition: str, stage: str, shock: float
    ) -> CoalitionFrontierRow:
        for candidate in self.coalition_rows:
            key = (candidate.family, candidate.coalition, candidate.stage,
                   candidate.shock)
            if key == (family, coalition, stage, shock):
                return candidate
        raise KeyError(
            f"no coalition frontier row ({family}, {coalition}, {stage}, {shock})"
        )

    def stages(self, family: str) -> tuple[str, ...]:
        """The stage labels swept for one family (coalition rows included),
        in row order."""
        seen: dict[str, None] = {}
        for row in (*self.rows, *self.coalition_rows):
            if row.family == family:
                seen.setdefault(row.stage, None)
        return tuple(seen)

    def summary(self) -> str:
        deterred = sum(1 for row in self.rows if row.deterred)
        coverage = (
            "full coverage"
            if self.complete
            else f"PARTIAL coverage {self.scenarios}/{self.total_scenarios}"
        )
        coalition = (
            f", {len(self.coalition_rows)} coalition lines"
            if self.coalition_rows
            else ""
        )
        return (
            f"frontier: {len(self.rows)} (family × stage × shock) lines over "
            f"{len(self.cells)} cells, {deterred} deterred{coalition} "
            f"({coverage})"
        )

    def table(self) -> str:
        """A printable frontier table (one line per row)."""
        lines = [
            f"{'family':<12} {'pivot':<14} {'stage':<10} {'shock':>7}  {'pi*':>6}  "
            f"{'walk premiums':<24} profitable-deviation span"
        ]

        def render(row, pivot: str) -> str:
            walked = [cell.pi for cell in row.cells if cell.walked]
            profitable = [
                cell.pi for cell in row.cells if cell.deviation_profitable
            ]
            # fmt_fraction, not %g: the printed axes must read exactly
            # like the digest-covered scenario labels ('g' is lossy past
            # six significant digits, so two distinct deeply-bisected
            # premiums could print identically while differing in the
            # digest — ungreppable).
            return (
                f"{row.family:<12} {pivot:<14} {row.stage:<10} "
                f"{fmt_fraction(row.shock):>7}  "
                f"{'-' if row.pi_star is None else fmt_fraction(row.pi_star):>6}  "
                f"{','.join(fmt_fraction(p) for p in walked) or '-':<24} "
                f"{','.join(fmt_fraction(p) for p in profitable) or '-'}"
            )

        for row in self.rows:
            lines.append(render(row, "pivot"))
        for row in self.coalition_rows:
            lines.append(render(row, row.coalition))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, reports: "Iterable[FrontierReport]") -> "FrontierReport":
        raise ValueError(
            "frontier reports are reduced artifacts and do not merge: merge "
            "the underlying campaign shard reports (written by `ablate "
            "--shard I/N --out`) and reduce the merged report instead"
        )

    def to_json(self) -> str:
        def cell_payload(cell: FrontierCell) -> dict:
            return {
                "pi": canon_float(cell.pi),
                "walked": cell.walked,
                "rational_utility": canon_float(cell.rational_utility),
                "comply_utility": canon_float(cell.comply_utility),
                "victim_net": cell.victim_net,
            }

        def row_payload(row) -> dict:
            payload = {
                "family": row.family,
                "stage": row.stage,
                "shock": canon_float(row.shock),
                "pi_star": None if row.pi_star is None else canon_float(row.pi_star),
                "cells": [cell_payload(cell) for cell in row.cells],
            }
            if isinstance(row, CoalitionFrontierRow):
                payload["coalition"] = row.coalition
            return payload

        return json.dumps(
            {
                "kind": self.kind,
                "matrix_digest": self.matrix_digest,
                "run_digest": self.run_digest,
                "complete": self.complete,
                "scenarios": self.scenarios,
                "total_scenarios": self.total_scenarios,
                "rows": [row_payload(row) for row in self.rows],
                "coalition_rows": [
                    row_payload(row) for row in self.coalition_rows
                ],
                "digest": self.digest,
            },
            indent=None,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FrontierReport":
        data = json.loads(text)
        check_kind(cls, data)

        def cells_of(row: dict, coalition: str) -> tuple[FrontierCell, ...]:
            return tuple(
                FrontierCell(
                    family=row["family"],
                    stage=row["stage"],
                    shock=canon_float(row["shock"]),
                    pi=canon_float(cell["pi"]),
                    walked=bool(cell["walked"]),
                    rational_utility=canon_float(cell["rational_utility"]),
                    comply_utility=canon_float(cell["comply_utility"]),
                    victim_net=int(cell["victim_net"]),
                    coalition=coalition,
                )
                for cell in row["cells"]
            )

        def pi_star_of(row: dict) -> float | None:
            return None if row["pi_star"] is None else canon_float(row["pi_star"])

        rows = tuple(
            FrontierRow(
                family=row["family"],
                stage=row["stage"],
                shock=canon_float(row["shock"]),
                pi_star=pi_star_of(row),
                cells=cells_of(row, ""),
            )
            for row in data["rows"]
        )
        coalition_rows = tuple(
            CoalitionFrontierRow(
                family=row["family"],
                coalition=row["coalition"],
                stage=row["stage"],
                shock=canon_float(row["shock"]),
                pi_star=pi_star_of(row),
                cells=cells_of(row, row["coalition"]),
            )
            for row in data.get("coalition_rows", [])
        )
        report = cls(
            matrix_digest=data["matrix_digest"],
            run_digest=data["run_digest"],
            complete=bool(data["complete"]),
            scenarios=int(data["scenarios"]),
            total_scenarios=int(data["total_scenarios"]),
            rows=rows,
            coalition_rows=coalition_rows,
        )
        report = _with_digest(report)
        if report.digest != data["digest"]:
            raise ValueError(
                "frontier digest mismatch after deserialization: "
                f"{report.digest[:16]} != {data['digest'][:16]}"
            )
        return report


def _with_digest(report: FrontierReport) -> FrontierReport:
    """Stamp the canonical digest: every header field and every row/cell.

    The preamble binds the matrix identity, the run digest, and the
    coverage claim; each row line binds its ``pi_star``.  Tampering with
    any headline value in a serialized frontier therefore fails
    :meth:`FrontierReport.from_json`'s recomputation.
    """
    digest = sha256(
        f"frontier|matrix={report.matrix_digest}|run={report.run_digest}"
        f"|complete={report.complete}"
        f"|coverage={report.scenarios}/{report.total_scenarios}".encode()
    )
    for row in report.rows:
        digest.update(b"\n")
        digest.update(
            f"row|{row.family}|{row.stage}|{canon_float(row.shock)!r}"
            f"|pi_star={canon_opt(row.pi_star)!r}".encode()
        )
        for cell in row.cells:
            digest.update(b"\n")
            digest.update(cell.describe().encode())
    for row in report.coalition_rows:
        digest.update(b"\n")
        digest.update(
            f"coalition-row|{row.family}|{row.coalition}|{row.stage}"
            f"|{canon_float(row.shock)!r}"
            f"|pi_star={canon_opt(row.pi_star)!r}".encode()
        )
        for cell in row.cells:
            digest.update(b"\n")
            digest.update(cell.describe().encode())
    return replace(report, digest=digest.hexdigest())


def reduce_frontier(report: CampaignReport) -> FrontierReport:
    """Pair arms and reduce a campaign report into the frontier.

    Requires an ablation-shaped report: every result carries ``pi``,
    ``shock``, and ``stage`` axes and a ``comply``/``rational`` strategy
    coordinate (coalition cells use the all-``compliant`` profile as their
    comply arm).  A cell missing one arm (e.g. a lone shard) raises —
    merge the shards first (:func:`repro.campaign.runner.merge_reports`).
    """
    arms: dict[tuple[str, str, str, float, float], dict[str, object]] = {}
    for result in report.results:
        axes = dict(result.axes)
        if "pi" not in axes or "shock" not in axes or "stage" not in axes:
            raise ValueError(
                f"not an ablation result: {result.label!r} lacks pi/shock/stage "
                "axes — reduce_frontier needs a report from ablation_matrix"
            )
        key = (
            axes["family"],
            axes.get("coalition", ""),
            axes["stage"],
            canon_float(axes["shock"]),
            canon_float(axes["pi"]),
        )
        arms.setdefault(key, {})[axes["strategy"]] = result
    cells = []
    for key in sorted(arms):
        pair = arms[key]
        # A coalition cell's comply arm is the all-compliant profile.
        comply = pair.get("comply", pair.get("compliant"))
        rational = pair.get("rational")
        missing = [
            arm
            for arm, result in (("comply", comply), ("rational", rational))
            if result is None
        ]
        if missing:
            raise ValueError(
                f"cell {key} is missing its {missing} arm(s): merge "
                "all shards before reducing the frontier"
            )
        family, coalition, stage, shock, pi = key
        r_metrics = dict(rational.metrics)
        c_metrics = dict(comply.metrics)
        # Every pivot (all coalition members) is excluded from victimhood.
        pivots = set(dict(rational.axes)["adversaries"].split(","))
        cells.append(
            FrontierCell(
                family=family,
                stage=stage,
                shock=shock,
                pi=pi,
                walked=r_metrics["completed"] == 0.0,
                rational_utility=canon_float(r_metrics["utility"]),
                comply_utility=canon_float(c_metrics["utility"]),
                victim_net=max(
                    (
                        net
                        for party, net in rational.premium_net
                        if party not in pivots
                    ),
                    default=0,
                ),
                coalition=coalition,
            )
        )

    def reduce_lines(line_cells, row_factory):
        by_line: dict[tuple, list[FrontierCell]] = {}
        for cell in line_cells:
            by_line.setdefault(
                (cell.family, cell.coalition, cell.stage, cell.shock), []
            ).append(cell)
        rows = []
        for line_key in sorted(by_line):
            line = sorted(by_line[line_key], key=lambda cell: cell.pi)
            deterring = [cell.pi for cell in line if not cell.walked]
            rows.append(
                row_factory(
                    line_key, min(deterring) if deterring else None, tuple(line)
                )
            )
        return tuple(rows)

    rows = reduce_lines(
        (cell for cell in cells if not cell.coalition),
        lambda key, pi_star, line: FrontierRow(
            family=key[0], stage=key[2], shock=key[3], pi_star=pi_star, cells=line
        ),
    )
    coalition_rows = reduce_lines(
        (cell for cell in cells if cell.coalition),
        lambda key, pi_star, line: CoalitionFrontierRow(
            family=key[0],
            coalition=key[1],
            stage=key[2],
            shock=key[3],
            pi_star=pi_star,
            cells=line,
        ),
    )
    return _with_digest(
        FrontierReport(
            matrix_digest=report.matrix_digest,
            run_digest=report.run_digest,
            complete=report.complete,
            scenarios=report.scenarios,
            total_scenarios=report.total_scenarios,
            rows=rows,
            coalition_rows=coalition_rows,
        )
    )
