"""Frontier refinement: bisect the deterrence threshold between lattice points.

The lattice frontier (:func:`~repro.campaign.ablation.frontier.reduce_frontier`)
measures π* only on the swept premium fractions, so the reported threshold
is a *staircase*: the true boundary lies somewhere between the last
premium that still walked and the first that deterred.
:func:`refine_frontier` closes that gap by adaptive bisection:

- per frontier row (single-pivot and coalition alike) it takes the
  measured bracket ``[last walking π, first deterring π]`` from the
  lattice cells,
- repeatedly probes the midpoint by running a two-scenario
  :func:`~repro.campaign.ablation.grid.ablation_cell` matrix — through the
  serial backend or a persistent :class:`~repro.campaign.pool.WorkerPool`
  (each probe cell is a registered pool factory, digest-audited
  worker-side like any campaign),
- narrows until ``hi − lo ≤ tol`` (default :data:`DEFAULT_TOL`, 1/64 of
  the premium fraction) and reports ``pi_star`` as the bracket midpoint.

The refined π* therefore sits within ``tol/2`` of the *measured* walk
boundary, which itself sits within half a premium quantization unit
(``0.5 / premium_base``) of the §5.2 closed form
(:func:`~repro.campaign.ablation.grid.closed_form_pi_star`) — so with the
default tolerance the refined threshold brackets the closed form for all
four families.

Rows with no lattice bracket refine too, where possible: when the
*smallest* swept premium already deters, the engine opens the bracket at
π = 0 with one extra probe; when the lattice *ceiling* still walks the
engine extends the bracket **upward by doubling** — probing 2·π, 4·π, …
up to :data:`EXPAND_CEILING` — and bisects as soon as a probe deters, so
a boundary that merely sits above the swept grid (e.g. two-party at
s = 0.105 with premiums ≤ 0.08) refines instead of carrying through
unrefined.  Only a row no probed premium deters (every ``pre-stake`` row,
or a coalition rent no premium hedges — see
:func:`~repro.campaign.ablation.grid.closed_form_coalition_pi_star`)
reports ``pi_hi = None`` — undeterred is a result, not an error.

**Digest rules.**  The refined digest hashes the input frontier digest
(which already binds matrix identity, run digest, and coverage), the
tolerance, and — per row — the bracket endpoints plus every probe cell's
outcome *and* the probe campaign's own run digest.  Bisection is
deterministic (same bracket → same midpoints → same probe matrices), and
probe run digests are backend-independent, so a refined frontier is
byte-identical whether the lattice came from a serial, pooled, or
sharded-then-merged run and whether the probes ran serially or pooled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from hashlib import sha256
from typing import Iterable

from repro.campaign.canon import canon_float, canon_opt, fmt_fraction
from repro.campaign.report import check_kind, register_report
from repro.campaign.ablation.frontier import (
    CoalitionFrontierRow,
    FrontierCell,
    FrontierReport,
    FrontierRow,
    reduce_frontier,
)
from repro.campaign.ablation.grid import ablation_cell

#: default bisection tolerance on the premium fraction: 1/64.
DEFAULT_TOL = 0.015625

#: hard cap on probes per row (the default tol needs at most a handful).
MAX_ITERATIONS = 32

#: largest premium fraction the upward-doubling expansion will probe: the
#: full principal.  A row still walking at π = 1 forfeits a premium the
#: size of the trade itself — undeterrable in any economically meaningful
#: sense (pre-stake rows, the broker coalition's markup rent).
EXPAND_CEILING = 1.0


@dataclass(frozen=True)
class ProbeCell:
    """One bisection probe: a measured cell plus its provenance."""

    cell: FrontierCell
    run_digest: str

    def describe(self) -> str:
        return f"probe|{self.cell.describe()}|run={self.run_digest}"


@dataclass(frozen=True)
class RefinedRow:
    """One frontier row after bisection.

    ``pi_lo`` is the largest premium fraction measured to walk, ``pi_hi``
    the smallest measured to deter (``None`` when nothing swept or probed
    deters), and ``pi_star`` the midpoint of the final bracket — the
    refined deterrence threshold.  ``lattice_lo``/``lattice_hi`` record
    the bracket the lattice supplied, so the report shows how much the
    staircase overstated the threshold.
    """

    family: str
    stage: str
    shock: float
    coalition: str
    lattice_lo: float | None
    lattice_hi: float | None
    pi_lo: float | None
    pi_hi: float | None
    pi_star: float | None
    iterations: int
    converged: bool
    probes: tuple[ProbeCell, ...]

    @property
    def deterred(self) -> bool:
        return self.pi_hi is not None

    @property
    def bracket_width(self) -> float | None:
        if self.pi_lo is None or self.pi_hi is None:
            return None
        return self.pi_hi - self.pi_lo


def refined_row_payload(row: RefinedRow) -> dict:
    """One row's canonical JSON payload — the exact shape
    :meth:`RefinedFrontierReport.to_json` embeds, factored out so the
    quote row store serializes rows byte-identically to the report."""
    return {
        "family": row.family,
        "stage": row.stage,
        "shock": canon_float(row.shock),
        "coalition": row.coalition,
        "lattice_lo": canon_opt(row.lattice_lo),
        "lattice_hi": canon_opt(row.lattice_hi),
        "pi_lo": canon_opt(row.pi_lo),
        "pi_hi": canon_opt(row.pi_hi),
        "pi_star": canon_opt(row.pi_star),
        "iterations": row.iterations,
        "converged": row.converged,
        "probes": [
            {
                "pi": canon_float(probe.cell.pi),
                "walked": probe.cell.walked,
                "rational_utility": canon_float(probe.cell.rational_utility),
                "comply_utility": canon_float(probe.cell.comply_utility),
                "victim_net": probe.cell.victim_net,
                "run_digest": probe.run_digest,
            }
            for probe in row.probes
        ],
    }


def refined_row_from_payload(data: dict) -> RefinedRow:
    """Rebuild one :class:`RefinedRow` from :func:`refined_row_payload`."""
    return RefinedRow(
        family=data["family"],
        stage=data["stage"],
        shock=canon_float(data["shock"]),
        coalition=data["coalition"],
        lattice_lo=canon_opt(data["lattice_lo"]),
        lattice_hi=canon_opt(data["lattice_hi"]),
        pi_lo=canon_opt(data["pi_lo"]),
        pi_hi=canon_opt(data["pi_hi"]),
        pi_star=canon_opt(data["pi_star"]),
        iterations=int(data["iterations"]),
        converged=bool(data["converged"]),
        probes=tuple(
            ProbeCell(
                cell=FrontierCell(
                    family=data["family"],
                    stage=data["stage"],
                    shock=canon_float(data["shock"]),
                    pi=canon_float(probe["pi"]),
                    walked=bool(probe["walked"]),
                    rational_utility=canon_float(probe["rational_utility"]),
                    comply_utility=canon_float(probe["comply_utility"]),
                    victim_net=int(probe["victim_net"]),
                    coalition=data["coalition"],
                ),
                run_digest=probe["run_digest"],
            )
            for probe in data["probes"]
        ),
    )


@register_report("refined-frontier")
@dataclass(frozen=True)
class RefinedFrontierReport:
    """The bisected frontier plus its reproducibility digest.

    A registered :class:`~repro.campaign.report.Report` of kind
    ``"refined-frontier"``; like the lattice frontier it is a reduced
    artifact, so ``merge`` raises with guidance.
    """

    base_digest: str
    tol: float
    rows: tuple[RefinedRow, ...]
    digest: str = ""

    def row(
        self, family: str, stage: str, shock: float, coalition: str = ""
    ) -> RefinedRow:
        for candidate in self.rows:
            key = (candidate.family, candidate.stage, candidate.shock,
                   candidate.coalition)
            if key == (family, stage, shock, coalition):
                return candidate
        raise KeyError(
            f"no refined row ({family}, {stage}, {shock}, {coalition!r})"
        )

    @property
    def probes(self) -> int:
        return sum(len(row.probes) for row in self.rows)

    def summary(self) -> str:
        refined = sum(1 for row in self.rows if row.converged)
        deterred = sum(1 for row in self.rows if row.deterred)
        return (
            f"refined frontier: {len(self.rows)} rows, {refined} converged to "
            f"tol={fmt_fraction(self.tol)} via {self.probes} bisection probes, "
            f"{deterred} deterred"
        )

    def table(self) -> str:
        lines = [
            f"{'family':<12} {'pivot':<14} {'stage':<10} {'shock':>7}  "
            f"{'lattice pi*':>11}  {'refined pi*':>11}  {'bracket':>19}  probes"
        ]
        for row in self.rows:
            bracket = (
                f"[{fmt_fraction(row.pi_lo)}, {fmt_fraction(row.pi_hi)}]"
                if row.pi_lo is not None and row.pi_hi is not None
                else "-"
            )
            lines.append(
                # fmt_fraction, not %g: printed axes must read exactly
                # like the digest-covered labels (see FrontierReport.table).
                f"{row.family:<12} {row.coalition or 'pivot':<14} "
                f"{row.stage:<10} {fmt_fraction(row.shock):>7}  "
                f"{'-' if row.lattice_hi is None else fmt_fraction(row.lattice_hi):>11}  "
                f"{'-' if row.pi_star is None else fmt_fraction(row.pi_star):>11}  "
                f"{bracket:>19}  {len(row.probes)}"
            )
        return "\n".join(lines)

    @classmethod
    def merge(
        cls, reports: "Iterable[RefinedFrontierReport]"
    ) -> "RefinedFrontierReport":
        raise ValueError(
            "refined frontiers are reduced artifacts and do not merge: "
            "merge the underlying campaign shard reports, reduce the "
            "frontier, and refine the result instead"
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "base_digest": self.base_digest,
                "tol": canon_float(self.tol),
                "rows": [refined_row_payload(row) for row in self.rows],
                "digest": self.digest,
            },
            indent=None,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RefinedFrontierReport":
        data = json.loads(text)
        check_kind(cls, data)
        rows = tuple(refined_row_from_payload(row) for row in data["rows"])
        report = cls(
            base_digest=data["base_digest"],
            tol=canon_float(data["tol"]),
            rows=rows,
        )
        report = _with_digest(report)
        if report.digest != data["digest"]:
            raise ValueError(
                "refined-frontier digest mismatch after deserialization: "
                f"{report.digest[:16]} != {data['digest'][:16]}"
            )
        return report


def _with_digest(report: RefinedFrontierReport) -> RefinedFrontierReport:
    digest = sha256(
        f"refined-frontier|base={report.base_digest}"
        f"|tol={fmt_fraction(report.tol)}".encode()
    )
    for row in report.rows:
        digest.update(b"\n")
        digest.update(
            f"row|{row.family}|{row.coalition}|{row.stage}"
            f"|{canon_float(row.shock)!r}"
            f"|lattice=[{canon_opt(row.lattice_lo)!r},{canon_opt(row.lattice_hi)!r}]"
            f"|bracket=[{canon_opt(row.pi_lo)!r},{canon_opt(row.pi_hi)!r}]"
            f"|pi_star={canon_opt(row.pi_star)!r}"
            f"|iterations={row.iterations}|converged={row.converged}".encode()
        )
        for probe in row.probes:
            digest.update(b"\n")
            digest.update(probe.describe().encode())
    return replace(report, digest=digest.hexdigest())


class _CellProber:
    """Runs single ablation cells through the configured backend.

    ``cache`` is the incremental result cache: each probe cell is one
    matrix block, so a warm refinement (or one following a lattice run
    that already executed the same cells) serves probes straight from the
    store.  ``cache_hits`` counts the scenarios so served.

    With ``backend="kernel"`` (or a caller-supplied ``kernel`` engine)
    probes run through the vectorized payoff kernels; one engine is
    shared across every probe, so the cell-template calibration cost is
    paid once per ``(family, coalition, premium)`` even though bisection
    probes arrive one premium at a time.
    """

    def __init__(
        self,
        backend: str = "serial",
        pool=None,
        seed: int = 0,
        cache=None,
        kernel=None,
        tracer=None,
    ) -> None:
        from repro.campaign.runner import CampaignRunner

        if pool is not None:
            backend = "process"
        if kernel is not None:
            backend = "kernel"
        elif backend == "kernel":
            from repro.campaign.ablation.kernels import KernelEngine

            kernel = KernelEngine(tracer=tracer)
        self._runner_cls = CampaignRunner
        self.backend = backend
        self.pool = pool
        self.seed = seed
        self.cache = cache
        self.kernel = kernel
        #: observability only (spans/counters around each probe run).
        self.tracer = tracer
        self.cache_hits = 0

    def probe(
        self, family: str, pi: float, shock: float, stage: str, coalition: str
    ) -> ProbeCell:
        matrix = ablation_cell(
            family, pi, shock, stage, coalition=coalition, seed=self.seed
        )
        report = self._runner_cls(
            matrix,
            backend=self.backend,
            pool=self.pool,
            cache=self.cache,
            kernel=self.kernel,
            tracer=self.tracer,
        ).run()
        self.cache_hits += report.cache_hits
        if not report.ok:
            raise RuntimeError(
                f"bisection probe ({family}, {pi}, {shock}, {stage}) violated "
                f"properties: {[v.message for v in report.violations]}"
            )
        frontier = reduce_frontier(report)
        rows = frontier.coalition_rows if coalition else frontier.rows
        (row,) = rows
        (cell,) = row.cells
        return ProbeCell(cell=cell, run_digest=report.run_digest)


def _bracket(row) -> tuple[float | None, float | None]:
    """The lattice bracket: (largest walking π, smallest deterring π)."""
    walked = [cell.pi for cell in row.cells if cell.walked]
    deterring = [cell.pi for cell in row.cells if not cell.walked]
    lo = max(walked) if walked else None
    hi = min(deterring) if deterring else None
    return lo, hi


def refine_row(
    row: FrontierRow | CoalitionFrontierRow,
    prober: _CellProber,
    tol: float,
    max_iterations: int = MAX_ITERATIONS,
) -> RefinedRow:
    """Bisect one frontier row's walk/deter boundary down to ``tol``."""
    coalition = getattr(row, "coalition", "")
    lattice_lo, lattice_hi = _bracket(row)
    lo, hi = lattice_lo, lattice_hi
    probes: list[ProbeCell] = []
    iterations = 0

    def run_probe(pi: float) -> bool:
        nonlocal iterations
        iterations += 1
        probe = prober.probe(row.family, pi, row.shock, row.stage, coalition)
        probes.append(probe)
        return probe.cell.walked

    if hi is not None and lo is None and hi > 0.0:
        # The smallest swept premium already deters: open the bracket at
        # the unhedged baseline with one probe.
        if run_probe(0.0):
            lo = 0.0
        else:
            hi = 0.0  # even π = 0 deters this shock at this stage
    if hi is None and lo is not None and lo < EXPAND_CEILING:
        # The lattice ceiling still walks: extend the bracket upward by
        # doubling before bisecting, so a boundary that merely sits above
        # the swept grid refines instead of carrying through unrefined.
        # A row that walks all the way to EXPAND_CEILING is genuinely
        # undeterred (pre-stake rows, un-hedgeable coalition rent).
        probe_pi = lo * 2 if lo > 0.0 else tol
        while hi is None and iterations < max_iterations:
            pi = canon_float(min(probe_pi, EXPAND_CEILING))
            if pi <= lo:
                break
            if run_probe(pi):
                lo = pi
            else:
                hi = pi
            if pi >= EXPAND_CEILING:
                break
            probe_pi = pi * 2
    if lo is not None and hi is not None:
        while hi - lo > tol and iterations < max_iterations:
            mid = canon_float((lo + hi) / 2)
            if mid <= lo or mid >= hi:  # float exhaustion: bracket is exact
                break
            if run_probe(mid):
                lo = mid
            else:
                hi = mid

    if hi is None:
        pi_star = None  # undeterred at (and below) every measured premium
        converged = False
    elif hi == 0.0 or lo is None:
        pi_star = 0.0
        converged = True
    else:
        pi_star = canon_float((lo + hi) / 2)
        converged = hi - lo <= tol
    return RefinedRow(
        family=row.family,
        stage=row.stage,
        shock=canon_float(row.shock),
        coalition=coalition,
        lattice_lo=canon_opt(lattice_lo),
        lattice_hi=canon_opt(lattice_hi),
        pi_lo=canon_opt(lo),
        pi_hi=canon_opt(hi),
        pi_star=pi_star,
        iterations=iterations,
        converged=converged,
        probes=tuple(probes),
    )


def refine_frontier(
    frontier: FrontierReport,
    tol: float = DEFAULT_TOL,
    backend: str = "serial",
    pool=None,
    seed: int = 0,
    max_iterations: int = MAX_ITERATIONS,
    cache=None,
    prober: "_CellProber | None" = None,
    tracer=None,
) -> RefinedFrontierReport:
    """Refine every row of a lattice frontier by adaptive bisection.

    ``frontier`` may come from any backend or from merged shards — its
    digest (hashed into the refined digest) pins the lattice provenance.
    ``pool`` dispatches the probe cells through a persistent
    :class:`~repro.campaign.pool.WorkerPool`; ``cache`` (a
    :class:`~repro.campaign.cache.ResultCache`) serves repeat probes from
    the incremental store.  The refined digest is backend- and
    cache-invariant either way.  ``prober`` lets a caller supply (and
    afterwards inspect, e.g. for cache accounting) the cell prober; it
    overrides the other execution knobs.
    """
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if not frontier.complete:
        raise ValueError(
            "refinement needs a full-coverage frontier: merge all shards "
            f"first (got {frontier.scenarios}/{frontier.total_scenarios})"
        )
    if prober is None:
        prober = _CellProber(
            backend=backend, pool=pool, seed=seed, cache=cache, tracer=tracer
        )
    rows = [
        refine_row(row, prober, canon_float(tol), max_iterations)
        for row in (*frontier.rows, *frontier.coalition_rows)
    ]
    return _with_digest(
        RefinedFrontierReport(
            base_digest=frontier.digest,
            tol=canon_float(tol),
            rows=tuple(rows),
        )
    )
