"""Arc escrow contracts for multi-party swaps (§7, Herlihy '18 base).

One contract per arc ``(u, v)``, deployed on the chain that manages the
transferred asset.  :class:`BaseSwapArc` implements the unhedged Herlihy '18
arc: ``u`` escrows the principal; ``v`` redeems by presenting a valid
hashkey for *every* leader before the per-path deadlines.

:class:`HedgedSwapArc` adds the paper's two premium kinds:

- the **escrow premium** ``E(u, v)`` (Equation 2), deposited by ``u``,
  awarded to ``v`` if the principal is not escrowed in time — but only once
  *activated* (all redemption premiums present on the arc); an unactivated
  escrow premium refunds at the end of phase 2,
- one **redemption premium** per leader hashkey (Equation 1), deposited by
  ``v`` with an authenticated path; refunded to ``v`` the moment the
  matching hashkey is accepted, awarded to ``u`` at the end of phase 4
  otherwise.

The contract validates redemption-premium amounts itself by evaluating
Equation 1 on the presented path — it knows the digraph, which is part of
the public protocol agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.assets import Asset
from repro.chain.blockchain import CallContext
from repro.contracts.base import Contract
from repro.crypto.hashing import Hashlock
from repro.crypto.hashkeys import HashKey, SignedPath
from repro.graph.digraph import SwapGraph
from repro.graph.schedule import MultiPartySchedule


@dataclass
class RedemptionDeposit:
    """One redemption premium held by the arc contract."""

    leader: str
    chain: SignedPath
    amount: int
    state: str = "held"  # held | refunded | awarded
    deposited_at: int = -1
    resolved_at: int = -1


class BaseSwapArc(Contract):
    """Unhedged arc contract: escrow + all-hashkeys redemption."""

    kind = "swap-arc"

    def __init__(
        self,
        graph: SwapGraph,
        schedule: MultiPartySchedule,
        public_of: dict[str, str],
        hashlocks: dict[str, Hashlock],
        arc: tuple[str, str],
        asset: Asset,
        amount: int,
    ) -> None:
        super().__init__()
        self.graph = graph
        self.schedule = schedule
        self.public_of = dict(public_of)
        self.hashlocks = dict(hashlocks)
        self.arc = arc
        self.u, self.v = arc
        self.asset = asset
        self.amount = amount

        self.principal_state = "absent"  # absent | escrowed | redeemed | refunded
        self.accepted: dict[str, HashKey] = {}
        self.accepted_at: dict[str, int] = {}
        self.principal_escrowed_at: int | None = None
        self.principal_resolved_at: int | None = None

    # -- deadline hooks (overridden by the hedged variant) --------------
    def _principal_deadline(self) -> int:
        return self.schedule.base_principal_deadline(self.arc)

    def _hashkey_deadline(self, path_length: int) -> int:
        return self.schedule.base_hashkey_deadline(path_length)

    def _final_deadline(self) -> int:
        return self.schedule.base_end

    def _may_escrow(self, ctx: CallContext) -> None:
        """Extra escrow preconditions (the hedged variant adds activation)."""

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def escrow_principal(self, ctx: CallContext) -> None:
        """``u`` escrows the arc's asset."""
        self.require(ctx.sender == self.u, f"only {self.u} escrows on {self.arc}")
        self.require(self.principal_state == "absent", "principal already escrowed")
        self.require(ctx.height <= self._principal_deadline(), "escrow deadline passed")
        self._may_escrow(ctx)
        self.pull(self.asset, self.u, self.amount)
        self.principal_state = "escrowed"
        self.principal_escrowed_at = ctx.height
        self.emit("principal_escrowed", arc=self.arc, amount=self.amount)
        # The full hashkey set may already be on the arc (e.g. a leader
        # released early and the escrow landed later in the same block);
        # redemption fires on whichever side completes last.
        self._try_redeem(ctx.height)

    def present_hashkey(self, ctx: CallContext, hashkey: HashKey) -> None:
        """Accept a valid hashkey; redeem once all leaders' keys are in."""
        leader = hashkey.leader
        self.require(leader in self.hashlocks, f"unknown leader {leader!r}")
        self.require(leader not in self.accepted, f"hashkey for {leader} already accepted")
        self.require(
            hashkey.redeemer == self.v,
            f"hashkey path must start at redeemer {self.v}",
        )
        self.require(
            ctx.height <= self._hashkey_deadline(hashkey.length),
            f"hashkey timed out (|q|={hashkey.length})",
        )
        valid = hashkey.verify(
            self._chain().registry,
            self.public_of,
            self.hashlocks[leader],
            arcs=self.graph.arc_set,
        )
        self.require(valid, "hashkey failed verification")
        self.accepted[leader] = hashkey
        self.accepted_at[leader] = ctx.height
        self.emit("hashkey_accepted", arc=self.arc, leader=leader, path=hashkey.path)
        self._on_hashkey_accepted(leader, ctx.height)
        self._try_redeem(ctx.height)

    def _on_hashkey_accepted(self, leader: str, height: int) -> None:
        """Hook for the hedged variant (redemption premium refunds)."""

    def _try_redeem(self, height: int) -> None:
        if self.principal_state != "escrowed":
            return
        if set(self.accepted) != set(self.hashlocks):
            return
        self.push(self.asset, self.v, self.amount)
        self.principal_state = "redeemed"
        self.principal_resolved_at = height
        self.emit("principal_redeemed", arc=self.arc, to=self.v, amount=self.amount)

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        if self.principal_state == "escrowed" and height > self._final_deadline():
            self.push(self.asset, self.u, self.amount)
            self.principal_state = "refunded"
            self.principal_resolved_at = height
            self.emit("principal_refunded", arc=self.arc, to=self.u, amount=self.amount)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def redeemed(self) -> bool:
        return self.principal_state == "redeemed"

    @property
    def escrowed_unredeemed(self) -> bool:
        """True if the principal was escrowed but ended refunded."""
        return self.principal_state == "refunded"


class HedgedSwapArc(BaseSwapArc):
    """Arc contract with escrow and redemption premiums (§7.1)."""

    kind = "hedged-swap-arc"

    def __init__(
        self,
        graph: SwapGraph,
        schedule: MultiPartySchedule,
        public_of: dict[str, str],
        hashlocks: dict[str, Hashlock],
        arc: tuple[str, str],
        asset: Asset,
        amount: int,
        premium: int,
        escrow_premium_amount: int,
    ) -> None:
        super().__init__(graph, schedule, public_of, hashlocks, arc, asset, amount)
        self.premium = premium
        self.escrow_premium_amount = escrow_premium_amount
        self.escrow_premium_state = "absent"  # absent | held | refunded | awarded
        self.escrow_premium_resolved_at: int | None = None
        self.redemption_deposits: dict[str, RedemptionDeposit] = {}

    # -- hedged deadlines ------------------------------------------------
    def _principal_deadline(self) -> int:
        return self.schedule.principal_deadline(self.arc)

    def _hashkey_deadline(self, path_length: int) -> int:
        return self.schedule.hashkey_deadline(path_length)

    def _final_deadline(self) -> int:
        return self.schedule.end

    # ------------------------------------------------------------------
    # premium state
    # ------------------------------------------------------------------
    @property
    def activated(self) -> bool:
        """All leaders' redemption premiums are on this arc (§7.1)."""
        return set(self.redemption_deposits) == set(self.hashlocks)

    def deposit_escrow_premium(self, ctx: CallContext) -> None:
        """``u`` posts ``E(u, v)`` in the chain's native currency."""
        self.require(ctx.sender == self.u, f"only {self.u} posts the escrow premium")
        self.require(self.escrow_premium_state == "absent", "escrow premium already posted")
        self.require(
            ctx.height <= self.schedule.escrow_premium_deadline(self.arc),
            "escrow premium deadline passed",
        )
        self.pull(self._chain().native, self.u, self.escrow_premium_amount)
        self.escrow_premium_state = "held"
        self.emit("escrow_premium_deposited", arc=self.arc, amount=self.escrow_premium_amount)

    def deposit_redemption_premium(self, ctx: CallContext, path_chain: SignedPath) -> None:
        """``v`` posts a redemption premium for one leader's hashkey.

        The deposit carries an authenticated path; the contract recomputes
        Equation 1 to determine (and pull) the exact required amount.
        """
        self.require(ctx.sender == self.v, f"only {self.v} posts redemption premiums")
        leader = path_chain.originator
        self.require(leader in self.hashlocks, f"unknown leader {leader!r}")
        self.require(
            leader not in self.redemption_deposits,
            f"redemption premium for {leader} already posted",
        )
        expected_payload = f"rpremium:{self.hashlocks[leader].digest}"
        self.require(path_chain.payload == expected_payload, "premium chain binds wrong hashlock")
        self.require(path_chain.head == self.v, "premium path must end at the depositor")
        self.require(path_chain.is_simple(), "premium path must be simple")
        path = path_chain.path  # redeemer-first
        self.require(self.graph.is_path(path), "premium path must follow arcs")
        self.require(
            ctx.height <= self.schedule.redemption_premium_deadline(path_chain.length),
            f"redemption premium timed out (|q|={path_chain.length})",
        )
        self.require(
            path_chain.verify(self._chain().registry, self.public_of),
            "premium path failed signature verification",
        )
        # imported here to avoid a package-level import cycle
        from repro.core.premiums import redemption_premium_amount

        amount = redemption_premium_amount(self.graph, path, self.u, self.premium)
        self.pull(self._chain().native, self.v, amount)
        self.redemption_deposits[leader] = RedemptionDeposit(
            leader=leader, chain=path_chain, amount=amount, deposited_at=ctx.height
        )
        self.emit(
            "redemption_premium_deposited",
            arc=self.arc,
            leader=leader,
            path=path,
            amount=amount,
        )
        if self.activated:
            self.emit("arc_activated", arc=self.arc)

    # ------------------------------------------------------------------
    # overridden hooks
    # ------------------------------------------------------------------
    def _may_escrow(self, ctx: CallContext) -> None:
        self.require(
            self.activated,
            "arc not activated (redemption premiums incomplete)",
        )

    def escrow_principal(self, ctx: CallContext) -> None:
        super().escrow_principal(ctx)
        # Escrowing in time releases u's escrow premium immediately.
        if self.escrow_premium_state == "held":
            self.push(self._chain().native, self.u, self.escrow_premium_amount)
            self.escrow_premium_state = "refunded"
            self.escrow_premium_resolved_at = ctx.height
            self.emit("escrow_premium_refunded", arc=self.arc, to=self.u)

    def _on_hashkey_accepted(self, leader: str, height: int) -> None:
        deposit = self.redemption_deposits.get(leader)
        if deposit is not None and deposit.state == "held":
            self.push(self._chain().native, self.v, deposit.amount)
            deposit.state = "refunded"
            deposit.resolved_at = height
            self.emit(
                "redemption_premium_refunded",
                arc=self.arc,
                leader=leader,
                to=self.v,
                amount=deposit.amount,
            )

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        # Unactivated escrow premiums refund at the end of phase 2.
        if (
            self.escrow_premium_state == "held"
            and not self.activated
            and height > self.schedule.activation_deadline
        ):
            self.push(self._chain().native, self.u, self.escrow_premium_amount)
            self.escrow_premium_state = "refunded"
            self.escrow_premium_resolved_at = height
            self.emit("escrow_premium_refunded", arc=self.arc, to=self.u)

        # Activated escrow premium is awarded to v if the principal never came.
        if (
            self.escrow_premium_state == "held"
            and self.activated
            and self.principal_state == "absent"
            and height > self._principal_deadline()
        ):
            self.push(self._chain().native, self.v, self.escrow_premium_amount)
            self.escrow_premium_state = "awarded"
            self.escrow_premium_resolved_at = height
            self.emit(
                "escrow_premium_awarded",
                arc=self.arc,
                to=self.v,
                amount=self.escrow_premium_amount,
            )

        # Principal refund at the end of phase 4 (inherited rule) plus
        # awarding every unrefunded redemption premium to u.
        super().on_tick(height)
        if height > self._final_deadline():
            for deposit in self.redemption_deposits.values():
                if deposit.state == "held":
                    self.push(self._chain().native, self.u, deposit.amount)
                    deposit.state = "awarded"
                    deposit.resolved_at = height
                    self.emit(
                        "redemption_premium_awarded",
                        arc=self.arc,
                        leader=deposit.leader,
                        to=self.u,
                        amount=deposit.amount,
                    )
