"""Smart-contract substrate and the paper's escrow contracts.

`repro.contracts.base` provides the runtime (contract accounts, revert
semantics, settlement ticks).  The remaining modules implement the actual
contracts used by the base and hedged protocols:

- :mod:`repro.contracts.htlc` — plain hashed-timelock contract (§5.1),
- :mod:`repro.contracts.hedged_escrow` — premium-carrying two-party escrow
  (§5.2, Figure 1),
- :mod:`repro.contracts.swap_arc` — multi-party swap arc contract, base
  (Herlihy '18) and hedged (§7.1) variants,
- :mod:`repro.contracts.broker` — ticket/coin contracts for brokered
  commerce (§8), base and hedged,
- :mod:`repro.contracts.auction` — coin/ticket auction contracts (§9),
  base and hedged.
"""

from repro.contracts.base import Contract

__all__ = ["Contract"]
