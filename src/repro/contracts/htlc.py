"""Plain hashed-timelock contract (HTLC) — the base §5.1 building block.

The owner escrows an asset under hashlock ``h`` and timelock ``t``.  Anyone
presenting the preimage ``s`` with ``H(s) = h`` at height ≤ ``t`` redeems
the asset to the designated counterparty; otherwise the asset refunds to the
owner after ``t``.  The revealed preimage becomes public chain state, which
is how the counterparty learns the secret in the swap protocol.
"""

from __future__ import annotations

from repro.chain.assets import Asset
from repro.chain.blockchain import CallContext
from repro.contracts.base import Contract
from repro.crypto.hashing import Hashlock


class HTLC(Contract):
    """A single-asset hashed-timelock escrow."""

    kind = "htlc"

    CREATED = "created"
    ESCROWED = "escrowed"
    REDEEMED = "redeemed"
    REFUNDED = "refunded"

    def __init__(
        self,
        asset: Asset,
        amount: int,
        owner: str,
        counterparty: str,
        hashlock: Hashlock,
        timelock: int,
        escrow_deadline: int | None = None,
    ) -> None:
        super().__init__()
        self.asset = asset
        self.amount = amount
        self.owner = owner
        self.counterparty = counterparty
        self.hashlock = hashlock
        self.timelock = timelock
        self.escrow_deadline = timelock if escrow_deadline is None else escrow_deadline
        self.state = self.CREATED
        self.revealed_preimage: bytes | None = None
        self.escrowed_at: int | None = None
        self.resolved_at: int | None = None

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def escrow(self, ctx: CallContext) -> None:
        """Owner deposits the principal."""
        self.require(ctx.sender == self.owner, "only the owner escrows")
        self.require(self.state == self.CREATED, f"cannot escrow in state {self.state}")
        self.require(ctx.height <= self.escrow_deadline, "escrow deadline passed")
        self.pull(self.asset, self.owner, self.amount)
        self.state = self.ESCROWED
        self.escrowed_at = ctx.height
        self.emit("escrowed", owner=self.owner, amount=self.amount, asset=str(self.asset))

    def redeem(self, ctx: CallContext, preimage: bytes) -> None:
        """Present the secret; pays the principal to the counterparty."""
        self.require(self.state == self.ESCROWED, f"cannot redeem in state {self.state}")
        self.require(ctx.height <= self.timelock, "timelock expired")
        self.require(self.hashlock.matches(preimage), "wrong preimage")
        self.push(self.asset, self.counterparty, self.amount)
        self.state = self.REDEEMED
        self.revealed_preimage = preimage
        self.resolved_at = ctx.height
        self.emit("redeemed", to=self.counterparty, amount=self.amount)

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        if self.state == self.ESCROWED and height > self.timelock:
            self.push(self.asset, self.owner, self.amount)
            self.state = self.REFUNDED
            self.resolved_at = height
            self.emit("refunded", to=self.owner, amount=self.amount)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def lockup_duration(self) -> int | None:
        """Heights the principal spent locked, once resolved."""
        if self.escrowed_at is None or self.resolved_at is None:
            return None
        return self.resolved_at - self.escrowed_at
