"""Contract base class and runtime helpers.

A contract is a deterministic, passive program owning an account on exactly
one chain.  Public methods (no leading underscore) are callable via
transactions; each takes a :class:`repro.chain.blockchain.CallContext` as
its first argument.  ``self.require(...)`` reverts the enclosing transaction
when a precondition fails.  ``on_tick(height)`` runs once per height after
user transactions and performs timeout settlement (refunds and premium
awards); on a real chain these would be keeper transactions anyone can send
— economically equivalent, and the paper's contracts are specified the same
way ("if the contract does not receive the matching secret before time t has
elapsed, the asset is refunded").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.chain.assets import Asset
from repro.errors import ContractError, StateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.blockchain import Blockchain


class Contract:
    """Base class for every contract in the library."""

    kind = "contract"

    def __init__(self) -> None:
        self.chain: "Blockchain" | None = None
        self.address: str = ""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self, chain: "Blockchain", address: str) -> None:
        """Bind the contract to its chain; called by ``Blockchain.deploy``."""
        if self.chain is not None:
            raise StateError(f"{self.kind} already deployed at {self.address}")
        self.chain = chain
        self.address = address

    def on_tick(self, height: int) -> None:
        """Timeout settlement hook; default does nothing."""

    # ------------------------------------------------------------------
    # helpers available to subclasses
    # ------------------------------------------------------------------
    def require(self, condition: bool, message: str) -> None:
        """Revert the transaction unless ``condition`` holds."""
        if not condition:
            raise ContractError(message)

    def emit(self, name: str, **data: Any) -> None:
        """Log an event on the host chain."""
        self._chain().emit(self.address, name, data)

    def balance(self, asset: Asset) -> int:
        """The contract's own holdings of ``asset``."""
        return self._chain().ledger.balance(asset, self.address)

    def pull(self, asset: Asset, source: str, amount: int) -> None:
        """Escrow: move ``amount`` from ``source`` into the contract."""
        try:
            self._chain().ledger.transfer(asset, source, self.address, amount)
        except Exception as err:  # ledger errors revert the transaction
            raise ContractError(str(err)) from err

    def push(self, asset: Asset, dest: str, amount: int) -> None:
        """Pay out ``amount`` from the contract to ``dest``."""
        self._chain().ledger.transfer(asset, self.address, dest, amount)

    def _chain(self) -> "Blockchain":
        if self.chain is None:
            raise StateError(f"{self.kind} used before deployment")
        return self.chain
