"""Premium-carrying escrow contract for the hedged two-party swap (§5.2).

One instance lives on each chain (Figure 1):

- the **banana** instance holds Bob's principal and Alice's premium
  ``p_a + p_b``,
- the **apricot** instance holds Alice's principal and Bob's premium
  ``p_b``.

In both instances the *premium payer is the redeemer* of that chain's
principal.  The contract's premium rules are exactly the paper's:

- if the principal is **not escrowed** by its deadline, the premium refunds
  to the payer (the would-be redeemer was blocked by the escrower),
- if the principal is escrowed and **redeemed** before the timelock, the
  premium refunds to the payer,
- if the principal is escrowed and **not redeemed** by the timelock, the
  premium is awarded to the principal's owner as lockup compensation, and
  the principal refunds to its owner.

Premiums are paid in the chain's native currency; the principal may be any
asset of the chain.
"""

from __future__ import annotations

from repro.chain.assets import Asset
from repro.chain.blockchain import CallContext
from repro.contracts.base import Contract
from repro.crypto.hashing import Hashlock


class HedgedEscrow(Contract):
    """Escrow of one principal plus the counterparty's premium."""

    kind = "hedged-escrow"

    def __init__(
        self,
        principal_asset: Asset,
        principal_amount: int,
        principal_owner: str,
        redeemer: str,
        hashlock: Hashlock,
        premium_amount: int,
        premium_deadline: int,
        principal_deadline: int,
        redemption_timelock: int,
        redeem_to_owner: bool = False,
    ) -> None:
        """``redeem_to_owner=True`` turns the contract into a *deposit
        exchange*: a successful redemption releases the principal back to
        its owner instead of paying the redeemer.  Premium bootstrapping
        (§6) uses this mode — each bootstrap round locks and releases
        premium deposits rather than swapping them, while keeping exactly
        the hedged-swap compensation rules."""
        super().__init__()
        self.principal_asset = principal_asset
        self.principal_amount = principal_amount
        self.principal_owner = principal_owner
        self.redeemer = redeemer
        self.hashlock = hashlock
        self.premium_amount = premium_amount
        self.premium_deadline = premium_deadline
        self.principal_deadline = principal_deadline
        self.redemption_timelock = redemption_timelock
        self.redeem_to_owner = redeem_to_owner

        self.premium_state = "absent"  # absent | held | refunded | awarded
        self.principal_state = "absent"  # absent | escrowed | redeemed | refunded
        self.revealed_preimage: bytes | None = None
        self.premium_deposited_at: int | None = None
        self.principal_escrowed_at: int | None = None
        self.premium_resolved_at: int | None = None
        self.principal_resolved_at: int | None = None

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def deposit_premium(self, ctx: CallContext) -> None:
        """The redeemer posts the premium (native currency)."""
        self.require(ctx.sender == self.redeemer, "only the redeemer pays the premium")
        self.require(self.premium_state == "absent", "premium already deposited")
        self.require(ctx.height <= self.premium_deadline, "premium deadline passed")
        self.pull(self._chain().native, self.redeemer, self.premium_amount)
        self.premium_state = "held"
        self.premium_deposited_at = ctx.height
        self.emit("premium_deposited", payer=self.redeemer, amount=self.premium_amount)

    def escrow_principal(self, ctx: CallContext) -> None:
        """The owner escrows the principal (requires the premium in place)."""
        self.require(ctx.sender == self.principal_owner, "only the owner escrows")
        self.require(self.premium_state == "held", "premium must be deposited first")
        self.require(self.principal_state == "absent", "principal already escrowed")
        self.require(ctx.height <= self.principal_deadline, "escrow deadline passed")
        self.pull(self.principal_asset, self.principal_owner, self.principal_amount)
        self.principal_state = "escrowed"
        self.principal_escrowed_at = ctx.height
        self.emit(
            "principal_escrowed",
            owner=self.principal_owner,
            amount=self.principal_amount,
            asset=str(self.principal_asset),
        )

    def redeem(self, ctx: CallContext, preimage: bytes) -> None:
        """Redeemer presents the secret: principal to redeemer, premium back."""
        self.require(self.principal_state == "escrowed", "no escrowed principal")
        self.require(ctx.height <= self.redemption_timelock, "timelock expired")
        self.require(self.hashlock.matches(preimage), "wrong preimage")
        principal_to = self.principal_owner if self.redeem_to_owner else self.redeemer
        self.push(self.principal_asset, principal_to, self.principal_amount)
        self.principal_state = "redeemed"
        self.principal_resolved_at = ctx.height
        self.revealed_preimage = preimage
        self.emit("redeemed", to=principal_to, amount=self.principal_amount)
        if self.premium_state == "held":
            self.push(self._chain().native, self.redeemer, self.premium_amount)
            self.premium_state = "refunded"
            self.premium_resolved_at = ctx.height
            self.emit("premium_refunded", to=self.redeemer, amount=self.premium_amount)

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def on_tick(self, height: int) -> None:
        # Premium refund when the principal never showed up.
        if (
            self.premium_state == "held"
            and self.principal_state == "absent"
            and height > self.principal_deadline
        ):
            self.push(self._chain().native, self.redeemer, self.premium_amount)
            self.premium_state = "refunded"
            self.premium_resolved_at = height
            self.emit("premium_refunded", to=self.redeemer, amount=self.premium_amount)

        # Principal refund + premium award when redemption never happened.
        if self.principal_state == "escrowed" and height > self.redemption_timelock:
            self.push(self.principal_asset, self.principal_owner, self.principal_amount)
            self.principal_state = "refunded"
            self.principal_resolved_at = height
            self.emit("principal_refunded", to=self.principal_owner, amount=self.principal_amount)
            if self.premium_state == "held":
                self.push(self._chain().native, self.principal_owner, self.premium_amount)
                self.premium_state = "awarded"
                self.premium_resolved_at = height
                self.emit(
                    "premium_awarded",
                    to=self.principal_owner,
                    amount=self.premium_amount,
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def settled(self) -> bool:
        """True once neither premium nor principal is still held."""
        principal_done = self.principal_state in ("absent", "redeemed", "refunded")
        premium_done = self.premium_state in ("absent", "refunded", "awarded")
        return principal_done and premium_done and not (
            self.premium_state == "absent" and self.principal_state == "escrowed"
        )

    @property
    def principal_lockup(self) -> int | None:
        """Heights the principal spent locked, once resolved."""
        if self.principal_escrowed_at is None or self.principal_resolved_at is None:
            return None
        return self.principal_resolved_at - self.principal_escrowed_at

    @property
    def premium_lockup(self) -> int | None:
        """Heights the premium spent locked, once resolved."""
        if self.premium_deposited_at is None or self.premium_resolved_at is None:
            return None
        return self.premium_resolved_at - self.premium_deposited_at
